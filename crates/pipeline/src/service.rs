//! The online phase (§5, Figure 7): Autotune Clients on Spark clusters talk to the
//! Autotune Backend, which owns storage, per-signature tuners, and the `app_cache`.
//!
//! The backend's logic lives in [`AutotuneBackend`] (synchronous, directly testable);
//! [`AutotuneService::spawn`] runs it on a dedicated thread behind crossbeam channels
//! — the reproduction of the client/backend split — with [`AutotuneClient`] as the
//! cluster-side handle (the model loader / query listener pair).

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use optimizers::space::ConfigSpace;
use optimizers::tuner::{Outcome, Tuner, TuningContext};
use rockhopper::applevel::{AppCache, AppCacheEntry, AppLevelOptimizer, QueryState};
use rockhopper::baseline::BaselineModel;
use rockhopper::RockhopperTuner;
use rockindex::{CorpusEntry, KnnIndex, Provenance, TransferPolicy};
use sparksim::event::SparkEvent;

use crate::durability::{
    self, BackendSnapshot, DegradedEntry, Durability, EmbeddingEntry, RecoveryReport, ReplayedOp,
    ServedEntry, TunerEntry, WalEvent,
};
use crate::etl::{extract_batch, EtlBatch};
use crate::lru::LruMap;
use crate::monitor::{Dashboard, DashboardCounters};
use crate::storage::{paths, Storage};
use crate::PipelineError;

/// Penalty cost recorded for a failed run when the signature has no measured
/// history yet to scale from (10 minutes).
const DEFAULT_FAILURE_PENALTY_MS: f64 = 600_000.0;

/// Maximum attempts when persisting an event file through a flaky store.
const INGEST_MAX_ATTEMPTS: u32 = 4;

/// Per-signature failure bookkeeping behind degraded mode: after
/// `degrade_after` consecutive failed runs the backend stops tuning the
/// signature and serves the default configuration, probing the tuner again
/// every `probe_period`-th suggestion until a run completes.
#[derive(Debug, Clone, Copy, Default)]
struct DegradedState {
    degraded: bool,
    suggests_while_degraded: u32,
}

/// Hard caps on the backend's per-(user, signature) maps. The backend lives
/// for the whole serving process, so every keyed map needs an eviction bound
/// or an adversarial (or merely huge) workload grows it without limit. At the
/// cap the smallest key is evicted — deterministic regardless of hash order,
/// and an evicted tuner warm-starts again from the baseline on its next
/// appearance. Production deployments in the paper track ~416 signatures;
/// the caps are far above both that and every bench/test workload.
///
/// The tuner map is the exception to smallest-key eviction: it is a true
/// [`LruMap`] (recency-ordered, capacity-configurable per shard via
/// [`AutotuneBackend::with_tuner_capacity`]), and under durability an evicted
/// tuner spills a sidecar checkpoint it is restored from bit-identically on
/// its next touch (DESIGN.md §11).
const MAX_TRACKED_TUNERS: usize = 4096;
const MAX_TRACKED_EMBEDDINGS: usize = 8192;
const MAX_TRACKED_DEGRADED: usize = 8192;

/// Cap on the served-suggestion memo carried in snapshots. On overflow new
/// keys are simply not memoized (deterministic; never an eviction) — a
/// restarted serving layer re-evaluates those keys instead of cache-hitting.
const MAX_SERVED_MEMO: usize = 8192;

/// The backend: storage, per-(user, signature) tuners, baseline model, app cache.
pub struct AutotuneBackend {
    storage: Arc<Storage>,
    space: ConfigSpace,
    /// Query-level baseline (warm start for new signatures).
    baseline: Option<BaselineModel>,
    /// Memory-bounded per-(user, signature) tuner state; LRU-evicted at
    /// capacity, with evictions spilled to durable sidecars when attached.
    tuners: LruMap<(String, u64), RockhopperTuner>,
    /// Latest embedding seen per signature (context for app-cache scoring).
    embeddings: HashMap<u64, Vec<f64>>,
    app_cache: AppCache,
    app_optimizer: AppLevelOptimizer,
    /// The §6.3 monitoring dashboard, fed by every ingested event file.
    dashboard: Dashboard,
    /// Guardrail policy applied to newly created tuners.
    guardrail_policy: Option<rockhopper::Guardrail>,
    /// Per-(user, signature) failure streaks and degraded-mode flags.
    degraded: HashMap<(String, u64), DegradedState>,
    /// Consecutive failed runs that flip a signature into degraded mode.
    degrade_after: u32,
    /// In degraded mode, every `probe_period`-th suggestion probes the tuner.
    probe_period: u32,
    /// Event-file writes that had to be retried against a flaky store.
    ingest_retries: u64,
    /// Durable-state handle (WAL + snapshot cadence); `None` = in-memory only.
    durability: Option<Durability>,
    /// Served suggestions not yet invalidated by a report, keyed by
    /// `(user, signature, ctx-json)` — maintained only under durability, and
    /// carried in every snapshot so a restarted serving layer can rebuild
    /// its coalescing cache for operations the snapshot compacted away.
    served: HashMap<(String, u64, String), (TuningContext, Vec<f64>, Provenance)>,
    /// Zero-execution retrieval (DESIGN.md §12): a shared k-NN index over
    /// the transfer corpus plus the policy gating transfers. `None` =
    /// retrieval off (every cold suggest explores). Shared by `Arc` across
    /// shards so all shards rank against the identical corpus.
    retrieval: Option<(Arc<KnnIndex>, TransferPolicy)>,
    seed: u64,
    /// This backend's shard identity: `(shard_id, shard_count)` — `(0, 1)`
    /// for an unsharded deployment. Stamped into snapshots so recovery
    /// refuses state written under a different shard layout.
    shard_id: u64,
    shard_count: u64,
}

impl AutotuneBackend {
    /// Create a backend over shared storage with an optional baseline model.
    pub fn new(storage: Arc<Storage>, baseline: Option<BaselineModel>, seed: u64) -> Self {
        AutotuneBackend {
            storage,
            space: ConfigSpace::query_level(),
            baseline,
            tuners: LruMap::new(MAX_TRACKED_TUNERS),
            embeddings: HashMap::new(),
            app_cache: AppCache::new(),
            app_optimizer: AppLevelOptimizer::default(),
            dashboard: Dashboard::new(),
            guardrail_policy: Some(rockhopper::Guardrail::default()),
            degraded: HashMap::new(),
            degrade_after: 3,
            probe_period: 4,
            ingest_retries: 0,
            durability: None,
            served: HashMap::new(),
            retrieval: None,
            seed,
            shard_id: 0,
            shard_count: 1,
        }
    }

    /// Attach a retrieval index for zero-execution cold starts: a cold
    /// Suggest (no resident tuner, no evicted sidecar) with a close-enough
    /// corpus neighbor serves the neighbor's best-observed config verbatim,
    /// tagged [`Provenance::Transferred`], and the signature's tuner is
    /// warm-started with a trust-discounted prior on its first real report.
    ///
    /// Attach **before** [`AutotuneBackend::recover_from`]: replayed
    /// suggestions must consult the same index the live run did to re-derive
    /// the same points.
    pub fn with_retrieval(mut self, index: Arc<KnnIndex>, policy: TransferPolicy) -> Self {
        self.retrieval = Some((index, policy));
        self
    }

    /// The attached retrieval index and policy, if any.
    pub fn retrieval(&self) -> Option<(&Arc<KnnIndex>, &TransferPolicy)> {
        self.retrieval.as_ref().map(|(i, p)| (i, p))
    }

    /// Bound the tuner map to `capacity` live entries (floored at 1; `0`
    /// keeps the default cap). Evictions beyond the bound are counted on the
    /// dashboard and — under durability — spilled to sidecar checkpoints.
    pub fn with_tuner_capacity(mut self, capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            MAX_TRACKED_TUNERS
        } else {
            capacity
        };
        // Migrate existing entries in recency order (least-recent first), so
        // shrinking the bound silently drops the coldest tuners.
        let mut old = std::mem::replace(&mut self.tuners, LruMap::new(capacity));
        let keys: Vec<(String, u64)> = old.keys_by_recency().cloned().collect();
        for key in keys {
            if let Some(tuner) = old.remove(&key) {
                self.tuners.insert(key, tuner);
            }
        }
        self
    }

    /// Stamp this backend as shard `shard_id` of `shard_count`. Shard
    /// identity gates recovery (a snapshot from a different layout is
    /// quarantined) but never the tuner streams themselves — those derive
    /// from `(root seed, signature)` alone, so the same signature computes
    /// the same suggestions at any shard count.
    pub(crate) fn with_shard(mut self, shard_id: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        self.shard_id = u64::try_from(shard_id.min(shard_count - 1)).unwrap_or(0);
        self.shard_count = u64::try_from(shard_count).unwrap_or(1);
        self
    }

    /// Split this backend into `shards` sibling backends sharing its storage,
    /// baseline, policies, and root seed. Shard 0 keeps this backend's
    /// learned state; the others start fresh (intended for construction time,
    /// before any state accumulates). `capacity` bounds each shard's tuner
    /// map (`0` = default cap).
    pub fn split_into_shards(self, shards: usize, capacity: usize) -> Vec<AutotuneBackend> {
        let shards = shards.max(1);
        let storage = Arc::clone(&self.storage);
        let baseline = self.baseline.clone();
        let guardrail = self.guardrail_policy.clone();
        let (degrade_after, probe_period) = (self.degrade_after, self.probe_period);
        let seed = self.seed;
        let retrieval = self.retrieval.clone();
        let mut out = Vec::with_capacity(shards);
        out.push(self.with_tuner_capacity(capacity).with_shard(0, shards));
        for shard_id in 1..shards {
            let mut shard = AutotuneBackend::new(Arc::clone(&storage), baseline.clone(), seed)
                .with_guardrail_policy(guardrail.clone())
                .with_degraded_policy(degrade_after, probe_period)
                .with_tuner_capacity(capacity)
                .with_shard(shard_id, shards);
            // Every shard ranks against the identical shared corpus, so a
            // transferred point is invariant to the shard layout.
            shard.retrieval = retrieval.clone();
            out.push(shard);
        }
        out
    }

    /// Override the guardrail policy for tuners created from now on. The paper's
    /// production deployment runs "extremely conservative guardrail settings" (only
    /// 73/416 signatures kept autotuning); `None` disables the guardrail entirely.
    pub fn with_guardrail_policy(mut self, policy: Option<rockhopper::Guardrail>) -> Self {
        self.guardrail_policy = policy;
        self
    }

    /// Override the degraded-mode policy: `degrade_after` consecutive failed
    /// runs disable tuning for a signature; every `probe_period`-th suggestion
    /// while degraded probes the tuner again.
    pub fn with_degraded_policy(mut self, degrade_after: u32, probe_period: u32) -> Self {
        self.degrade_after = degrade_after.max(1);
        self.probe_period = probe_period.max(1);
        self
    }

    /// Suggest the query-level configuration for a submission (Figure 7 step: the
    /// Autotune Config Inference before physical planning). Signatures in
    /// degraded mode get the default configuration, except for the periodic
    /// probe that checks whether tuning can be re-enabled.
    pub fn suggest(&mut self, user: &str, signature: u64, ctx: &TuningContext) -> Vec<f64> {
        self.suggest_tagged(user, signature, ctx).0
    }

    /// As [`AutotuneBackend::suggest`], also reporting where the point came
    /// from: [`Provenance::Transferred`] for a zero-execution corpus hit,
    /// [`Provenance::Explored`] for a normal tuner draw (and for degraded
    /// defaults). The tag rides the wire protocol and the serving metrics.
    pub fn suggest_tagged(
        &mut self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
    ) -> (Vec<f64>, Provenance) {
        // Append-before-apply: a suggestion advances tuner RNG/iteration
        // state, so the WAL must record it before the tuner moves.
        self.log_event(&WalEvent::Suggest {
            user: user.to_string(),
            signature,
            ctx: ctx.clone(),
        });
        let (point, provenance) = self.suggest_point(user, signature, ctx);
        self.memo_served(user, signature, ctx, &point, provenance);
        (point, provenance)
    }

    /// The tuning logic behind [`AutotuneBackend::suggest`], after the WAL
    /// append and before the served-memo update.
    fn suggest_point(
        &mut self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
    ) -> (Vec<f64>, Provenance) {
        if self.embeddings.len() >= MAX_TRACKED_EMBEDDINGS
            && !self.embeddings.contains_key(&signature)
        {
            if let Some(evict) = self.embeddings.keys().min().copied() {
                self.embeddings.remove(&evict);
            }
        }
        self.embeddings.insert(signature, ctx.embedding.clone());
        let key = (user.to_string(), signature);
        if self.degraded.len() >= MAX_TRACKED_DEGRADED && !self.degraded.contains_key(&key) {
            if let Some(evict) = self.degraded.keys().min().cloned() {
                self.degraded.remove(&evict);
            }
        }
        let probe_period = self.probe_period;
        let state = self.degraded.entry(key).or_default();
        if state.degraded {
            state.suggests_while_degraded += 1;
            if state.suggests_while_degraded % probe_period != 0 {
                return (self.space.default_point(), Provenance::Explored);
            }
        }
        if let Some(point) = self.transfer_lookup(user, signature, ctx) {
            return (point, Provenance::Transferred);
        }
        let tuner = self.tuner_for(user, signature);
        (tuner.suggest(ctx), Provenance::Explored)
    }

    /// Zero-execution retrieval (DESIGN.md §12): a *cold* signature — no
    /// resident tuner and no evicted sidecar — with a close-enough corpus
    /// neighbor is served the neighbor's best-observed config verbatim. No
    /// tuner is created and no RNG advances, so the signature's eventual
    /// tuner stream stays a pure function of `(root_seed, signature)`;
    /// warm signatures never consult the index. `None` = explore normally.
    fn transfer_lookup(
        &mut self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
    ) -> Option<Vec<f64>> {
        let (index, policy) = match &self.retrieval {
            Some((index, policy)) => (Arc::clone(index), *policy),
            None => return None,
        };
        if self.tuners.contains_key(&(user.to_string(), signature)) {
            return None;
        }
        // An evicted tuner is warm state parked on disk, not a cold start:
        // serving a transfer here would shadow its learned config.
        if self
            .durability
            .as_ref()
            .and_then(|d| d.read_evicted(user, signature))
            .is_some()
        {
            return None;
        }
        match policy.lookup(&index, &ctx.embedding) {
            Some(neighbor) => {
                self.dashboard.record_cold_hit();
                Some(neighbor.best_point)
            }
            None => {
                self.dashboard.record_cold_miss();
                None
            }
        }
    }

    /// Remember a served suggestion for the snapshot's served-memo. Only
    /// durable backends pay for this: the memo exists so a *restarted*
    /// serving layer can rebuild its coalescing cache, and an in-memory
    /// backend has no restarts to survive.
    fn memo_served(
        &mut self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        point: &[f64],
        provenance: Provenance,
    ) {
        if self.durability.is_none() {
            return;
        }
        let Ok(ctx_key) = serde_json::to_string(ctx) else {
            return;
        };
        let key = (user.to_string(), signature, ctx_key);
        if self.served.len() >= MAX_SERVED_MEMO && !self.served.contains_key(&key) {
            return;
        }
        self.served
            .insert(key, (ctx.clone(), point.to_vec(), provenance));
    }

    /// Drop memo entries a report's signatures make stale — the same rule
    /// the serving layer applies to its live coalescing cache
    /// ([`durability::report_signatures`] is the shared definition).
    fn invalidate_served(&mut self, user: &str, signatures: &[u64]) {
        if self.durability.is_none() || signatures.is_empty() {
            return;
        }
        self.served
            .retain(|k, _| !(k.0 == user && signatures.binary_search(&k.1).is_ok()));
    }

    fn tuner_for(&mut self, user: &str, signature: u64) -> &mut RockhopperTuner {
        let key = (user.to_string(), signature);
        // Admission runs before the map borrow: it needs `&mut self` for the
        // dashboard counters and sidecar reads, which the entry closure below
        // cannot have. `admitted` is `Some` exactly when the key is vacant.
        let admitted = if self.tuners.contains_key(&key) {
            None
        } else {
            Some(self.admit_tuner(user, signature))
        };
        let space = self.space.clone();
        let seed = self.seed;
        let (tuner, evicted) = self.tuners.get_mut_or_insert_with(key, move || {
            admitted.unwrap_or_else(|| {
                // Never taken (see above); a fresh canonically-seeded tuner
                // keeps the lookup total instead of panicking.
                RockhopperTuner::builder(space)
                    .seed(RockhopperTuner::signature_seed(seed, signature))
                    .build()
            })
        });
        if let Some(((evicted_user, evicted_sig), evicted)) = evicted {
            self.dashboard.record_tuner_eviction();
            // Spill-before-drop: the evicted tuner's full checkpoint
            // (raw RNG words included) goes to a rockdur sidecar, so a
            // later touch restores it bit-identically instead of
            // re-learning from scratch. Best-effort, like every other
            // durability write: a failed spill degrades the evicted
            // signature to a cold start, never the request.
            if let Some(d) = self.durability.as_mut() {
                let _ = d.write_evicted(&evicted_user, evicted_sig, &evicted.snapshot());
            }
        }
        tuner
    }

    /// Build the tuner that should serve `(user, signature)` right now:
    /// the sidecar checkpoint its eviction spilled, if one is visible at the
    /// current point in (live or replayed) time, or a fresh tuner seeded by
    /// the canonical `split_seed(root, signature)` derivation — a pure
    /// function of the root seed and the signature, so shard membership and
    /// arrival order never change a tuner's stream.
    fn admit_tuner(&mut self, user: &str, signature: u64) -> RockhopperTuner {
        if let Some(state) = self
            .durability
            .as_ref()
            .and_then(|d| d.read_evicted(user, signature))
        {
            self.dashboard.record_evicted_restored();
            return RockhopperTuner::restore(self.space.clone(), state, self.baseline.clone());
        }
        let mut builder = RockhopperTuner::builder(self.space.clone())
            .seed(RockhopperTuner::signature_seed(self.seed, signature))
            .guardrail(self.guardrail_policy.clone());
        if let Some(b) = &self.baseline {
            builder = builder.baseline(b.clone());
        }
        // Transfer handoff (DESIGN.md §12): a truly cold signature whose
        // embedding has eligible corpus neighbors starts its centroid at the
        // nearest neighbor's best point and seeds its history with
        // trust-discounted pseudo-observations (elapsed inflated by the
        // policy margin, so local real measurements outrank the borrowed
        // prior). Seeding goes through `History::push`, which draws no RNG —
        // the tuner's random stream stays the canonical
        // `split_seed(root, signature)` derivation, bit-identical with or
        // without a corpus hit.
        if let Some((index, policy)) = &self.retrieval {
            if let Some(embedding) = self.embeddings.get(&signature) {
                let eligible = policy.eligible(index, embedding);
                if let Some(nearest) = eligible.first() {
                    builder = builder.start_at(nearest.best_point.clone());
                    let mut tuner = builder.build();
                    for neighbor in &eligible {
                        tuner.history.push(
                            neighbor.best_point.clone(),
                            neighbor.data_size,
                            policy.discounted_elapsed_ms(neighbor),
                        );
                    }
                    self.dashboard.record_transfer_seeded();
                    return tuner;
                }
            }
        }
        builder.build()
    }

    /// Ingest an application's event file: persist it (with retry against a
    /// flaky store), ETL it, and feed every completed query back into its tuner
    /// (the Model Updater job). Failed runs — starts whose end never arrived —
    /// become censored high-cost observations and advance degraded-mode streaks.
    pub fn ingest(&mut self, user: &str, app_id: &str, events: &[SparkEvent]) {
        // Logged in canonical JSONL form — replay goes through the lossy
        // parser, which round-trips `to_jsonl` output exactly.
        let doc = sparksim::event::to_jsonl(events);
        self.log_event(&WalEvent::IngestJsonl {
            user: user.to_string(),
            app_id: app_id.to_string(),
            doc: doc.clone(),
        });
        self.invalidate_served(user, &durability::report_signatures(events));
        self.persist_events(app_id, doc.into_bytes());
        self.storage.tick();
        self.dashboard.ingest(events);
        self.ingest_batch(user, extract_batch(events));
    }

    /// Ingest a raw JSON-lines event document as shipped over the wire:
    /// corrupt/truncated lines are quarantined (and counted on the dashboard)
    /// instead of poisoning the whole file.
    pub fn ingest_jsonl(&mut self, user: &str, app_id: &str, doc: &str) {
        self.log_event(&WalEvent::IngestJsonl {
            user: user.to_string(),
            app_id: app_id.to_string(),
            doc: doc.to_string(),
        });
        self.persist_events(app_id, doc.as_bytes().to_vec());
        self.storage.tick();
        let (events, quarantined) = sparksim::event::from_jsonl_lossy(doc);
        self.invalidate_served(user, &durability::report_signatures(&events));
        self.dashboard.ingest(&events);
        let mut batch = extract_batch(&events);
        batch.quarantined_lines = quarantined;
        self.ingest_batch(user, batch);
    }

    /// Persist an event file, retrying transient storage outages with bounded
    /// backoff in *logical* time (each retry burns backoff ticks, doubling up to
    /// a cap — deterministic, no wall clock). Gives up after
    /// [`INGEST_MAX_ATTEMPTS`]; tuner updates proceed regardless, since the
    /// in-memory observations are authoritative for this process.
    fn persist_events(&mut self, app_id: &str, bytes: Vec<u8>) -> bool {
        let token = self.storage.issue_token("events/", true, u64::MAX);
        let path = paths::events(app_id);
        let mut backoff: u64 = 1;
        for attempt in 0..INGEST_MAX_ATTEMPTS {
            match self.storage.put(&token, &path, bytes.clone()) {
                Ok(()) => return true,
                Err(PipelineError::Unavailable { .. }) if attempt + 1 < INGEST_MAX_ATTEMPTS => {
                    self.ingest_retries += 1;
                    for _ in 0..backoff {
                        self.storage.tick();
                    }
                    backoff = (backoff * 2).min(8);
                }
                Err(PipelineError::Unavailable { .. })
                | Err(PipelineError::AccessDenied { .. })
                | Err(PipelineError::NotFound { .. })
                | Err(PipelineError::InsufficientData) => return false,
            }
        }
        false
    }

    /// Feed one ETL batch into the tuners and the failure bookkeeping.
    fn ingest_batch(&mut self, user: &str, batch: EtlBatch) {
        self.dashboard.record_quarantined(batch.quarantined_lines);
        let space = self.space.clone();
        let default_point = space.default_point();
        for row in &batch.rows {
            let point = row.point_in(&space);
            let tuner = self.tuner_for(user, row.signature);
            tuner.observe(&point, &Outcome::measured(row.elapsed_ms, row.data_size));
            let state = self
                .degraded
                .entry((user.to_string(), row.signature))
                .or_default();
            // A completed run on a *tuned* configuration (a probe, or normal
            // operation) proves tuning viable again; a completed run on the
            // default config only proves the default works and stays degraded.
            let is_probe = point
                .iter()
                .zip(&default_point)
                .any(|(a, b)| (a - b).abs() > 1e-9);
            if state.degraded && is_probe {
                state.degraded = false;
                state.suggests_while_degraded = 0;
            }
        }
        for fail in &batch.failed {
            self.dashboard.record_failure(fail.signature);
            let point: Vec<f64> = space.dims.iter().map(|d| fail.conf.get(d.knob)).collect();
            let tuner = self.tuner_for(user, fail.signature);
            // Penalty: well above anything measured for this signature, so the
            // centroid update is pushed away without one constant dominating.
            let worst_measured = tuner
                .history
                .all
                .iter()
                .filter(|o| !o.is_censored())
                .map(|o| o.elapsed_ms)
                .fold(f64::NEG_INFINITY, f64::max);
            let penalty = if worst_measured.is_finite() {
                2.0 * worst_measured
            } else {
                DEFAULT_FAILURE_PENALTY_MS
            };
            let data_size = tuner.history.all.last().map(|o| o.data_size).unwrap_or(1.0);
            tuner.observe(&point, &Outcome::censored(penalty, data_size));
            // The failure streak lives in the tuner's own history: a measured
            // observation resets it, a censored one extends it.
            let streak = tuner.history.trailing_censored();
            let degrade_after = self.degrade_after;
            let state = self
                .degraded
                .entry((user.to_string(), fail.signature))
                .or_default();
            if streak >= degrade_after as usize {
                state.degraded = true;
            }
        }
    }

    /// Whether the guardrail has disabled a signature.
    pub fn is_disabled(&self, user: &str, signature: u64) -> bool {
        self.tuners
            .peek(&(user.to_string(), signature))
            .map(RockhopperTuner::is_disabled)
            .unwrap_or(false)
    }

    /// Whether repeated failures have put a signature into degraded mode
    /// (serving the default configuration, probing for re-enable).
    pub fn is_degraded(&self, user: &str, signature: u64) -> bool {
        self.degraded
            .get(&(user.to_string(), signature))
            .map(|s| s.degraded)
            .unwrap_or(false)
    }

    /// Event-file writes that had to be retried against a flaky store.
    pub fn ingest_retry_count(&self) -> u64 {
        self.ingest_retries
    }

    /// Observations (measured and censored) recorded for a signature's tuner.
    pub fn observation_count(&self, user: &str, signature: u64) -> usize {
        self.tuners
            .peek(&(user.to_string(), signature))
            .map(|t| t.history.len())
            .unwrap_or(0)
    }

    /// Recompute the `app_cache` entry for an artifact after its run completes
    /// (the App Cache Generator job, Algorithm 2). `expected_p` is the data size the
    /// next run is expected to carry.
    pub fn update_app_cache(
        &mut self,
        user: &str,
        artifact_id: &str,
        signatures: &[u64],
        expected_p: f64,
    ) {
        self.log_event(&WalEvent::UpdateAppCache {
            user: user.to_string(),
            artifact_id: artifact_id.to_string(),
            signatures: signatures.to_vec(),
            expected_p,
        });
        if let Some(entry) = self.compute_app_cache_entry(user, signatures, expected_p) {
            self.commit_app_cache_entry(artifact_id, entry);
        }
    }

    /// The pure half of the App Cache Generator: run Algorithm 2 for one
    /// artifact's signatures without touching the cache or storage. `None`
    /// when no signature has a live tuner.
    fn compute_app_cache_entry(
        &self,
        user: &str,
        signatures: &[u64],
        expected_p: f64,
    ) -> Option<AppCacheEntry> {
        let inputs = self.gather_app_cache_inputs(user, signatures, expected_p)?;
        solve_app_cache_entry(
            &self.app_optimizer,
            self.baseline.as_ref(),
            self.seed,
            &inputs,
        )
    }

    /// Snapshot what Algorithm 2 needs for one artifact out of the live tuner
    /// map: centroids and embeddings, as plain data. Separated from
    /// [`AutotuneBackend::solve_app_cache_entry`] so a batch sweep can gather
    /// serially (tuners hold non-`Sync` selector state) and solve in parallel.
    fn gather_app_cache_inputs(
        &self,
        user: &str,
        signatures: &[u64],
        expected_p: f64,
    ) -> Option<AppCacheInputs> {
        let queries: Vec<QueryState> = signatures
            .iter()
            .filter_map(|&sig| {
                self.tuners
                    .peek(&(user.to_string(), sig))
                    .map(|t| QueryState {
                        signature: sig,
                        centroid: t.centroid(),
                    })
            })
            .collect();
        if queries.is_empty() {
            return None;
        }
        let embeddings: Vec<Vec<f64>> = signatures
            .iter()
            .map(|s| self.embeddings.get(s).cloned().unwrap_or_default())
            .collect();
        Some(AppCacheInputs {
            queries,
            embeddings,
            expected_p,
        })
    }

    /// The mutating half: persist (best-effort — the in-memory cache is
    /// authoritative for this process) and install one computed entry.
    fn commit_app_cache_entry(&mut self, artifact_id: &str, entry: AppCacheEntry) {
        if let Ok(bytes) = serde_json::to_vec(&entry) {
            let token = self.storage.issue_token("app_cache/", true, u64::MAX);
            let _ = self
                .storage
                .put(&token, &paths::app_cache(artifact_id), bytes);
        }
        self.app_cache.put(artifact_id, entry);
    }

    /// Refresh the `app_cache` for many artifacts at once — the nightly App
    /// Cache Generator sweep over every recurrent application of a user.
    /// Entries are *computed* concurrently on the ambient rockpool (each
    /// artifact is a stable-index task; Algorithm 2 is seeded identically to
    /// [`AutotuneBackend::update_app_cache`]) and *committed* serially in
    /// artifact order, so the resulting cache and storage writes are
    /// bit-identical to calling `update_app_cache` in a loop, for any
    /// `RH_THREADS` (DESIGN.md §7). Returns the number of entries installed.
    pub fn update_app_cache_batch(
        &mut self,
        user: &str,
        artifacts: &[(String, Vec<u64>, f64)],
    ) -> usize {
        // Log the whole sweep's intent up front: replaying one
        // `UpdateAppCache` per artifact through `update_app_cache` is
        // bit-identical to the batch (documented above), and a crash
        // mid-sweep recovers to the completed-sweep state the WAL promised.
        for (artifact_id, sigs, p) in artifacts {
            self.log_event(&WalEvent::UpdateAppCache {
                user: user.to_string(),
                artifact_id: artifact_id.clone(),
                signatures: sigs.clone(),
                expected_p: *p,
            });
        }
        // Gather serially (the tuner map holds non-Sync selector state), then
        // solve each artifact as a stable-index task on the pool over plain
        // Sync data; commits need `&mut self` and run after, in artifact order.
        let inputs: Vec<Option<AppCacheInputs>> = artifacts
            .iter()
            .map(|(_, sigs, p)| self.gather_app_cache_inputs(user, sigs, *p))
            .collect();
        let (optimizer, baseline, seed) = (&self.app_optimizer, self.baseline.as_ref(), self.seed);
        let entries: Vec<Option<AppCacheEntry>> =
            rockpool::Pool::from_env().map(&inputs, |_, maybe| {
                maybe
                    .as_ref()
                    .and_then(|i| solve_app_cache_entry(optimizer, baseline, seed, i))
            });
        let mut installed = 0;
        for (slot, entry) in artifacts.iter().zip(entries) {
            if let Some(entry) = entry {
                self.commit_app_cache_entry(&slot.0, entry);
                installed += 1;
            }
        }
        installed
    }

    /// The pre-computed app-level configuration for a submitting artifact, if any
    /// (read at job submission, bypassing all model inference).
    pub fn app_conf(&self, artifact_id: &str) -> Option<Vec<f64>> {
        self.app_cache.get(artifact_id).map(|e| e.app_point.clone())
    }

    /// Forecast the next run's data size for a signature from its observation
    /// history (see [`rockhopper::forecast`]); `None` before any observations.
    pub fn forecast_data_size(&self, user: &str, signature: u64) -> Option<f64> {
        self.tuners
            .peek(&(user.to_string(), signature))
            .and_then(|t| rockhopper::forecast::forecast_data_size(&t.history))
            .map(|f| f.value)
    }

    /// As [`AutotuneBackend::update_app_cache`], with the expected data size
    /// forecast from the queries' own histories (mean of per-signature forecasts) —
    /// the fully-automatic path the App Cache Generator runs after each application.
    pub fn update_app_cache_forecast(&mut self, user: &str, artifact_id: &str, signatures: &[u64]) {
        let forecasts: Vec<f64> = signatures
            .iter()
            .filter_map(|&s| self.forecast_data_size(user, s))
            .collect();
        let expected_p = if forecasts.is_empty() {
            1.0
        } else {
            ml::stats::mean(&forecasts)
        };
        self.update_app_cache(user, artifact_id, signatures, expected_p);
    }

    /// Number of live tuners (monitoring).
    pub fn tuner_count(&self) -> usize {
        self.tuners.len()
    }

    /// The tuner map's eviction bound.
    pub fn tuner_capacity(&self) -> usize {
        self.tuners.capacity()
    }

    /// Tuners evicted by the bounded state map over this backend's lifetime.
    pub fn tuner_evictions(&self) -> u64 {
        self.tuners.evictions()
    }

    /// This backend's shard identity as `(shard_id, shard_count)`.
    pub fn shard(&self) -> (u64, u64) {
        (self.shard_id, self.shard_count)
    }

    /// The monitoring dashboard (§6.3), accumulated from every ingested event file.
    pub fn dashboard(&self) -> &Dashboard {
        &self.dashboard
    }

    /// Harvest the warm-signature corpus for `user`: one [`CorpusEntry`] per
    /// resident tuner that has both a cached embedding and at least one real
    /// (non-censored) observation, in ascending signature order. This is the
    /// offline side of the retrieval loop (DESIGN.md §12): a warm backend
    /// harvests what it learned into a `rockindex::Corpus` so the next cold
    /// process can transfer from it without executing anything.
    pub fn harvest_corpus(&self, user: &str) -> Vec<CorpusEntry> {
        let mut entries = Vec::new();
        for ((owner, signature), tuner) in self.tuners.iter() {
            if owner != user {
                continue;
            }
            let Some(embedding) = self.embeddings.get(signature) else {
                continue;
            };
            let Some(best) = tuner.best_observed() else {
                continue;
            };
            let measured: Vec<f64> = tuner
                .history
                .all
                .iter()
                .filter(|o| !o.is_censored())
                .map(|o| o.elapsed_ms)
                .collect();
            if measured.is_empty() {
                continue;
            }
            let mean_elapsed_ms = measured.iter().sum::<f64>() / measured.len() as f64;
            entries.push(CorpusEntry {
                signature: *signature,
                embedding: embedding.clone(),
                best_point: best.point.clone(),
                observations: measured.len() as u64,
                best_elapsed_ms: best.elapsed_ms,
                mean_elapsed_ms,
                data_size: best.data_size,
            });
        }
        entries.sort_by_key(|e| e.signature);
        entries
    }

    /// Persist every per-signature tuner state as a model file (the Model Updater's
    /// output in Figure 7: models are written to storage for the next application's
    /// client to load). Returns the number of models written.
    // rhlint:allow(dead-pub): service persistence API for long-running deployments
    pub fn persist_models(&self) -> usize {
        let token = self.storage.issue_token("models/", true, u64::MAX);
        let mut written = 0;
        for ((user, sig), tuner) in self.tuners.iter() {
            let snap = tuner.snapshot();
            if let Ok(bytes) = serde_json::to_vec(&snap) {
                if self
                    .storage
                    .put(&token, &paths::model(user, *sig), bytes)
                    .is_ok()
                {
                    written += 1;
                }
            }
        }
        written
    }

    /// Restore every persisted tuner state from storage (what a freshly started
    /// backend process does). Malformed model files are skipped. Returns the number
    /// of models restored.
    // rhlint:allow(dead-pub): service persistence API for long-running deployments
    pub fn restore_models(&mut self) -> usize {
        let token = self.storage.issue_token("models/", false, u64::MAX);
        let Ok(files) = self.storage.list(&token, "models/") else {
            return 0;
        };
        let mut restored = 0;
        for path in files {
            // models/<user>/<signature-hex>.json
            let mut parts = path.trim_start_matches("models/").splitn(2, '/');
            let (Some(user), Some(file)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(sig) = u64::from_str_radix(file.trim_end_matches(".json"), 16) else {
                continue;
            };
            let Ok(bytes) = self.storage.get(&token, &path) else {
                continue;
            };
            let Ok(state) = serde_json::from_slice::<rockhopper::tuner::TunerState>(&bytes) else {
                continue;
            };
            let tuner = RockhopperTuner::restore(self.space.clone(), state, self.baseline.clone());
            let key = (user.to_string(), sig);
            if self.tuners.len() >= self.tuners.capacity() && !self.tuners.contains_key(&key) {
                // Same bound as `tuner_for`: a store with more persisted
                // models than the cap must not blow up a fresh backend.
                continue;
            }
            self.tuners.insert(key, tuner);
            restored += 1;
        }
        restored
    }

    /// Persist the region baseline model.
    // rhlint:allow(dead-pub): service persistence API for long-running deployments
    pub fn persist_baseline(&self, region: &str) -> bool {
        let Some(b) = &self.baseline else {
            return false;
        };
        let token = self.storage.issue_token("baseline/", true, u64::MAX);
        serde_json::to_vec(b)
            .ok()
            .and_then(|bytes| {
                self.storage
                    .put(&token, &paths::baseline(region), bytes)
                    .ok()
            })
            .is_some()
    }

    /// Load the region baseline model from storage into this backend.
    // rhlint:allow(dead-pub): service persistence API for long-running deployments
    pub fn load_baseline(&mut self, region: &str) -> bool {
        let token = self.storage.issue_token("baseline/", false, u64::MAX);
        let Ok(bytes) = self.storage.get(&token, &paths::baseline(region)) else {
            return false;
        };
        match serde_json::from_slice::<BaselineModel>(&bytes) {
            Ok(b) => {
                self.baseline = Some(b);
                true
            }
            Err(_) => false,
        }
    }

    // --- Durable learned state (DESIGN.md §10) ---

    /// Attach durable state under `dir`, treating *this backend's in-memory
    /// state* as authoritative: a full compacted snapshot is written
    /// immediately and every further mutation is WAL-logged. Anything
    /// already under `dir` is superseded by the new snapshot — the
    /// fresh-deployment / migration path. Use
    /// [`AutotuneBackend::recover_from`] to adopt on-disk state instead.
    /// Returns the snapshot's sequence number.
    pub fn persist_to(&mut self, dir: &Path) -> io::Result<u64> {
        self.persist_to_with(dir, durability::DEFAULT_SNAPSHOT_EVERY)
    }

    /// As [`AutotuneBackend::persist_to`] with an explicit snapshot cadence
    /// (records between compacted snapshots).
    pub fn persist_to_with(&mut self, dir: &Path, snapshot_every: u64) -> io::Result<u64> {
        let (d, _superseded) = Durability::open(dir, snapshot_every)?;
        // Fresh authority: sidecars under `dir` checkpoint a timeline this
        // backend is superseding, exactly like the WAL records themselves.
        d.clear_sidecars();
        self.durability = Some(d);
        self.write_snapshot_now()
    }

    /// Recover learned state from `dir` — newest valid snapshot, then every
    /// surviving WAL record replayed in original order — and keep logging
    /// there. The disk is authoritative: the snapshot's seed is adopted and
    /// replayed suggestions re-derive bit-identical configurations, because
    /// tuner RNG streams were checkpointed raw. Corruption (torn tails, bit
    /// flips, foreign-version snapshots, undecodable events) is quarantined
    /// and counted, never fatal; `Err` is reserved for real I/O failures on
    /// the directory itself.
    pub fn recover_from(&mut self, dir: &Path) -> io::Result<RecoveryReport> {
        self.recover_from_with(dir, durability::DEFAULT_SNAPSHOT_EVERY)
    }

    /// As [`AutotuneBackend::recover_from`] with an explicit snapshot cadence.
    pub fn recover_from_with(
        &mut self,
        dir: &Path,
        snapshot_every: u64,
    ) -> io::Result<RecoveryReport> {
        let (mut d, recovery) = Durability::open(dir, snapshot_every)?;
        let mut report = RecoveryReport {
            quarantined: recovery.quarantined,
            quarantined_bytes: recovery.quarantined_bytes,
            ..RecoveryReport::default()
        };
        // A snapshot whose CRC passed can still fail to decode (written by a
        // foreign build with a compatible envelope). Its records cover state
        // we then don't have — unless the snapshot sits at seq 0, where the
        // pre-snapshot state is vacuously empty and replay stays sound.
        let mut base_ok = true;
        if let Some(snap) = recovery.snapshot {
            // A decoded snapshot from a different shard lineage is as foreign
            // as an undecodable one: its records describe state routed under
            // another layout, and adopting them would smear signatures across
            // the wrong shards. Fail closed into a fresh shard.
            let decoded = serde_json::from_slice::<BackendSnapshot>(&snap.payload).ok();
            let lineage_ok = decoded
                .as_ref()
                .map(|s| s.shard_id == self.shard_id && s.shard_count == self.shard_count);
            match decoded.filter(|_| lineage_ok == Some(true)) {
                Some(s) => {
                    // The snapshot's served-memo stands in for the suggest
                    // records it compacted away: without these ops the
                    // serving layer would re-evaluate those keys on tuners
                    // that have already advanced past them.
                    for e in &s.served {
                        report.ops.push(ReplayedOp::Suggest {
                            user: e.user.clone(),
                            signature: e.signature,
                            ctx: e.ctx.clone(),
                            point: e.point.clone(),
                            provenance: e.provenance,
                        });
                    }
                    self.apply_snapshot(s);
                    report.restored_snapshot = true;
                }
                None => {
                    report.quarantined = report.quarantined.saturating_add(1);
                    report.quarantined_bytes = report
                        .quarantined_bytes
                        .saturating_add(u64::try_from(snap.payload.len()).unwrap_or(u64::MAX));
                    // An undecodable snapshot at seq 0 compacted nothing, so
                    // replaying the records over empty state stays sound; a
                    // *wrong-lineage* snapshot poisons its records too — they
                    // were routed under another shard layout.
                    base_ok = snap.seq == 0 && lineage_ok != Some(false);
                }
            }
        }
        if !base_ok {
            // The on-disk timeline is abandoned (its records cover state we
            // refused to adopt); its sidecar checkpoints go with it.
            d.clear_sidecars();
        }
        d.replaying = true;
        self.durability = Some(d);
        for (seq, payload) in recovery.records {
            let parsed = if base_ok {
                serde_json::from_slice::<WalEvent>(&payload).ok()
            } else {
                None
            };
            match parsed {
                Some(event) => {
                    // Sidecar writes/reads during this record's re-application
                    // are pinned to its sequence number, so replay sees the
                    // sidecar versions the live run saw at this point — not
                    // checkpoints from the timeline's (lost) future.
                    if let Some(d) = self.durability.as_mut() {
                        d.replay_seq = Some(seq);
                    }
                    self.replay_event(event, &mut report);
                    report.replayed = report.replayed.saturating_add(1);
                }
                None => {
                    report.quarantined = report.quarantined.saturating_add(1);
                    report.quarantined_bytes = report
                        .quarantined_bytes
                        .saturating_add(u64::try_from(payload.len()).unwrap_or(u64::MAX));
                }
            }
        }
        if let Some(d) = self.durability.as_mut() {
            d.replaying = false;
            d.replay_seq = None;
        }
        self.dashboard
            .record_recovery(report.replayed, report.quarantined);
        Ok(report)
    }

    /// Force-sync buffered WAL appends to disk — the drain path's flush.
    /// Deliberately *not* a final snapshot: the next boot exercises real log
    /// replay, so crash-recovery tests stay honest. No-op without durability.
    pub fn flush_durability(&mut self) -> io::Result<()> {
        match self.durability.as_mut() {
            None => Ok(()),
            Some(d) => d.sync(),
        }
    }

    /// Append one event to the WAL (no-op without durability or during
    /// replay). When the snapshot cadence is due, the compacted snapshot is
    /// written *before* the new event is appended: `log_event` runs under
    /// append-before-apply, so this is the only moment the in-memory state
    /// covers exactly the records already logged — snapshotting after the
    /// append would prune a record whose effects the snapshot lacks.
    /// Serving availability beats durability: a failed append degrades this
    /// process to in-memory-only rather than failing the request.
    fn log_event(&mut self, event: &WalEvent) {
        let (replaying, due) = match self.durability.as_ref() {
            None => return,
            Some(d) => (d.replaying, d.snapshot_due()),
        };
        if replaying {
            return;
        }
        if due {
            let _ = self.write_snapshot_now();
        }
        let appended = match self.durability.as_mut() {
            None => false,
            Some(d) => d.append_event(event).is_ok(),
        };
        if appended {
            self.dashboard.record_wal_write();
        }
    }

    /// Serialize the full learned state and write a compacted snapshot,
    /// pruning the WAL behind it.
    fn write_snapshot_now(&mut self) -> io::Result<u64> {
        let snap = self.snapshot_state();
        let bytes = serde_json::to_vec(&snap)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let seq = match self.durability.as_mut() {
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "durability not attached",
                ))
            }
            Some(d) => d.write_snapshot(&bytes)?,
        };
        self.dashboard.record_snapshot_write();
        Ok(seq)
    }

    /// Re-apply one replayed WAL event through the normal mutation paths
    /// (the `replaying` guard keeps them from re-logging).
    fn replay_event(&mut self, event: WalEvent, report: &mut RecoveryReport) {
        match event {
            WalEvent::Suggest {
                user,
                signature,
                ctx,
            } => {
                let (point, provenance) = self.suggest_tagged(&user, signature, &ctx);
                report.ops.push(ReplayedOp::Suggest {
                    user,
                    signature,
                    ctx,
                    point,
                    provenance,
                });
            }
            WalEvent::IngestJsonl { user, app_id, doc } => {
                let (events, _) = sparksim::event::from_jsonl_lossy(&doc);
                let signatures = durability::report_signatures(&events);
                self.ingest_jsonl(&user, &app_id, &doc);
                if !signatures.is_empty() {
                    report.ops.push(ReplayedOp::Invalidate { user, signatures });
                }
            }
            WalEvent::UpdateAppCache {
                user,
                artifact_id,
                signatures,
                expected_p,
            } => {
                self.update_app_cache(&user, &artifact_id, &signatures, expected_p);
            }
        }
    }

    /// Encode the full learned state with hash maps flattened into
    /// key-sorted vectors, so equal logical state gives equal bytes.
    fn snapshot_state(&self) -> BackendSnapshot {
        // Recency ranks are compacted to 0..n at encode time, so two
        // deterministic replicas that applied the same operations — even if
        // one of them recovered mid-way and re-assigned raw ticks — snapshot
        // identical bytes. Order, not absolute tick values, drives eviction.
        let rank_by_key: HashMap<&(String, u64), u64> = self
            .tuners
            .keys_by_recency()
            .enumerate()
            .map(|(rank, key)| (key, u64::try_from(rank).unwrap_or(u64::MAX)))
            .collect();
        let mut tuners: Vec<TunerEntry> = self
            .tuners
            .iter()
            .map(|(key, t)| TunerEntry {
                user: key.0.clone(),
                signature: key.1,
                state: t.snapshot(),
                tick: rank_by_key.get(key).copied().unwrap_or(0),
            })
            .collect();
        tuners.sort_by(|a, b| (&a.user, a.signature).cmp(&(&b.user, b.signature)));
        let mut embeddings: Vec<EmbeddingEntry> = self
            .embeddings
            .iter()
            .map(|(sig, e)| EmbeddingEntry {
                signature: *sig,
                embedding: e.clone(),
            })
            .collect();
        embeddings.sort_by_key(|e| e.signature);
        let mut degraded: Vec<DegradedEntry> = self
            .degraded
            .iter()
            .map(|((user, sig), s)| DegradedEntry {
                user: user.clone(),
                signature: *sig,
                degraded: s.degraded,
                suggests_while_degraded: s.suggests_while_degraded,
            })
            .collect();
        degraded.sort_by(|a, b| (&a.user, a.signature).cmp(&(&b.user, b.signature)));
        let mut served_keys: Vec<&(String, u64, String)> = self.served.keys().collect();
        served_keys.sort();
        let served: Vec<ServedEntry> = served_keys
            .into_iter()
            .filter_map(|k| {
                self.served
                    .get(k)
                    .map(|(ctx, point, provenance)| ServedEntry {
                        user: k.0.clone(),
                        signature: k.1,
                        ctx: ctx.clone(),
                        point: point.clone(),
                        provenance: *provenance,
                    })
            })
            .collect();
        BackendSnapshot {
            seed: self.seed,
            shard_id: self.shard_id,
            shard_count: self.shard_count,
            ingest_retries: self.ingest_retries,
            tuners,
            embeddings,
            degraded,
            served,
            app_cache: self.app_cache.clone(),
            dashboard: self.dashboard.clone(),
        }
    }

    /// Install a decoded snapshot as this backend's state. The baseline and
    /// policy knobs are construction-time configuration and stay as-is.
    fn apply_snapshot(&mut self, snap: BackendSnapshot) {
        self.seed = snap.seed;
        self.ingest_retries = snap.ingest_retries;
        self.app_cache = snap.app_cache;
        self.dashboard = snap.dashboard;
        // Rebuild the tuner map in recency order (coldest first) so the
        // restored LRU evicts exactly as the writer's would have. A snapshot
        // holding more entries than this backend's capacity keeps only the
        // most recent ones.
        let capacity = self.tuners.capacity();
        self.tuners = LruMap::new(capacity);
        let mut entries = snap.tuners;
        entries.sort_by_key(|t| t.tick);
        let skip = entries.len().saturating_sub(capacity);
        for t in entries.into_iter().skip(skip) {
            let tuner =
                RockhopperTuner::restore(self.space.clone(), t.state, self.baseline.clone());
            self.tuners.insert((t.user, t.signature), tuner);
        }
        self.embeddings = snap
            .embeddings
            .into_iter()
            .take(MAX_TRACKED_EMBEDDINGS)
            .map(|e| (e.signature, e.embedding))
            .collect();
        self.degraded = snap
            .degraded
            .into_iter()
            .take(MAX_TRACKED_DEGRADED)
            .map(|d| {
                (
                    (d.user, d.signature),
                    DegradedState {
                        degraded: d.degraded,
                        suggests_while_degraded: d.suggests_while_degraded,
                    },
                )
            })
            .collect();
        self.served.clear();
        for e in snap.served.into_iter().take(MAX_SERVED_MEMO) {
            let Ok(ctx_key) = serde_json::to_string(&e.ctx) else {
                continue;
            };
            self.served.insert(
                (e.user, e.signature, ctx_key),
                (e.ctx, e.point, e.provenance),
            );
        }
    }
}

/// One artifact's snapshotted Algorithm 2 inputs: plain `Sync` data carved
/// out of the live (non-`Sync`) tuner map so batch solves can fan out.
struct AppCacheInputs {
    queries: Vec<QueryState>,
    embeddings: Vec<Vec<f64>>,
    expected_p: f64,
}

/// Run Algorithm 2 over one artifact's snapshotted inputs. A free function of
/// `Sync` arguments only, so any number of artifacts solve concurrently
/// ([`AutotuneBackend::update_app_cache_batch`]).
fn solve_app_cache_entry(
    optimizer: &AppLevelOptimizer,
    baseline: Option<&BaselineModel>,
    seed: u64,
    inputs: &AppCacheInputs,
) -> Option<AppCacheEntry> {
    // Score with the baseline model when present (embedding + query point at the
    // expected data size), discounted by a simple parallelism factor from the
    // app-level executor knob — app knobs are otherwise invisible to the
    // query-level baseline.
    let app_space = &optimizer.app_space;
    let expected_p = inputs.expected_p;
    let score = move |qi: usize, app: &[f64], query: &[f64]| -> f64 {
        let base = match (baseline, inputs.embeddings.get(qi)) {
            (Some(b), Some(emb)) => b.predict_ms(emb, query, expected_p),
            _ => 1000.0,
        };
        // More executors shorten wide stages but add startup/GC drag: a convex
        // proxy with an interior optimum at ~60% of the executor range.
        // Fall back to the proxy's optimum (multiplier 1.0) if either the app
        // space or the candidate point is unexpectedly empty.
        let xe = match (app_space.dims.first(), app.first()) {
            (Some(dim), Some(&v)) => dim.normalize(v),
            _ => 0.6,
        };
        base * (1.0 + 0.6 * (xe - 0.6) * (xe - 0.6))
    };
    let current = optimizer.app_space.default_point();
    optimizer.optimize(&current, &inputs.queries, score, seed ^ 0x00AC_CAFE)
}

/// Messages from clients to the backend thread.
enum Request {
    Suggest {
        user: String,
        signature: u64,
        ctx: TuningContext,
        reply: Sender<(Vec<f64>, Provenance)>,
    },
    Ingest {
        user: String,
        app_id: String,
        events: Vec<SparkEvent>,
    },
    IngestJsonl {
        user: String,
        app_id: String,
        doc: String,
    },
    Counters {
        reply: Sender<DashboardCounters>,
    },
    UpdateAppCache {
        user: String,
        artifact_id: String,
        signatures: Vec<u64>,
        expected_p: f64,
    },
    AppConf {
        artifact_id: String,
        reply: Sender<Option<Vec<f64>>>,
    },
    Shutdown,
}

/// The backend running on its own thread.
pub struct AutotuneService {
    tx: Sender<Request>,
    handle: Option<JoinHandle<AutotuneBackend>>,
}

impl AutotuneService {
    /// Spawn the backend thread; returns the service handle and a client.
    pub fn spawn(mut backend: AutotuneBackend) -> (AutotuneService, AutotuneClient) {
        let (tx, rx) = unbounded::<Request>();
        let handle = std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                match req {
                    Request::Suggest {
                        user,
                        signature,
                        ctx,
                        reply,
                    } => {
                        let tagged = backend.suggest_tagged(&user, signature, &ctx);
                        let _ = reply.send(tagged);
                    }
                    Request::Ingest {
                        user,
                        app_id,
                        events,
                    } => backend.ingest(&user, &app_id, &events),
                    Request::IngestJsonl { user, app_id, doc } => {
                        backend.ingest_jsonl(&user, &app_id, &doc);
                    }
                    Request::Counters { reply } => {
                        let _ = reply.send(backend.dashboard().counters());
                    }
                    Request::UpdateAppCache {
                        user,
                        artifact_id,
                        signatures,
                        expected_p,
                    } => backend.update_app_cache(&user, &artifact_id, &signatures, expected_p),
                    Request::AppConf { artifact_id, reply } => {
                        let _ = reply.send(backend.app_conf(&artifact_id));
                    }
                    Request::Shutdown => break,
                }
            }
            backend
        });
        (
            AutotuneService {
                tx: tx.clone(),
                handle: Some(handle),
            },
            AutotuneClient { tx },
        )
    }

    /// Stop the backend thread and recover the backend state. `None` if the
    /// backend thread panicked (its state is lost with it).
    pub fn shutdown(mut self) -> Option<AutotuneBackend> {
        let _ = self.tx.send(Request::Shutdown);
        self.handle.take()?.join().ok()
    }
}

impl Drop for AutotuneService {
    /// A dropped service must not leave its backend thread detached: even when
    /// callers skip [`AutotuneService::shutdown`], send the shutdown request
    /// and *join*. Queued work drains first (the shutdown message sits behind
    /// it in the channel), so no accepted ingest is lost; a panicked backend's
    /// payload is swallowed here because drop runs on unwind paths too.
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(Request::Shutdown);
            let _ = handle.join();
        }
    }
}

/// Why a suggestion fell back instead of coming from the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuggestFallback {
    /// The backend thread is gone (channel disconnected).
    BackendDown,
    /// The backend did not answer within the timeout.
    TimedOut,
}

impl std::fmt::Display for SuggestFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuggestFallback::BackendDown => write!(f, "backend down"),
            SuggestFallback::TimedOut => write!(f, "backend timed out"),
        }
    }
}

/// Cluster-side handle: the model loader + query listener pair.
#[derive(Clone)]
pub struct AutotuneClient {
    tx: Sender<Request>,
}

impl AutotuneClient {
    /// Request a query-level configuration (blocks for the reply, as config
    /// inference sits on the submission critical path — but never longer than
    /// `timeout`). On error — a dead or wedged backend — callers should serve
    /// the default configuration; [`AutotuneClient::suggest_or_default`] does
    /// exactly that.
    pub fn suggest(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
    ) -> Result<Vec<f64>, SuggestFallback> {
        self.suggest_tagged(user, signature, ctx, timeout)
            .map(|(point, _)| point)
    }

    /// As [`AutotuneClient::suggest`], also returning the provenance tag —
    /// whether the point was [`Provenance::Transferred`] from the retrieval
    /// corpus or [`Provenance::Explored`] by the tuner's own loop.
    pub fn suggest_tagged(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
    ) -> Result<(Vec<f64>, Provenance), SuggestFallback> {
        let (reply_tx, reply_rx) = unbounded();
        if self
            .tx
            .send(Request::Suggest {
                user: user.to_string(),
                signature,
                ctx: ctx.clone(),
                reply: reply_tx,
            })
            .is_err()
        {
            return Err(SuggestFallback::BackendDown);
        }
        match reply_rx.recv_timeout(timeout) {
            Ok(tagged) => Ok(tagged),
            Err(RecvTimeoutError::Disconnected) => Err(SuggestFallback::BackendDown),
            Err(RecvTimeoutError::Timeout) => Err(SuggestFallback::TimedOut),
        }
    }

    /// As [`AutotuneClient::suggest`], degrading to the space's default
    /// configuration when the backend is dead or wedged. Returns the point to
    /// run plus the fallback reason, if any.
    pub fn suggest_or_default(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
        space: &ConfigSpace,
    ) -> (Vec<f64>, Option<SuggestFallback>) {
        let (point, _, fallback) =
            self.suggest_or_default_tagged(user, signature, ctx, timeout, space);
        (point, fallback)
    }

    /// As [`AutotuneClient::suggest_or_default`], also returning the
    /// provenance tag. A fallback default point is always
    /// [`Provenance::Explored`] — nothing was transferred.
    pub fn suggest_or_default_tagged(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
        space: &ConfigSpace,
    ) -> (Vec<f64>, Provenance, Option<SuggestFallback>) {
        match self.suggest_tagged(user, signature, ctx, timeout) {
            Ok((point, provenance)) => (point, provenance, None),
            Err(why) => (space.default_point(), Provenance::Explored, Some(why)),
        }
    }

    /// Ship an application's event file to the backend (fire-and-forget, like the
    /// Event Hub trigger).
    pub fn ingest(&self, user: &str, app_id: &str, events: Vec<SparkEvent>) {
        let _ = self.tx.send(Request::Ingest {
            user: user.to_string(),
            app_id: app_id.to_string(),
            events,
        });
    }

    /// Ship a raw JSON-lines event document to the backend (fire-and-forget) —
    /// the wire-ingest path used by `rockserve`'s `Report` frame. Corrupt or
    /// truncated lines are quarantined backend-side instead of poisoning the
    /// document.
    pub fn report_jsonl(&self, user: &str, app_id: &str, doc: String) {
        let _ = self.tx.send(Request::IngestJsonl {
            user: user.to_string(),
            app_id: app_id.to_string(),
            doc,
        });
    }

    /// Snapshot the backend's dashboard counters (blocks for the reply, never
    /// longer than `timeout`). `None` when the backend is gone or wedged —
    /// callers surface a default (zeroed) snapshot instead of failing.
    pub fn dashboard_counters(&self, timeout: Duration) -> Option<DashboardCounters> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx.send(Request::Counters { reply: reply_tx }).ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Ask the backend to refresh an artifact's app cache.
    pub fn update_app_cache(
        &self,
        user: &str,
        artifact_id: &str,
        signatures: Vec<u64>,
        expected_p: f64,
    ) {
        let _ = self.tx.send(Request::UpdateAppCache {
            user: user.to_string(),
            artifact_id: artifact_id.to_string(),
            signatures,
            expected_p,
        });
    }

    /// Fetch the pre-computed app-level configuration (blocks for the reply).
    /// `None` if no entry exists or the backend thread has shut down.
    pub fn app_conf(&self, artifact_id: &str) -> Option<Vec<f64>> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Request::AppConf {
                artifact_id: artifact_id.to_string(),
                reply: reply_tx,
            })
            .ok()?;
        reply_rx.recv().ok()?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimizers::env::Environment;
    use optimizers::QueryEnv;
    use sparksim::noise::NoiseSpec;

    fn backend() -> AutotuneBackend {
        AutotuneBackend::new(Arc::new(Storage::new()), None, 42)
    }

    fn drive_query(backend: &mut AutotuneBackend, env: &mut QueryEnv, user: &str, iters: usize) {
        let sig = env.signature();
        for i in 0..iters {
            let ctx = env.context();
            let point = backend.suggest(user, sig, &ctx);
            let conf = env.space().to_conf(&point);
            let plan = env.plan.clone().scaled(env.schedule.size_at(i as u32));
            let run = env.sim.execute(&plan, &conf, i as u64);
            let events = env.sim.events_for_run(
                &format!("app-{i}"),
                "artifact-x",
                sig,
                &plan,
                &conf,
                ctx.embedding.clone(),
                &run,
            );
            backend.ingest(user, &format!("app-{i}"), &events);
            let _ = env.run(&point); // keep the env's iteration counter in step
        }
    }

    #[test]
    fn suggest_creates_one_tuner_per_user_signature() {
        let mut b = backend();
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        let ctx = env.context();
        b.suggest("alice", 1, &ctx);
        b.suggest("alice", 1, &ctx);
        b.suggest("alice", 2, &ctx);
        b.suggest("bob", 1, &ctx);
        assert_eq!(b.tuner_count(), 3);
    }

    #[test]
    fn ingest_persists_events_and_updates_tuners() {
        let mut b = backend();
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        drive_query(&mut b, &mut env, "alice", 5);
        // Event files landed in storage.
        let token = b.storage.issue_token("events/", false, u64::MAX);
        assert_eq!(b.storage.list(&token, "events/").unwrap().len(), 5);
        // The tuner accumulated all five observations.
        let t = b
            .tuners
            .get(&("alice".to_string(), env.signature()))
            .unwrap();
        assert_eq!(t.history.len(), 5);
    }

    #[test]
    fn privacy_isolation_between_users() {
        let mut b = backend();
        let mut env_a = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        drive_query(&mut b, &mut env_a, "alice", 3);
        let sig = env_a.signature();
        // Bob's tuner for the same signature shares nothing with Alice's.
        let ctx = env_a.context();
        b.suggest("bob", sig, &ctx);
        let bob = b.tuners.get(&("bob".to_string(), sig)).unwrap();
        assert_eq!(bob.history.len(), 0);
        let alice = b.tuners.get(&("alice".to_string(), sig)).unwrap();
        assert_eq!(alice.history.len(), 3);
    }

    #[test]
    fn app_cache_roundtrips_through_backend_and_storage() {
        let mut b = backend();
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        drive_query(&mut b, &mut env, "alice", 3);
        let sig = env.signature();
        assert!(b.app_conf("artifact-x").is_none());
        b.update_app_cache("alice", "artifact-x", &[sig], 1e6);
        let conf = b.app_conf("artifact-x").expect("cache entry exists");
        assert_eq!(conf.len(), 2); // executors + memory
                                   // Persisted too.
        let token = b.storage.issue_token("app_cache/", false, u64::MAX);
        assert!(b
            .storage
            .get(&token, &paths::app_cache("artifact-x"))
            .is_ok());
    }

    #[test]
    fn app_cache_for_unknown_signatures_is_a_noop() {
        let mut b = backend();
        b.update_app_cache("alice", "artifact-y", &[999], 1.0);
        assert!(b.app_conf("artifact-y").is_none());
    }

    #[test]
    fn dashboard_tracks_ingested_queries() {
        let mut b = backend();
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        drive_query(&mut b, &mut env, "alice", 6);
        let sig = env.signature();
        let m = b
            .dashboard()
            .monitor(sig)
            .expect("dashboard tracks the signature");
        assert_eq!(m.records.len(), 6);
        assert!(b.dashboard().render().contains(&format!("{sig:016x}")));
    }

    #[test]
    fn forecast_and_auto_app_cache_work_end_to_end() {
        let mut b = backend();
        let mut env = QueryEnv::new(
            workloads::tpch::query(6, 0.1),
            NoiseSpec::none(),
            workloads::dynamic::DataSchedule::LinearIncreasing {
                start: 1.0,
                slope: 0.2,
            },
            3,
        );
        let sig = env.signature();
        assert!(b.forecast_data_size("u", sig).is_none());
        drive_query(&mut b, &mut env, "u", 12);
        let f = b.forecast_data_size("u", sig).expect("history exists");
        // Input grows each run; the forecast must exceed the first run's size.
        let first = b.tuners.get(&("u".to_string(), sig)).unwrap().history.all[0].data_size;
        assert!(f > first, "forecast {f} vs first observation {first}");
        b.update_app_cache_forecast("u", "artifact-f", &[sig]);
        assert!(b.app_conf("artifact-f").is_some());
    }

    #[test]
    fn model_persistence_survives_backend_restart() {
        let storage = Arc::new(Storage::new());
        let mut b = AutotuneBackend::new(Arc::clone(&storage), None, 7);
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 7);
        drive_query(&mut b, &mut env, "alice", 8);
        let sig = env.signature();
        assert_eq!(b.persist_models(), 1);
        drop(b);

        // A fresh backend process over the same storage resumes where it left off.
        let mut b2 = AutotuneBackend::new(Arc::clone(&storage), None, 7);
        assert_eq!(b2.tuner_count(), 0);
        assert_eq!(b2.restore_models(), 1);
        assert_eq!(b2.tuner_count(), 1);
        let t = b2.tuners.get(&("alice".to_string(), sig)).unwrap();
        assert_eq!(t.history.len(), 8);
    }

    #[test]
    fn baseline_persist_load_roundtrip() {
        use rockhopper::baseline::{BaselineModel, BaselineRow};
        let space = optimizers::space::ConfigSpace::query_level();
        let rows: Vec<BaselineRow> = (0..30)
            .map(|i| BaselineRow {
                embedding: vec![1.0],
                point: space.default_point(),
                data_size: 1.0,
                elapsed_ms: 100.0 + i as f64,
            })
            .collect();
        let baseline = BaselineModel::train(&space, &rows, 1).unwrap();
        let storage = Arc::new(Storage::new());
        let b = AutotuneBackend::new(Arc::clone(&storage), Some(baseline), 1);
        assert!(b.persist_baseline("westus"));
        drop(b);

        let mut b2 = AutotuneBackend::new(storage, None, 1);
        assert!(!b2.persist_baseline("westus"), "no baseline yet");
        assert!(b2.load_baseline("westus"));
        assert!(b2.persist_baseline("westus"));
        assert!(!b2.load_baseline("eastus"), "unknown region");
    }

    #[test]
    fn restore_skips_garbage_model_files() {
        let storage = Arc::new(Storage::new());
        let token = storage.issue_token("models/", true, u64::MAX);
        storage
            .put(&token, "models/u/zzzz.json", b"not json".to_vec())
            .unwrap();
        storage
            .put(&token, "models/odd-path", b"{}".to_vec())
            .unwrap();
        let mut b = AutotuneBackend::new(storage, None, 1);
        assert_eq!(b.restore_models(), 0);
    }

    #[test]
    fn service_threads_answer_clients() {
        let b = backend();
        let (service, client) = AutotuneService::spawn(b);
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        let ctx = env.context();
        let point = client
            .suggest("alice", 7, &ctx, Duration::from_secs(10))
            .expect("backend alive");
        assert_eq!(point.len(), 3);
        assert!(client.app_conf("none").is_none());
        let backend = service.shutdown().expect("backend exits cleanly");
        assert_eq!(backend.tuner_count(), 1);
    }

    #[test]
    fn jsonl_report_and_counters_flow_through_the_service() {
        let (service, client) = AutotuneService::spawn(backend());
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        let sig = env.signature();
        let ctx = env.context();
        let point = client
            .suggest("alice", sig, &ctx, Duration::from_secs(10))
            .expect("backend alive");
        let conf = env.space().to_conf(&point);
        let plan = env.plan.clone().scaled(1.0);
        let run = env.sim.execute(&plan, &conf, 0);
        let events = env.sim.events_for_run(
            "app-0",
            "art",
            sig,
            &plan,
            &conf,
            ctx.embedding.clone(),
            &run,
        );
        let mut doc = sparksim::event::to_jsonl(&events);
        doc.push_str("{\"mangled\": tru\n");
        client.report_jsonl("alice", "app-0", doc);
        // The ingest is fire-and-forget, but Counters queues *behind* it on the
        // same channel, so the reply reflects the processed document.
        let snap = client
            .dashboard_counters(Duration::from_secs(10))
            .expect("backend alive");
        assert_eq!(snap.ingested_records, 1);
        assert_eq!(snap.quarantined_lines, 1);
        assert_eq!(snap.tracked_signatures, 1);
        let backend = service.shutdown().expect("backend exits cleanly");
        assert_eq!(backend.dashboard().counters(), snap);
        // A dead backend yields no snapshot rather than hanging.
        assert!(client
            .dashboard_counters(Duration::from_millis(50))
            .is_none());
    }

    fn start_event(app: &str, sig: u64, conf: SparkConf) -> SparkEvent {
        SparkEvent::QueryStart {
            app_id: app.into(),
            query_signature: sig,
            conf,
            plan_summary: vec![],
            embedding: vec![0.5],
        }
    }

    use sparksim::config::SparkConf;

    #[test]
    fn failed_runs_become_censored_observations() {
        let mut b = backend();
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        drive_query(&mut b, &mut env, "alice", 3);
        let sig = env.signature();
        // A run that started but never ended: censored, counted, not ignored.
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 32.0;
        b.ingest("alice", "app-crash", &[start_event("app-crash", sig, conf)]);
        let t = b.tuners.get(&("alice".to_string(), sig)).unwrap();
        assert_eq!(t.history.len(), 4);
        assert_eq!(t.history.censored_count(), 1);
        let censored = t.history.all.last().unwrap();
        assert!(censored.is_censored());
        // Penalty scales from the worst measured time, never poisons best_raw.
        let worst = t
            .history
            .all
            .iter()
            .filter(|o| !o.is_censored())
            .map(|o| o.elapsed_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((censored.elapsed_ms - 2.0 * worst).abs() < 1e-9);
        assert!(!b.dashboard().monitor(sig).is_none());
        assert_eq!(b.dashboard().counters().failed_runs, 1);
    }

    #[test]
    fn repeated_failures_trigger_degraded_mode_and_probe_reenables() {
        let mut b = backend().with_degraded_policy(2, 3);
        let sig = 77u64;
        let ctx = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1).context();
        let space = ConfigSpace::query_level();
        // Two straight failures flip the signature into degraded mode.
        for i in 0..2 {
            let mut conf = SparkConf::default();
            conf.shuffle_partitions = 16.0;
            b.ingest("u", &format!("app-{i}"), &[start_event("x", sig, conf)]);
        }
        assert!(b.is_degraded("u", sig));
        // Degraded: suggestions 1 and 2 serve the default; the 3rd probes.
        assert_eq!(b.suggest("u", sig, &ctx), space.default_point());
        assert_eq!(b.suggest("u", sig, &ctx), space.default_point());
        let probe = b.suggest("u", sig, &ctx);
        // A completed run on a tuned (non-default) config re-enables tuning.
        let mut tuned = SparkConf::default();
        tuned.shuffle_partitions = 555.0;
        let events = vec![
            start_event("app-ok", sig, tuned),
            SparkEvent::QueryEnd {
                app_id: "app-ok".into(),
                query_signature: sig,
                metrics: sparksim::metrics::QueryMetrics {
                    elapsed_ms: 120.0,
                    true_ms: 120.0,
                    num_stages: 1,
                    num_tasks: 1,
                    input_bytes: 100.0,
                    input_rows: 1.0,
                    root_rows: 1.0,
                    shuffle_bytes: 0.0,
                    spilled_bytes: 0.0,
                    broadcast_joins: 0,
                    sort_merge_joins: 0,
                },
            },
        ];
        b.ingest("u", "app-ok", &events);
        assert!(!b.is_degraded("u", sig));
        // Probe length sanity: the probe is a real point in the space.
        assert_eq!(probe.len(), space.dims.len());
    }

    #[test]
    fn default_config_success_does_not_reenable_tuning() {
        let mut b = backend().with_degraded_policy(1, 100);
        let sig = 5u64;
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 16.0;
        b.ingest("u", "app-0", &[start_event("x", sig, conf)]);
        assert!(b.is_degraded("u", sig));
        // A success on the *default* config proves nothing about tuning.
        let events = vec![
            start_event("app-1", sig, SparkConf::default()),
            SparkEvent::QueryEnd {
                app_id: "app-1".into(),
                query_signature: sig,
                metrics: sparksim::metrics::QueryMetrics {
                    elapsed_ms: 100.0,
                    true_ms: 100.0,
                    num_stages: 1,
                    num_tasks: 1,
                    input_bytes: 100.0,
                    input_rows: 1.0,
                    root_rows: 1.0,
                    shuffle_bytes: 0.0,
                    spilled_bytes: 0.0,
                    broadcast_joins: 0,
                    sort_merge_joins: 0,
                },
            },
        ];
        b.ingest("u", "app-1", &events);
        assert!(
            b.is_degraded("u", sig),
            "default success must not re-enable"
        );
    }

    #[test]
    fn ingest_retries_transient_storage_outages() {
        let storage = Arc::new(Storage::new());
        let mut b = AutotuneBackend::new(Arc::clone(&storage), None, 3);
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 3);
        storage.inject_put_failures(2); // first two attempts bounce
        drive_query(&mut b, &mut env, "alice", 1);
        assert_eq!(b.ingest_retry_count(), 2);
        let token = storage.issue_token("events/", false, u64::MAX);
        assert_eq!(
            storage.list(&token, "events/").unwrap().len(),
            1,
            "event file landed despite the outage"
        );
    }

    #[test]
    fn ingest_survives_a_full_outage() {
        let storage = Arc::new(Storage::new());
        let mut b = AutotuneBackend::new(Arc::clone(&storage), None, 3);
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 3);
        storage.inject_put_failures(1_000);
        drive_query(&mut b, &mut env, "alice", 1);
        // Persistence gave up, but the tuner still learned from the run.
        let t = b
            .tuners
            .get(&("alice".to_string(), env.signature()))
            .unwrap();
        assert_eq!(t.history.len(), 1);
    }

    #[test]
    fn jsonl_ingest_quarantines_corrupt_lines() {
        let mut b = backend();
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        let sig = env.signature();
        let ctx = env.context();
        let point = b.suggest("alice", sig, &ctx);
        let conf = env.space().to_conf(&point);
        let plan = env.plan.clone().scaled(1.0);
        let run = env.sim.execute(&plan, &conf, 0);
        let events = env.sim.events_for_run(
            "app-0",
            "art",
            sig,
            &plan,
            &conf,
            ctx.embedding.clone(),
            &run,
        );
        let mut doc = sparksim::event::to_jsonl(&events);
        doc.push_str("{\"mangled\": tru\n");
        b.ingest_jsonl("alice", "app-0", &doc);
        assert_eq!(b.dashboard().counters().quarantined_lines, 1);
        let t = b.tuners.get(&("alice".to_string(), sig)).unwrap();
        assert_eq!(t.history.len(), 1, "good lines still train the tuner");
    }

    #[test]
    fn client_times_out_against_a_wedged_backend() {
        // A channel nobody services: the send succeeds, the reply never comes.
        let (tx, _rx) = unbounded::<Request>();
        let client = AutotuneClient { tx };
        let ctx = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1).context();
        assert_eq!(
            client.suggest("u", 1, &ctx, Duration::from_millis(20)),
            Err(SuggestFallback::TimedOut)
        );
        let space = ConfigSpace::query_level();
        let (point, why) =
            client.suggest_or_default("u", 1, &ctx, Duration::from_millis(20), &space);
        assert_eq!(point, space.default_point());
        assert_eq!(why, Some(SuggestFallback::TimedOut));
        assert_eq!(
            format!("{}", SuggestFallback::TimedOut),
            "backend timed out"
        );
    }

    #[test]
    fn client_reports_a_dead_backend() {
        let (service, client) = AutotuneService::spawn(backend());
        let _ = service.shutdown();
        let ctx = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1).context();
        let err = client
            .suggest("u", 1, &ctx, Duration::from_millis(100))
            .unwrap_err();
        assert_eq!(err, SuggestFallback::BackendDown);
    }

    #[test]
    fn concurrent_clients_are_serialized_by_the_backend() {
        let (service, client) = AutotuneService::spawn(backend());
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 1);
        let ctx = env.context();
        std::thread::scope(|s| {
            for u in 0..4 {
                let c = client.clone();
                let ctx = ctx.clone();
                s.spawn(move || {
                    for sig in 0..5u64 {
                        let p = c
                            .suggest(&format!("user-{u}"), sig, &ctx, Duration::from_secs(10))
                            .expect("backend alive");
                        assert_eq!(p.len(), 3);
                    }
                });
            }
        });
        let backend = service.shutdown().expect("backend exits cleanly");
        assert_eq!(backend.tuner_count(), 20);
    }

    // --- Durable learned state ---

    /// Fresh state dir under the system tempdir, removed on drop.
    struct StateDir(std::path::PathBuf);

    impl StateDir {
        fn new(tag: &str) -> StateDir {
            static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
            let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let root =
                std::env::temp_dir().join(format!("rockdur-svc-{tag}-{}-{id}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            StateDir(root)
        }
    }

    impl Drop for StateDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Drive `n` suggest+ingest rounds against a backend; returns the env.
    fn drive_rounds(b: &mut AutotuneBackend, n: usize) -> QueryEnv {
        let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 7);
        drive_query(b, &mut env, "alice", n);
        env
    }

    #[test]
    fn durability_logging_does_not_perturb_suggestions() {
        let dir = StateDir::new("noperturb");
        let mut plain = backend();
        let mut durable = backend();
        durable.persist_to_with(&dir.0, 4).expect("attach");
        let mut env_a = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 7);
        let mut env_b = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 7);
        let sig = env_a.signature();
        for i in 0..6 {
            let ctx = env_a.context();
            let _ = env_b.context();
            let pa = plain.suggest("alice", sig, &ctx);
            let pb = durable.suggest("alice", sig, &ctx);
            assert_eq!(pa, pb, "round {i}: WAL logging must be invisible");
            let _ = env_a.run(&pa);
            let _ = env_b.run(&pb);
        }
    }

    #[test]
    fn crash_recovery_replays_to_bit_identical_suggestions() {
        let dir = StateDir::new("replay");
        // Reference run: never crashes, never persists.
        let mut reference = backend();
        let ref_env = drive_rounds(&mut reference, 6);
        let sig = ref_env.signature();

        // Durable run: same workload, then "crash" (drop without snapshot —
        // flush is a WAL sync only, so boot exercises real log replay).
        let mut durable = backend();
        durable.persist_to_with(&dir.0, 1000).expect("attach");
        drive_rounds(&mut durable, 6);
        durable.update_app_cache("alice", "artifact-x", &[sig], 1.0);
        reference.update_app_cache("alice", "artifact-x", &[sig], 1.0);
        durable.flush_durability().expect("flush");
        drop(durable);

        let mut recovered = backend();
        let report = recovered.recover_from_with(&dir.0, 1000).expect("recover");
        assert!(report.replayed > 0, "log replay must do work");
        assert_eq!(report.quarantined, 0, "clean shutdown has no quarantine");
        assert_eq!(
            recovered.observation_count("alice", sig),
            reference.observation_count("alice", sig)
        );
        assert_eq!(
            recovered.app_conf("artifact-x"),
            reference.app_conf("artifact-x")
        );
        // Replayed suggests re-derived the original points bit-exactly.
        assert!(report
            .ops
            .iter()
            .any(|op| matches!(op, ReplayedOp::Suggest { .. })));
        // The decisive check: both backends continue the *same* stream.
        let ctx = ref_env.context();
        for i in 0..10 {
            assert_eq!(
                reference.suggest("alice", sig, &ctx),
                recovered.suggest("alice", sig, &ctx),
                "post-recovery round {i} must be bit-identical"
            );
        }
        let c = recovered.dashboard().counters();
        assert_eq!(c.recovery_replayed, report.replayed);
    }

    #[test]
    fn snapshot_compaction_recovers_like_full_replay() {
        let a = StateDir::new("compact-a");
        let b = StateDir::new("compact-b");
        // Same workload, wildly different snapshot cadences: cadence 3
        // compacts repeatedly (pruning the log), cadence 1000 never does.
        let mut often = backend();
        often.persist_to_with(&a.0, 3).expect("attach");
        let mut rarely = backend();
        rarely.persist_to_with(&b.0, 1000).expect("attach");
        let env = drive_rounds(&mut often, 6);
        drive_rounds(&mut rarely, 6);
        let sig = env.signature();
        often.flush_durability().expect("flush");
        rarely.flush_durability().expect("flush");
        assert!(often.dashboard().counters().snapshot_writes > 1);
        drop(often);
        drop(rarely);

        let mut from_snap = backend();
        let snap_report = from_snap.recover_from_with(&a.0, 3).expect("recover a");
        let mut from_log = backend();
        from_log.recover_from_with(&b.0, 1000).expect("recover b");
        assert!(
            snap_report.restored_snapshot,
            "cadence 3 must have compacted"
        );
        let ctx = env.context();
        for _ in 0..8 {
            assert_eq!(
                from_snap.suggest("alice", sig, &ctx),
                from_log.suggest("alice", sig, &ctx),
                "snapshot+tail and pure-log recovery must agree bit-exactly"
            );
        }
    }

    #[test]
    fn torn_tail_recovery_keeps_the_committed_prefix() {
        let dir = StateDir::new("torn");
        let mut durable = backend();
        durable.persist_to_with(&dir.0, 1000).expect("attach");
        drive_rounds(&mut durable, 6);
        durable.flush_durability().expect("flush");
        drop(durable);
        let chopped = rockdur::fault::torn_tail(&dir.0, 0xC0FFEE).expect("chop");
        assert!(chopped > 0);

        let mut recovered = backend();
        let report = recovered.recover_from(&dir.0).expect("never fatal");
        assert!(report.quarantined >= 1, "the torn suffix is quarantined");
        assert!(report.replayed > 0, "the committed prefix still replays");
        let c = recovered.dashboard().counters();
        assert!(c.wal_records_quarantined >= 1);
        // The backend keeps serving after partial recovery.
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 7);
        let p = recovered.suggest("alice", env.signature(), &env.context());
        assert_eq!(p.len(), recovered.space.dims.len());
    }

    #[test]
    fn foreign_version_snapshot_recovers_empty_but_serving() {
        let dir = StateDir::new("foreign");
        let mut durable = backend();
        durable.persist_to_with(&dir.0, 2).expect("attach");
        drive_rounds(&mut durable, 5);
        durable.flush_durability().expect("flush");
        drop(durable);
        let snap = rockdur::fault::newest_snapshot(&dir.0)
            .expect("list")
            .expect("a snapshot was compacted");
        rockdur::fault::foreign_snapshot_version(&snap).expect("stamp");

        let mut recovered = backend();
        let report = recovered.recover_from_with(&dir.0, 2).expect("never fatal");
        assert!(!report.restored_snapshot);
        assert!(report.quarantined >= 1);
        // Post-snapshot records are orphaned with it; state starts fresh
        // but the process serves.
        let env = QueryEnv::tpch(6, 0.1, NoiseSpec::none(), 7);
        let p = recovered.suggest("alice", env.signature(), &env.context());
        assert_eq!(p.len(), recovered.space.dims.len());
        assert!(recovered.dashboard().counters().wal_records_quarantined >= 1);
    }
}
