//! Concept-drift scenarios: mid-stream data-scale shifts.
//!
//! Production workloads recur under a fixed identity (the signature of the
//! query *template*) while their inputs grow — a partition backfill, a
//! quarter-end data load, an upstream pipeline doubling its output. The
//! tuning stack sees the same signature with a moving plan: leaf input
//! sizes jump, the plan-derived embedding moves, and any neighbor set
//! ranked against the pre-shift embedding is stale. [`ScaleShift`] models
//! the sharpest version of that drift — a step change in data scale at a
//! known iteration — as a pure function of the iteration index, so drift
//! detection and index re-ranking can be exercised deterministically.

use crate::plan::PlanNode;

/// A step change in input data scale at a fixed iteration.
///
/// Iterations `t < shift_at` run the template plan scaled by `before`;
/// iterations `t >= shift_at` run it scaled by `after`. The template plan
/// itself never changes, which is what keeps the workload's signature
/// stable across the shift while its embedding moves.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleShift {
    /// The query template: the plan at scale factor 1.0.
    pub template: PlanNode,
    /// Leaf-size multiplier before the shift.
    pub before: f64,
    /// Leaf-size multiplier at and after the shift.
    pub after: f64,
    /// First iteration that runs at the `after` scale.
    pub shift_at: u32,
}

impl ScaleShift {
    /// A shift from `before`× to `after`× the template's data at `shift_at`.
    pub fn new(template: PlanNode, before: f64, after: f64, shift_at: u32) -> ScaleShift {
        ScaleShift {
            template,
            before,
            after,
            shift_at,
        }
    }

    /// The data-scale multiplier in effect at iteration `t`.
    pub fn scale_at(&self, t: u32) -> f64 {
        if t < self.shift_at {
            self.before
        } else {
            self.after
        }
    }

    /// Whether iteration `t` runs on the post-shift data scale.
    pub fn shifted(&self, t: u32) -> bool {
        t >= self.shift_at
    }

    /// The plan the simulator executes at iteration `t`: the template with
    /// its leaves scaled and cardinalities re-estimated.
    pub fn plan_at(&self, t: u32) -> PlanNode {
        self.template.scaled(self.scale_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> PlanNode {
        PlanNode::scan("lineitem", 1_000_000.0, 100.0)
            .filter(0.1)
            .hash_aggregate(0.01)
    }

    #[test]
    fn scale_steps_exactly_at_the_shift_iteration() {
        let shift = ScaleShift::new(template(), 1.0, 8.0, 5);
        assert_eq!(shift.scale_at(0), 1.0);
        assert_eq!(shift.scale_at(4), 1.0);
        assert_eq!(shift.scale_at(5), 8.0);
        assert_eq!(shift.scale_at(100), 8.0);
        assert!(!shift.shifted(4));
        assert!(shift.shifted(5));
    }

    #[test]
    fn the_template_keeps_its_shape_while_leaves_grow() {
        let shift = ScaleShift::new(template(), 1.0, 8.0, 5);
        let pre = shift.plan_at(0);
        let post = shift.plan_at(5);
        assert_eq!(pre.node_count(), post.node_count());
        assert_eq!(pre, shift.template, "pre-shift at 1.0x is the template");
        assert!(
            post.leaf_input_bytes() > pre.leaf_input_bytes() * 7.9,
            "the shift must actually move the input data"
        );
    }

    #[test]
    fn plan_at_is_a_pure_function_of_t() {
        let shift = ScaleShift::new(template(), 2.0, 0.5, 3);
        assert_eq!(shift.plan_at(2), shift.plan_at(2));
        assert_eq!(shift.plan_at(7), shift.plan_at(3));
        // Down-shifts are legal too: a backfill draining back to normal.
        assert!(shift.plan_at(3).leaf_input_bytes() < shift.plan_at(2).leaf_input_bytes());
    }
}
