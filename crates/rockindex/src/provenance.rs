//! Suggestion provenance: did this config come from the retrieval corpus or
//! from the signature's own tuner?

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// How a served suggestion was produced.
///
/// Serialized as the lowercase wire strings `"transferred"` / `"explored"`;
/// a missing field (`null` from a pre-retrieval peer or snapshot) reads as
/// [`Provenance::Explored`], because every pre-retrieval suggestion was by
/// definition an explored one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Provenance {
    /// Served straight from the retrieval corpus with zero runs.
    Transferred,
    /// Served by the signature's own tuner (the pre-retrieval default).
    #[default]
    Explored,
}

impl Provenance {
    /// The wire string (`"transferred"` / `"explored"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Provenance::Transferred => "transferred",
            Provenance::Explored => "explored",
        }
    }

    /// Parse a wire string; unknown strings and `None` read as `Explored`.
    pub fn from_wire(tag: Option<&str>) -> Provenance {
        match tag {
            Some("transferred") => Provenance::Transferred,
            _ => Provenance::Explored,
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Provenance {
    fn serialize_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Provenance {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            // Pre-retrieval snapshots and frames have no provenance field:
            // everything they served was explored.
            Value::Null => Ok(Provenance::Explored),
            Value::Str(s) if s == "transferred" => Ok(Provenance::Transferred),
            Value::Str(s) if s == "explored" => Ok(Provenance::Explored),
            other => Err(DeError::expected("Provenance", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_strings_round_trip() {
        for p in [Provenance::Transferred, Provenance::Explored] {
            let encoded = p.serialize_value();
            assert_eq!(Provenance::deserialize_value(&encoded), Ok(p));
            assert_eq!(Provenance::from_wire(Some(p.as_str())), p);
        }
    }

    #[test]
    fn missing_field_reads_as_explored() {
        assert_eq!(
            Provenance::deserialize_value(&Value::Null),
            Ok(Provenance::Explored)
        );
        assert_eq!(Provenance::from_wire(None), Provenance::Explored);
        assert_eq!(Provenance::from_wire(Some("garbage")), Provenance::Explored);
    }

    #[test]
    fn default_is_explored() {
        assert_eq!(Provenance::default(), Provenance::Explored);
    }
}
