//! Regenerates the `exp_fault_injection` extension experiment. Pass `--quick`
//! for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_fault_injection::run(scale).print();
}
