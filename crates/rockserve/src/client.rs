//! A minimal blocking client for the rockserve wire protocol: one framed
//! request, one framed reply, over a persistent connection. The load
//! generator in `crates/bench` and the e2e tests both drive the server
//! through this type.

use std::net::{TcpStream, ToSocketAddrs};

use optimizers::tuner::TuningContext;

use crate::proto::{self, Request, Response, WireError, HEADER_BYTES};

/// A connected rockserve client. Each call is a synchronous request/reply
/// exchange; the connection stays open across calls.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a serving endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    /// Send one request frame and block for the reply frame.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let payload = proto::encode_request(req)?;
        proto::write_frame(&mut self.stream, &payload)?;
        match proto::read_frame(&mut self.stream)? {
            Some(reply) => proto::decode_response(&reply),
            // The server closed without replying (e.g. shed at the accept
            // gate after its Overloaded frame, or mid-drain).
            None => Err(WireError::Truncated {
                expected: HEADER_BYTES,
                got: 0,
            }),
        }
    }

    /// Request a configuration suggestion for `(user, signature)`.
    pub fn suggest(
        &mut self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
    ) -> Result<Response, WireError> {
        self.call(&Request::Suggest {
            user: user.to_string(),
            signature,
            embedding: ctx.embedding.clone(),
            expected_data_size: ctx.expected_data_size,
            iteration: ctx.iteration,
        })
    }

    /// Ship an application's event log (JSONL document) to the backend.
    pub fn report(
        &mut self,
        user: &str,
        app_id: &str,
        jsonl: String,
    ) -> Result<Response, WireError> {
        self.call(&Request::Report {
            user: user.to_string(),
            app_id: app_id.to_string(),
            jsonl,
        })
    }

    /// Liveness + drain-state probe.
    pub fn health(&mut self) -> Result<Response, WireError> {
        self.call(&Request::Health)
    }

    /// Fetch the serving metrics snapshot and the rendered text page.
    pub fn metrics(&mut self) -> Result<Response, WireError> {
        self.call(&Request::Metrics)
    }

    /// Ask the server to drain and shut down.
    pub fn shutdown_server(&mut self) -> Result<Response, WireError> {
        self.call(&Request::Shutdown)
    }
}
