//! Base-table statistics for the TPC-H and TPC-DS schemas.
//!
//! Row counts are the official scale-factor-1 populations (rows scale linearly with SF
//! for fact tables; dimensions that the specs hold fixed or sub-linear are modeled with
//! the spec's scaling rules, simplified where the rule is logarithmic). Row widths are
//! average uncompressed widths, which is what the simulator's byte-based costs need.

use sparksim::plan::PlanNode;

/// A table's statistics at a given scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Rows at the requested scale factor.
    pub rows: f64,
    /// Average row width, bytes.
    pub row_bytes: f64,
}

/// TPC-H table statistics at scale factor `sf` (SF 1 ≈ 1 GB).
pub fn tpch_table(name: &str, sf: f64) -> TableStats {
    let sf = sf.max(0.001);
    let (rows_sf1, width, scales) = match name {
        "region" => (5.0, 120.0, false),
        "nation" => (25.0, 120.0, false),
        "supplier" => (10_000.0, 150.0, true),
        "customer" => (150_000.0, 180.0, true),
        "part" => (200_000.0, 150.0, true),
        "partsupp" => (800_000.0, 140.0, true),
        "orders" => (1_500_000.0, 110.0, true),
        "lineitem" => (6_001_215.0, 120.0, true),
        other => panic!("unknown TPC-H table: {other}"),
    };
    TableStats {
        rows: if scales { rows_sf1 * sf } else { rows_sf1 },
        row_bytes: width,
    }
}

/// TPC-DS table statistics at scale factor `sf` (SF 1 ≈ 1 GB).
pub fn tpcds_table(name: &str, sf: f64) -> TableStats {
    let sf = sf.max(0.001);
    // Dimensions in TPC-DS scale sub-linearly; approximate with sqrt scaling for the
    // ones the spec grows, and keep the tiny static ones fixed.
    let (rows_sf1, width, scaling) = match name {
        "store_sales" => (2_880_404.0, 164.0, Scaling::Linear),
        "store_returns" => (287_514.0, 132.0, Scaling::Linear),
        "catalog_sales" => (1_441_548.0, 226.0, Scaling::Linear),
        "catalog_returns" => (144_067.0, 162.0, Scaling::Linear),
        "web_sales" => (719_384.0, 226.0, Scaling::Linear),
        "web_returns" => (71_763.0, 162.0, Scaling::Linear),
        "inventory" => (11_745_000.0, 16.0, Scaling::Linear),
        "customer" => (100_000.0, 132.0, Scaling::Sqrt),
        "customer_address" => (50_000.0, 110.0, Scaling::Sqrt),
        "customer_demographics" => (1_920_800.0, 42.0, Scaling::Fixed),
        "household_demographics" => (7_200.0, 21.0, Scaling::Fixed),
        "item" => (18_000.0, 281.0, Scaling::Sqrt),
        "date_dim" => (73_049.0, 141.0, Scaling::Fixed),
        "time_dim" => (86_400.0, 59.0, Scaling::Fixed),
        "store" => (12.0, 263.0, Scaling::Sqrt),
        "warehouse" => (5.0, 117.0, Scaling::Sqrt),
        "web_site" => (30.0, 292.0, Scaling::Sqrt),
        "web_page" => (60.0, 96.0, Scaling::Sqrt),
        "promotion" => (300.0, 124.0, Scaling::Sqrt),
        "catalog_page" => (11_718.0, 139.0, Scaling::Sqrt),
        other => panic!("unknown TPC-DS table: {other}"),
    };
    let rows = match scaling {
        Scaling::Linear => rows_sf1 * sf,
        Scaling::Sqrt => rows_sf1 * sf.sqrt().max(1.0),
        Scaling::Fixed => rows_sf1,
    };
    TableStats {
        rows,
        row_bytes: width,
    }
}

#[derive(Debug, Clone, Copy)]
enum Scaling {
    Linear,
    Sqrt,
    Fixed,
}

/// Scan builder for a TPC-H table.
pub fn tpch_scan(name: &str, sf: f64) -> PlanNode {
    let s = tpch_table(name, sf);
    PlanNode::scan(name, s.rows, s.row_bytes)
}

/// Scan builder for a TPC-DS table.
pub fn tpcds_scan(name: &str, sf: f64) -> PlanNode {
    let s = tpcds_table(name, sf);
    PlanNode::scan(name, s.rows, s.row_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_scales_linearly() {
        let a = tpch_table("lineitem", 1.0);
        let b = tpch_table("lineitem", 100.0);
        assert!((b.rows / a.rows - 100.0).abs() < 1e-9);
    }

    #[test]
    fn nation_and_region_are_fixed() {
        assert_eq!(tpch_table("nation", 1000.0).rows, 25.0);
        assert_eq!(tpch_table("region", 1000.0).rows, 5.0);
    }

    #[test]
    fn tpch_sf1_is_about_a_gigabyte() {
        let tables = [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ];
        let bytes: f64 = tables
            .iter()
            .map(|t| {
                let s = tpch_table(t, 1.0);
                s.rows * s.row_bytes
            })
            .sum();
        assert!(bytes > 0.7e9 && bytes < 1.6e9, "SF1 = {bytes} bytes");
    }

    #[test]
    fn tpcds_dimensions_scale_sublinearly() {
        let a = tpcds_table("customer", 1.0);
        let b = tpcds_table("customer", 100.0);
        assert!(b.rows / a.rows < 20.0);
        assert!(b.rows > a.rows);
        assert_eq!(tpcds_table("date_dim", 100.0).rows, 73_049.0);
    }

    #[test]
    #[should_panic(expected = "unknown TPC-H table")]
    fn unknown_table_panics() {
        tpch_table("nope", 1.0);
    }

    #[test]
    fn scan_builders_carry_stats() {
        let p = tpch_scan("orders", 2.0);
        assert_eq!(p.est_rows, 3_000_000.0);
        let p = tpcds_scan("store", 1.0);
        assert_eq!(p.est_rows, 12.0);
    }

    #[test]
    fn tiny_sf_does_not_zero_tables() {
        assert!(tpch_table("lineitem", 0.0).rows > 0.0);
    }
}
