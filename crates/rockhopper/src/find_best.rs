//! FIND_BEST (§4.3): pick the best configuration among the latest `N` observations.
//!
//! The paper describes three refinements, all implemented here:
//!
//! - **v1 raw**: shortest observed execution time. Fooled by runs that happened to
//!   process less data.
//! - **v2 normalized** (Eq 3): shortest `r / p`. Better, but `r/p` itself shrinks as
//!   `p` grows (fixed overheads amortize), biasing toward big-data runs.
//! - **v3 model-based** (Eqs 4–5): fit `r = H(c, p) + ε` on the window and compare
//!   candidates at one *fixed* reference data size.

use ml::{KernelRidge, Regressor};
use optimizers::space::ConfigSpace;
use optimizers::tuner::Observation;
use serde::{Deserialize, Serialize};

/// Which FIND_BEST refinement to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindBestMode {
    /// v1: raw minimum of `r`.
    Raw,
    /// v2: minimum of `r / p` (Eq 3).
    Normalized,
    /// v3: minimum of `H(c, p_ref)` with `H` fit on the window (Eq 5).
    ModelBased,
}

/// Feature row for the window model `H`: normalized configs plus `ln p`.
pub(crate) fn h_features(space: &ConfigSpace, point: &[f64], data_size: f64) -> Vec<f64> {
    let mut f = space.normalize(point);
    f.push(data_size.max(1e-9).ln());
    f
}

/// Fit the window model `H(c, p) → ln r` (Eq 4). Returns `None` when the window is
/// too small or degenerate for a stable fit.
///
/// Censored observations participate *capped*: their penalty cost is clipped at
/// 1.5× the worst measured time in the window, so the fit is pushed away from
/// failing regions (Li et al., VLDB 2023) without one arbitrary penalty
/// constant dominating the ridge solution.
pub(crate) fn fit_window_model(space: &ConfigSpace, window: &[Observation]) -> Option<KernelRidge> {
    if window.len() < 4 {
        return None;
    }
    let worst_measured = window
        .iter()
        .filter(|o| !o.is_censored())
        .map(|o| o.elapsed_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    let cap = if worst_measured.is_finite() {
        1.5 * worst_measured.max(1e-9)
    } else {
        f64::INFINITY
    };
    let x: Vec<Vec<f64>> = window
        .iter()
        .map(|o| h_features(space, &o.point, o.data_size))
        .collect();
    let y: Vec<f64> = window
        .iter()
        .map(|o| {
            let v = if o.is_censored() {
                o.elapsed_ms.min(cap)
            } else {
                o.elapsed_ms
            };
            v.max(1e-9).ln()
        })
        .collect();
    let mut m = KernelRidge::rbf(1.0, 0.1);
    m.fit(&x, &y).ok()?;
    Some(m)
}

/// Run FIND_BEST over `window`, returning the index of the chosen observation.
/// `p_ref` is the reference data size for v3 (the paper fixes it to the latest `p_t`).
///
/// Returns `None` on an empty window or when every observation is censored
/// (nothing was actually achieved, so there is no best). A censored observation
/// is never chosen as `c*` — its penalty cost is a bound, not a time — though it
/// still shapes the v3 window model. If the v3 model cannot be fit, v3 falls
/// back to v2 (the paper's second-best refinement).
pub fn find_best(
    space: &ConfigSpace,
    window: &[Observation],
    mode: FindBestMode,
    p_ref: f64,
) -> Option<usize> {
    if window.iter().all(|o| o.is_censored()) {
        return None;
    }
    // Censored entries score +∞ so argmin skips them; some measured entry exists
    // (checked above). NaN scores are skipped, and if every finite score is NaN
    // the first observation stands in.
    let argmin = |score: &dyn Fn(&Observation) -> f64| -> usize {
        ml::stats::nan_safe_min_by(window, &|o: &Observation| {
            if o.is_censored() {
                f64::INFINITY
            } else {
                score(o)
            }
        })
        .unwrap_or(0)
    };
    let idx = match mode {
        FindBestMode::Raw => argmin(&|o: &Observation| o.elapsed_ms),
        FindBestMode::Normalized => argmin(&|o: &Observation| o.elapsed_ms / o.data_size.max(1e-9)),
        FindBestMode::ModelBased => match fit_window_model(space, window) {
            Some(h) => {
                let scores: Vec<f64> = window
                    .iter()
                    .map(|o| {
                        if o.is_censored() {
                            f64::INFINITY
                        } else {
                            h.predict(&h_features(space, &o.point, p_ref))
                        }
                    })
                    .collect();
                ml::stats::nan_safe_min_by(&scores, |s| *s).unwrap_or(0)
            }
            None => argmin(&|o: &Observation| o.elapsed_ms / o.data_size.max(1e-9)),
        },
    };
    Some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    use optimizers::tuner::ObservationKind;

    fn obs(point: Vec<f64>, p: f64, r: f64) -> Observation {
        Observation {
            point,
            data_size: p,
            elapsed_ms: r,
            kind: ObservationKind::Measured,
        }
    }

    fn censored(point: Vec<f64>, p: f64, penalty: f64) -> Observation {
        Observation {
            point,
            data_size: p,
            elapsed_ms: penalty,
            kind: ObservationKind::Censored,
        }
    }

    fn space() -> ConfigSpace {
        ConfigSpace::query_level()
    }

    #[test]
    fn raw_picks_fastest_run() {
        let s = space();
        let w = vec![
            obs(s.default_point(), 1.0, 100.0),
            obs(s.default_point(), 1.0, 50.0),
            obs(s.default_point(), 1.0, 80.0),
        ];
        assert_eq!(find_best(&s, &w, FindBestMode::Raw, 1.0), Some(1));
    }

    #[test]
    fn raw_is_fooled_by_small_data_but_normalized_is_not() {
        // Config B is genuinely better (50 ms per unit), but config A ran on a tiny
        // input and clocked 30 ms for 0.1 units (300 ms/unit).
        let s = space();
        let mut a = s.default_point();
        a[2] = 16.0;
        let mut b = s.default_point();
        b[2] = 1024.0;
        let w = vec![obs(a, 0.1, 30.0), obs(b, 1.0, 50.0)];
        assert_eq!(find_best(&s, &w, FindBestMode::Raw, 1.0), Some(0));
        assert_eq!(find_best(&s, &w, FindBestMode::Normalized, 1.0), Some(1));
    }

    #[test]
    fn model_based_controls_for_data_size() {
        // True model: r = p · (10 + penalty(c)), where config x = dim2 normalized
        // position, penalty = 40·(x − 0.5)². The best config (x ≈ 0.5) appears only
        // on large-p runs; v2's r/p bias is mild here but v3 must find x ≈ 0.5.
        let s = space();
        let mut w = Vec::new();
        for (i, &(x, p)) in [
            (0.1, 1.0),
            (0.3, 2.0),
            (0.5, 4.0),
            (0.7, 1.5),
            (0.9, 3.0),
            (0.45, 5.0),
            (0.2, 2.5),
        ]
        .iter()
        .enumerate()
        {
            let mut point = s.default_point();
            point[2] = s.dims[2].denormalize(x);
            let r = p * (10.0 + 40.0 * (x - 0.5) * (x - 0.5)) + i as f64 * 1e-6;
            w.push(obs(point, p, r));
        }
        let idx = find_best(&s, &w, FindBestMode::ModelBased, 2.0).unwrap();
        let chosen_x = s.dims[2].normalize(w[idx].point[2]);
        assert!(
            (chosen_x - 0.5).abs() <= 0.06,
            "v3 chose x = {chosen_x}, expected ≈ 0.5"
        );
    }

    #[test]
    fn model_based_falls_back_on_tiny_windows() {
        let s = space();
        let w = vec![
            obs(s.default_point(), 1.0, 10.0),
            obs(s.default_point(), 2.0, 30.0),
        ];
        // Window of 2 cannot fit H; must fall back to v2 (index 0: 10/1 < 30/2).
        assert_eq!(find_best(&s, &w, FindBestMode::ModelBased, 1.0), Some(0));
    }

    #[test]
    fn empty_window_returns_none() {
        assert_eq!(find_best(&space(), &[], FindBestMode::Raw, 1.0), None);
    }

    #[test]
    fn censored_observation_never_wins() {
        // The censored run carries a *low* bound (it died early, so its partial
        // time undercuts everything) — picking it as c* would chase a killer
        // config. Every mode must skip it.
        let s = space();
        let w = vec![
            censored(s.default_point(), 1.0, 5.0),
            obs(s.default_point(), 1.0, 50.0),
            obs(s.default_point(), 1.0, 80.0),
        ];
        for mode in [
            FindBestMode::Raw,
            FindBestMode::Normalized,
            FindBestMode::ModelBased,
        ] {
            assert_eq!(find_best(&s, &w, mode, 1.0), Some(1), "{mode:?}");
        }
    }

    #[test]
    fn all_censored_window_has_no_best() {
        let s = space();
        let w = vec![
            censored(s.default_point(), 1.0, 10.0),
            censored(s.default_point(), 1.0, 20.0),
        ];
        for mode in [
            FindBestMode::Raw,
            FindBestMode::Normalized,
            FindBestMode::ModelBased,
        ] {
            assert_eq!(find_best(&s, &w, mode, 1.0), None, "{mode:?}");
        }
    }

    #[test]
    fn censored_penalties_push_the_model_away_from_failing_regions() {
        // Dim-2 low half fails (censored at a high penalty), high half measures
        // flat 100 ms. The window model must predict worse times in the failing
        // region than in the safe region.
        let s = space();
        let mut w = Vec::new();
        for i in 0..6 {
            let x = 0.05 + 0.08 * i as f64; // 0.05 .. 0.45 — failing half
            let mut point = s.default_point();
            point[2] = s.dims[2].denormalize(x);
            w.push(censored(point, 1.0, 100_000.0));
        }
        for i in 0..6 {
            let x = 0.55 + 0.08 * i as f64; // 0.55 .. 0.95 — safe half
            let mut point = s.default_point();
            point[2] = s.dims[2].denormalize(x);
            w.push(obs(point, 1.0, 100.0 + i as f64));
        }
        let h = fit_window_model(&s, &w).expect("fits");
        let at = |x: f64| {
            let mut p = s.default_point();
            p[2] = s.dims[2].denormalize(x);
            h.predict(&h_features(&s, &p, 1.0))
        };
        assert!(
            at(0.2) > at(0.8),
            "failing region should predict worse: {} vs {}",
            at(0.2),
            at(0.8)
        );
    }

    #[test]
    fn window_model_fits_and_predicts_reasonably() {
        let s = space();
        let w: Vec<Observation> = (0..12)
            .map(|i| {
                let x = i as f64 / 11.0;
                let mut point = s.default_point();
                point[2] = s.dims[2].denormalize(x);
                obs(point, 1.0, 100.0 + 200.0 * (x - 0.4) * (x - 0.4))
            })
            .collect();
        let h = fit_window_model(&s, &w).expect("fits");
        let near = h.predict(&h_features(
            &s,
            &{
                let mut p = s.default_point();
                p[2] = s.dims[2].denormalize(0.4);
                p
            },
            1.0,
        ));
        let far = h.predict(&h_features(
            &s,
            &{
                let mut p = s.default_point();
                p[2] = s.dims[2].denormalize(0.95);
                p
            },
            1.0,
        ));
        assert!(
            near < far,
            "H should prefer the bowl bottom: {near} vs {far}"
        );
    }
}
