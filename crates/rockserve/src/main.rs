//! `cargo run -p rockserve -- [--addr HOST:PORT] [--seed N] [--workers N]`
//!
//! Binds a rockserve endpoint over a fresh autotune backend and serves until
//! a client sends a `Shutdown` frame, then drains and reports what the
//! backend accumulated.

use std::process::ExitCode;
use std::sync::Arc;

use pipeline::{AutotuneBackend, Storage};
use rockserve::{ServeConfig, Server, PROTOCOL_VERSION};

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7070");
    let mut seed = 42u64;
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(v) = args.next() else {
                    return usage("--addr needs HOST:PORT");
                };
                addr = v;
            }
            "--seed" => {
                let Some(v) = args.next() else {
                    return usage("--seed needs an integer");
                };
                seed = v.parse().unwrap_or(42);
            }
            "--workers" => {
                let Some(v) = args.next() else {
                    return usage("--workers needs an integer");
                };
                cfg.workers = v.parse().unwrap_or(0);
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    let server = match Server::spawn(backend, &addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rockserve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rockserve listening on {} (protocol v{PROTOCOL_VERSION}, seed {seed}); \
         send a Shutdown frame to drain",
        server.local_addr()
    );
    match server.join() {
        Some(backend) => {
            println!(
                "rockserve drained cleanly; backend tracked {} tuner(s)",
                backend.tuner_count()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("rockserve: backend thread lost");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("rockserve: {problem}");
    eprintln!("usage: rockserve [--addr HOST:PORT] [--seed N] [--workers N]");
    ExitCode::from(2)
}
