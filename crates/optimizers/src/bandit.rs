//! An OPPerTune-style bandit tuner (Somashekar et al., NSDI'24) — the third member
//! of the greedy family the paper groups with hill climbing and FLOW2 ("rely solely
//! on the last two rounds of observations", §4.3).
//!
//! Each dimension is discretized into arms; an exponential-weights (EXP3-style)
//! learner per dimension samples an arm, observes the shared reward (negative
//! normalized cost), and reweights. Like the other greedy baselines it reacts to
//! individual noisy observations, which is exactly what Centroid Learning's
//! window statistics are designed to avoid.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

/// Per-dimension EXP3 learner over discretized arm positions.
#[derive(Debug, Clone)]
struct DimBandit {
    /// Normalized position of each arm in `[0, 1]`.
    arms: Vec<f64>,
    /// Log-weights (kept in log space for stability).
    log_weights: Vec<f64>,
    /// Index of the arm chosen in the pending round.
    pending: usize,
}

impl DimBandit {
    fn new(n_arms: usize) -> DimBandit {
        let arms = (0..n_arms)
            .map(|i| i as f64 / (n_arms - 1).max(1) as f64)
            .collect();
        DimBandit {
            arms,
            log_weights: vec![0.0; n_arms],
            pending: 0,
        }
    }

    /// Sampling distribution: softmax of weights mixed with uniform exploration.
    fn probabilities(&self, gamma: f64) -> Vec<f64> {
        let max_lw = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self
            .log_weights
            .iter()
            .map(|w| (w - max_lw).exp())
            .collect();
        let sum: f64 = exps.iter().sum();
        let k = self.arms.len() as f64;
        exps.iter()
            .map(|e| (1.0 - gamma) * e / sum + gamma / k)
            .collect()
    }

    fn sample(&mut self, gamma: f64, rng: &mut StdRng) -> f64 {
        let probs = self.probabilities(gamma);
        let mut roll: f64 = rng.random_range(0.0..1.0);
        let mut chosen = probs.len() - 1;
        for (i, p) in probs.iter().enumerate() {
            if roll < *p {
                chosen = i;
                break;
            }
            roll -= p;
        }
        self.pending = chosen;
        self.arms[chosen]
    }

    /// EXP3 importance-weighted update with reward in `[0, 1]`.
    fn update(&mut self, reward: f64, gamma: f64, eta: f64) {
        let probs = self.probabilities(gamma);
        let p = probs[self.pending].max(1e-9);
        self.log_weights[self.pending] += eta * reward / p;
        // Re-center to avoid drift.
        let mean: f64 = self.log_weights.iter().sum::<f64>() / self.log_weights.len() as f64;
        for w in &mut self.log_weights {
            *w -= mean;
        }
    }
}

/// Multi-dimension bandit tuner: one EXP3 learner per knob, shared reward.
#[derive(Debug)]
pub struct BanditTuner {
    space: ConfigSpace,
    dims: Vec<DimBandit>,
    rng: StdRng,
    /// Exploration mix in `[0, 1]`.
    pub gamma: f64,
    /// Learning rate.
    pub eta: f64,
    /// Running reward scale: rewards are `clamp(1 − elapsed / (2·median), 0, 1)`.
    median_tracker: Vec<f64>,
    /// Recorded observations.
    pub history: History,
}

impl BanditTuner {
    /// Create with `arms_per_dim` discretization levels.
    pub fn new(space: ConfigSpace, arms_per_dim: usize, seed: u64) -> BanditTuner {
        let dims = (0..space.len())
            .map(|_| DimBandit::new(arms_per_dim.max(2)))
            .collect();
        BanditTuner {
            space,
            dims,
            rng: StdRng::seed_from_u64(seed),
            gamma: 0.15,
            eta: 0.25,
            median_tracker: Vec::new(),
            history: History::new(),
        }
    }

    /// The greedy (most-weighted) arm per dimension, decoded to a raw point.
    pub fn incumbent(&self) -> Vec<f64> {
        let x: Vec<f64> = self
            .dims
            .iter()
            .map(|d| {
                let best = d
                    .log_weights
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                d.arms[best]
            })
            .collect();
        self.space.denormalize(&x)
    }
}

impl Tuner for BanditTuner {
    fn suggest(&mut self, _ctx: &TuningContext) -> Vec<f64> {
        let gamma = self.gamma;
        let x: Vec<f64> = self
            .dims
            .iter_mut()
            .map(|d| d.sample(gamma, &mut self.rng))
            .collect();
        self.space.denormalize(&x)
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
        // Normalize cost by the running median so rewards stay in [0, 1].
        self.median_tracker.push(outcome.elapsed_ms);
        if self.median_tracker.len() > 50 {
            self.median_tracker.remove(0);
        }
        // The tracker was just pushed to, so the median exists.
        let median = ml::stats::median(&self.median_tracker)
            .unwrap_or(1e-9)
            .max(1e-9);
        let reward = (1.0 - outcome.elapsed_ms / (2.0 * median)).clamp(0.0, 1.0);
        for d in &mut self.dims {
            d.update(reward, self.gamma, self.eta);
        }
    }

    fn name(&self) -> &'static str {
        "bandit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Environment, SyntheticEnv};
    use sparksim::noise::NoiseSpec;
    use workloads::dynamic::DataSchedule;

    fn drive(noise: NoiseSpec, iters: usize, seed: u64) -> f64 {
        let mut env = SyntheticEnv::new(noise, DataSchedule::Constant { size: 1.0 }, seed);
        let mut b = BanditTuner::new(env.space().clone(), 8, seed);
        for _ in 0..iters {
            let p = b.suggest(&env.context());
            let o = env.run(&p);
            b.observe(&p, &o);
        }
        let inc = b.incumbent();
        env.f.normed_performance(&[inc[0], inc[1], inc[2]], 1.0)
    }

    #[test]
    fn learns_on_noiseless_function() {
        let finals: Vec<f64> = (0..5).map(|s| drive(NoiseSpec::none(), 300, s)).collect();
        let median = ml::stats::median(&finals).unwrap();
        assert!(median < 1.6, "bandit incumbent should improve: {median}");
    }

    #[test]
    fn suggestions_stay_in_bounds() {
        let space = ConfigSpace::query_level();
        let mut b = BanditTuner::new(space.clone(), 6, 3);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        for i in 0..50 {
            let p = b.suggest(&ctx);
            for (v, d) in p.iter().zip(&space.dims) {
                // Relative tolerance: log-scale round-trips can wobble by ~1 ULP of
                // values in the billions.
                let eps = 1e-9 * (1.0 + d.hi.abs());
                assert!(
                    *v >= d.lo - eps && *v <= d.hi + eps,
                    "{v} not in [{}, {}]",
                    d.lo,
                    d.hi
                );
            }
            b.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0 + (i % 7) as f64,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let space = ConfigSpace::query_level();
        let mut b = BanditTuner::new(space, 4, 1);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        // Always reward maximally: the pending arms' weights must grow.
        let p = b.suggest(&ctx);
        let before = b.dims[0].log_weights[b.dims[0].pending];
        b.observe(
            &p,
            &Outcome {
                elapsed_ms: 0.0, // reward clamps to 1
                data_size: 1.0,
                kind: crate::tuner::ObservationKind::Measured,
            },
        );
        let after = b.dims[0].log_weights[b.dims[0].pending];
        assert!(after > before);
    }

    #[test]
    fn noise_hurts_the_bandit_more_than_quiet() {
        let clean: f64 = (0..5)
            .map(|s| drive(NoiseSpec::none(), 200, s))
            .sum::<f64>()
            / 5.0;
        let noisy: f64 = (0..5)
            .map(|s| drive(NoiseSpec::high(), 200, s))
            .sum::<f64>()
            / 5.0;
        assert!(noisy >= clean * 0.95, "clean {clean} vs noisy {noisy}");
    }
}
