//! Property tests over the fault-model invariants (the dynamic counterpart of
//! rhlint's RH017 outcome-match rule):
//!
//! - **seed purity** — fault decisions are a pure function of the run seed,
//!   and the fault RNG never perturbs the noise stream: with no faults
//!   configured, `execute_outcome` is bit-identical to `execute`.
//! - **partial-time bound** — a failed run's `partial_time_ms` never exceeds
//!   what the same run would have cost to complete under the same fault
//!   sequence.
//! - **retries never lose tasks** — executor losses re-queue work; every
//!   stage's task attempts cover at least its task count, and retry waves only
//!   ever inflate stage time.
//! - **telemetry mangling is survivable** — the ETL quarantines corrupt lines
//!   instead of panicking, and the ingest path retries transient storage
//!   outages exactly as many times as outages were injected.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use optimizers::tuner::{Outcome, Tuner, TuningContext};
use pipeline::etl::extract_batch_from_jsonl;
use pipeline::{AutotuneBackend, AutotuneService, Storage, SuggestFallback};
use rockhopper::guardrail::Guardrail;
use rockhopper::RockhopperTuner;
use sparksim::config::SparkConf;
use sparksim::fault::{apply_faults, mangle_jsonl, FaultSpec, RunOutcome};
use sparksim::noise::NoiseSpec;
use sparksim::physical::plan_physical;
use sparksim::simulator::Simulator;
use workloads::generator::{random_plan, PlanGenConfig};

/// A spec whose OOM ceiling bites for some configs and whose background rates
/// are high enough to exercise every failure path across a few hundred seeds.
fn harsh() -> FaultSpec {
    FaultSpec {
        oom_ceiling: 1.5,
        executor_loss_per_min: 0.5,
        max_executor_losses: 1,
        telemetry_loss: 0.2,
        telemetry_corruption: 0.2,
    }
}

proptest! {
    #[test]
    fn fault_decisions_are_pure_in_the_seed(plan_seed in 0u64..100, run_seed: u64) {
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::high());
        let conf = SparkConf::default();
        let spec = harsh();
        let a = sim.execute_outcome(&plan, &conf, run_seed, &spec);
        let b = sim.execute_outcome(&plan, &conf, run_seed, &spec);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn no_faults_means_bit_identical_to_execute(plan_seed in 0u64..100, run_seed: u64) {
        // The fault RNG is salted off the run seed, so merely *enabling* the
        // fault model must not shift a single noise draw.
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::high());
        let conf = SparkConf::default();
        let clean = sim.execute(&plan, &conf, run_seed);
        match sim.execute_outcome(&plan, &conf, run_seed, &FaultSpec::none()) {
            RunOutcome::Success(run) => prop_assert_eq!(run, clean),
            RunOutcome::Failed { reason, .. } => {
                prop_assert!(false, "failed without faults: {reason}");
            }
            RunOutcome::Censored => {
                prop_assert!(false, "censored without telemetry faults");
            }
        }
    }

    #[test]
    fn production_faults_leave_noise_draws_untouched(plan_seed in 0u64..100, run_seed: u64) {
        // Same property with production-rate faults enabled: every run that
        // survives reports exactly the timings of the benign simulator.
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::high());
        let conf = SparkConf::default();
        let spec = FaultSpec::production();
        let outcome = sim.execute_outcome(&plan, &conf, run_seed, &spec);
        let phys = plan_physical(&plan, &conf);
        let faulty = apply_faults(&phys, &conf, &sim.cluster, &sim.cost, &spec, run_seed);
        if faulty.failure.is_none() && !faulty.censored && faulty.total_losses() == 0 {
            // A run no fault touched must be bit-identical to the clean run.
            let clean = sim.execute(&plan, &conf, run_seed);
            match outcome {
                RunOutcome::Success(run) => prop_assert_eq!(run, clean),
                other => prop_assert!(false, "fault-free run not Success: {other:?}"),
            }
        }
    }

    #[test]
    fn partial_time_never_exceeds_the_completed_time(plan_seed in 0u64..150, run_seed: u64) {
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let spec = harsh();
        let phys = plan_physical(&plan, &conf);
        let faulty = apply_faults(&phys, &conf, &sim.cluster, &sim.cost, &spec, run_seed);
        if let Some((_, partial_ms)) = faulty.failure {
            prop_assert!(partial_ms > 0.0);
            prop_assert!(
                partial_ms <= faulty.timing.total_ms,
                "partial {partial_ms} > completed {}", faulty.timing.total_ms
            );
        }
        let outcome = sim.execute_outcome(&plan, &conf, run_seed, &spec);
        if let RunOutcome::Failed { partial_time_ms, .. } = outcome {
            prop_assert!((partial_time_ms - faulty.failure.map(|(_, p)| p).unwrap_or(-1.0)).abs() < 1e-9);
        }
        prop_assert_eq!(outcome.is_failed(), faulty.failure.is_some());
    }

    #[test]
    fn retries_never_lose_tasks(plan_seed in 0u64..150, run_seed: u64) {
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let spec = FaultSpec {
            executor_loss_per_min: 2.0,
            max_executor_losses: u32::MAX, // survive everything: observe retries
            ..FaultSpec::none()
        };
        let phys = plan_physical(&plan, &conf);
        let faulty = apply_faults(&phys, &conf, &sim.cluster, &sim.cost, &spec, run_seed);
        prop_assert!(faulty.failure.is_none());
        for (rec, stage) in faulty.stage_faults.iter().zip(&phys.stages) {
            prop_assert!(rec.task_attempts >= stage.tasks.max(1));
            prop_assert_eq!(rec.task_attempts, stage.tasks.max(1) + rec.retried_tasks);
            prop_assert!(rec.retry_ms >= 0.0);
        }
        if faulty.total_losses() > 0 {
            let clean_ms: f64 = plan_physical(&plan, &conf)
                .stages
                .iter()
                .zip(&faulty.timing.stages)
                .map(|(_, t)| t.stage_ms)
                .sum();
            prop_assert!(clean_ms >= faulty.timing.total_ms - 1e-6);
        }
    }

    #[test]
    fn mangled_event_logs_are_quarantined_not_fatal(plan_seed in 0u64..60, run_seed: u64) {
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let spec = harsh();
        let (outcome, events) = sim.run_and_events(
            "app-prop", "artifact-prop", 7, &plan, &conf, Vec::new(), run_seed, &spec,
        );
        prop_assert_eq!(outcome.is_success(), outcome.success().is_some());
        let doc = sparksim::event::to_jsonl(&events);
        let total_lines = doc.lines().count();
        let mut rng = FaultSpec::rng_for(run_seed ^ 0xD0C);
        let (mangled, dropped, corrupted) = mangle_jsonl(&doc, &spec, &mut rng);
        prop_assert_eq!(mangled.lines().count(), total_lines - dropped);
        // The ETL must digest whatever arrives: corrupt lines quarantined,
        // never a panic, and it cannot invent rows out of thin air.
        let batch = extract_batch_from_jsonl(&mangled);
        prop_assert!(batch.quarantined_lines <= corrupted);
        prop_assert!(batch.rows.len() + batch.failed.len() <= total_lines);
    }

    #[test]
    fn ingest_retries_match_injected_outages(outages in 0u64..3) {
        let storage = Arc::new(Storage::new());
        let mut backend = AutotuneBackend::new(Arc::clone(&storage), None, 3);
        storage.inject_put_failures(outages);
        backend.ingest("prop", "app-0", &[]);
        prop_assert_eq!(backend.ingest_retry_count(), outages);
    }

    #[test]
    fn exactly_patience_minus_one_failures_keeps_tuning(patience in 1usize..8) {
        // The boundary, from below: n−1 consecutive failed runs must leave the
        // guardrail enabled; the n-th disables it, and the switch latches.
        let mut g = Guardrail::default().with_failure_patience(patience);
        for i in 0..patience - 1 {
            g.record_failure();
            prop_assert!(!g.is_disabled(), "disabled after {} < n−1 failures", i + 1);
        }
        g.record_failure();
        prop_assert!(g.is_disabled(), "still enabled after n = {patience} failures");
        g.record_success(); // too late: the disable latches
        g.record_failure();
        prop_assert!(g.is_disabled());
    }

    #[test]
    fn success_mid_streak_resets_the_patience_counter(
        patience in 2usize..8,
        streaks in prop::collection::vec(1usize..8, 1..6),
    ) {
        // Any number of failure streaks each shorter than n, separated by
        // successes, never disables; extending the final streak to n does.
        let mut g = Guardrail::default().with_failure_patience(patience);
        for streak in &streaks {
            for _ in 0..(*streak).min(patience - 1) {
                g.record_failure();
            }
            prop_assert!(!g.is_disabled());
            g.record_success();
        }
        prop_assert!(!g.is_disabled(), "short streaks must never accumulate");
        for _ in 0..patience {
            g.record_failure();
        }
        prop_assert!(g.is_disabled());
    }

    #[test]
    fn trailing_censored_counts_exactly_the_terminal_streak(
        kinds in prop::collection::vec(0u8..2, 0..40),
    ) {
        // Arbitrary interleavings of measured (0) and censored (1)
        // observations: trailing_censored must equal the length of the
        // censored suffix and nothing else — inner streaks are invisible.
        let mut h = optimizers::tuner::History::new();
        for (i, k) in kinds.iter().enumerate() {
            if *k == 0 {
                h.push(vec![0.0], 1.0, 100.0 + i as f64);
            } else {
                h.all.push(optimizers::tuner::Observation {
                    point: vec![0.0],
                    data_size: 1.0,
                    elapsed_ms: 1e6,
                    kind: optimizers::tuner::ObservationKind::Censored,
                });
            }
        }
        let expected = kinds.iter().rev().take_while(|k| **k == 1).count();
        prop_assert_eq!(h.trailing_censored(), expected);
        // A measured observation always resets the streak to zero…
        h.push(vec![0.0], 1.0, 50.0);
        prop_assert_eq!(h.trailing_censored(), 0);
        // …and censored ones extend it one at a time.
        for add in 1..=3usize {
            h.all.push(optimizers::tuner::Observation {
                point: vec![0.0],
                data_size: 1.0,
                elapsed_ms: 1e6,
                kind: optimizers::tuner::ObservationKind::Censored,
            });
            prop_assert_eq!(h.trailing_censored(), add);
        }
    }

    #[test]
    fn failure_patience_disables_the_guardrail_tuner(patience in 1usize..6) {
        let space = optimizers::space::ConfigSpace::query_level();
        let guardrail = Guardrail::new(30, 0.3, 3).with_failure_patience(patience);
        let mut tuner = RockhopperTuner::builder(space)
            .guardrail(Some(guardrail))
            .seed(9)
            .build();
        let ctx = TuningContext {
            embedding: Vec::new(),
            expected_data_size: 1.0,
            iteration: 0,
        };
        for i in 0..patience {
            prop_assert!(!tuner.is_disabled(), "disabled after only {i} failures");
            let point = tuner.suggest(&ctx);
            tuner.observe(&point, &Outcome::censored(1e6, 1.0));
        }
        prop_assert!(tuner.is_disabled());
    }
}

/// A client whose backend was shut down degrades to the default configuration
/// with an explicit fallback reason — the serving path never blocks on a dead
/// backend.
#[test]
fn dead_backend_degrades_to_default_config() {
    let storage = Arc::new(Storage::new());
    let backend = AutotuneBackend::new(storage, None, 5);
    let (service, client) = AutotuneService::spawn(backend);
    service.shutdown();
    let space = optimizers::space::ConfigSpace::query_level();
    let ctx = TuningContext {
        embedding: Vec::new(),
        expected_data_size: 1.0,
        iteration: 0,
    };
    let (point, fallback) =
        client.suggest_or_default("prop", 1, &ctx, Duration::from_secs(5), &space);
    assert_eq!(point, space.default_point());
    assert_eq!(fallback, Some(SuggestFallback::BackendDown));
}
