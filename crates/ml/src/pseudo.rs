//! The paper's "Level X" pseudo-surrogate models (§6.1, Figure 9).
//!
//! To isolate how surrogate accuracy affects Centroid Learning, the paper replaces the
//! learned surrogate with an oracle of controllable quality: a *Level X* model, given a
//! candidate set, picks the candidate ranked at approximately the `10·X`-th percentile
//! of **true** (noise-free) performance. Level 1 is near-optimal; Level 8 recommends a
//! candidate around the 80th percentile — badly suboptimal.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Selects candidates at a target percentile of their true scores.
#[derive(Debug)]
pub struct PercentileSelector {
    /// Level `X` in 1..=9, targeting the `10·X`-th percentile (lower = better).
    level: u8,
    /// Rank jitter (±fraction of the candidate count) so repeated selections are
    /// "approximately" at the percentile, as the paper describes.
    jitter: f64,
    rng: StdRng,
}

impl PercentileSelector {
    /// Create a Level-`level` selector; `level` is clamped to `1..=9`.
    pub fn new(level: u8, seed: u64) -> Self {
        PercentileSelector {
            level: level.clamp(1, 9),
            jitter: 0.05,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Pick an index into `true_scores` ranked near the `10·level`-th percentile,
    /// where *lower score is better* (scores are execution times).
    ///
    /// Returns `None` for an empty candidate set.
    pub fn select(&mut self, true_scores: &[f64]) -> Option<usize> {
        if true_scores.is_empty() {
            return None;
        }
        let n = true_scores.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| true_scores[a].total_cmp(&true_scores[b]));

        let target = self.level as f64 / 10.0 * (n - 1) as f64;
        let jitter = self.rng.random_range(-self.jitter..=self.jitter) * n as f64;
        let rank = (target + jitter).round().clamp(0.0, (n - 1) as f64) as usize;
        Some(order[rank])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Vec<f64> {
        (0..100).map(|i| i as f64).collect()
    }

    #[test]
    fn level_one_picks_near_best() {
        let mut s = PercentileSelector::new(1, 0);
        let sc = scores();
        for _ in 0..20 {
            let i = s.select(&sc).unwrap();
            assert!(sc[i] <= 20.0, "level 1 picked rank {}", sc[i]);
        }
    }

    #[test]
    fn level_eight_picks_poor_candidates() {
        let mut s = PercentileSelector::new(8, 0);
        let sc = scores();
        for _ in 0..20 {
            let i = s.select(&sc).unwrap();
            assert!(sc[i] >= 60.0, "level 8 picked rank {}", sc[i]);
        }
    }

    #[test]
    fn level_is_clamped() {
        assert_eq!(PercentileSelector::new(0, 0).level(), 1);
        assert_eq!(PercentileSelector::new(12, 0).level(), 9);
    }

    #[test]
    fn empty_candidates_return_none() {
        assert_eq!(PercentileSelector::new(3, 0).select(&[]), None);
    }

    #[test]
    fn works_on_unsorted_scores() {
        let mut s = PercentileSelector::new(1, 7);
        let sc = vec![50.0, 1.0, 99.0, 2.0, 75.0, 3.0, 60.0, 4.0, 80.0, 5.0];
        let i = s.select(&sc).unwrap();
        assert!(sc[i] <= 5.0, "picked {}", sc[i]);
    }

    #[test]
    fn single_candidate_is_always_chosen() {
        let mut s = PercentileSelector::new(9, 0);
        assert_eq!(s.select(&[42.0]), Some(0));
    }
}
