//! Offline shim of `proptest`.
//!
//! Provides the subset this workspace's property tests use: the `proptest!`
//! macro (including `#![proptest_config(...)]`), range strategies over ints
//! and floats, `prop::collection::vec`, tuple strategies, `.prop_map`,
//! `prop_assert!`/`prop_assert_eq!`, and plain-typed parameters drawn via
//! [`Arbitrary`]. Unlike upstream there is no shrinking: cases are generated
//! from a fixed seed per test (deterministic across runs — a workspace
//! requirement), and a failing case panics with its case index so it can be
//! replayed by re-running the test.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::RngCore;

/// Runtime re-exports for the `proptest!` macro expansion; not public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values of type `Value` from an RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Sizes accepted by [`crate::prop::collection::vec`].
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// `vec(element_strategy, len)` where `len` is a `usize` or a range.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Values drawable without an explicit strategy (`name: Type` parameters).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-balanced, spanning several orders of magnitude.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 41) as i32 - 20;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * 10f64.powi(exp)
    }
}

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` — only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Derive a per-test seed from the test name so streams are stable across
/// runs and independent across tests (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` macro: runs each property body `cases` times with
/// deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    // Without one.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    (@tests ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let case_result = ::std::panic::catch_unwind(|| {
                        let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                            seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        $crate::proptest!(@bind __rng, $($params)*);
                        $body
                    });
                    if let Err(payload) = case_result {
                        eprintln!(
                            "proptest case {}/{} of {} failed (replay: rerun this test)",
                            case + 1, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    // Parameter munchers: `pat in strategy` and `name: Type` forms.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, mut $name:ident in $strat:expr) => {
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
}
