//! Ridge-regularized linear least squares, solved via the normal equations and a
//! Cholesky factorization.
//!
//! Two roles in the paper:
//! - the **FIND_GRADIENT** linear surface (§4.3): "a linear surface is employed to
//!   approximate the small region explored in these iterations, enabling robust
//!   gradient calculation", and
//! - the **guardrail** regression of execution time on `(iteration, input cardinality)`.

use serde::{Deserialize, Serialize};

use crate::linalg::{solve_spd, Matrix};
use crate::{validate_xy, MlError, Regressor};

/// Linear model `y ≈ w·x + b` with L2 penalty `lambda` on `w` (the intercept is
/// unpenalized).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Ridge {
    lambda: f64,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl Ridge {
    /// Create an unfitted model. `lambda = 0` gives ordinary least squares (a tiny
    /// jitter is still applied for numerical stability).
    pub fn new(lambda: f64) -> Self {
        Ridge {
            lambda: lambda.max(0.0),
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Fitted coefficients (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    // rhlint:allow(dead-pub): model introspection API
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Whether `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        let n = x.len();

        // Center features and targets so the intercept drops out of the system.
        let x_mean: Vec<f64> = (0..dim)
            .map(|j| x.iter().map(|r| r[j]).sum::<f64>() / n as f64)
            .collect();
        let y_mean = y.iter().sum::<f64>() / n as f64;

        // A = XᵀX + λI (on centered X), b = Xᵀy.
        let mut a = Matrix::zeros(dim, dim);
        let mut b = vec![0.0; dim];
        for (row, &target) in x.iter().zip(y) {
            let centered: Vec<f64> = row.iter().zip(&x_mean).map(|(v, m)| v - m).collect();
            let ty = target - y_mean;
            for j in 0..dim {
                b[j] += centered[j] * ty;
                for k in j..dim {
                    a[(j, k)] += centered[j] * centered[k];
                }
            }
        }
        for j in 0..dim {
            for k in 0..j {
                a[(j, k)] = a[(k, j)];
            }
        }
        // Always add a small jitter so degenerate designs (e.g. duplicated
        // observations during early tuning iterations) still solve.
        a.add_diagonal(self.lambda + 1e-9);

        let w = solve_spd(&a, &b)?;
        self.intercept = y_mean - w.iter().zip(&x_mean).map(|(wj, mj)| wj * mj).sum::<f64>();
        self.weights = w;
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2x0 - 3x1 + 5
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let mut m = Ridge::new(0.0);
        m.fit(&x, &y).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-6);
        assert!((m.weights()[1] + 3.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
        assert!((m.predict(&[10.0, 1.0]) - 22.0).abs() < 1e-5);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0]).collect();
        let mut ols = Ridge::new(0.0);
        let mut heavy = Ridge::new(1e3);
        ols.fit(&x, &y).unwrap();
        heavy.fit(&x, &y).unwrap();
        assert!(heavy.weights()[0].abs() < ols.weights()[0].abs());
    }

    #[test]
    fn unfitted_predicts_zero() {
        let m = Ridge::new(1.0);
        assert_eq!(m.predict(&[1.0, 2.0]), 0.0);
        assert!(!m.is_fitted());
    }

    #[test]
    fn degenerate_duplicate_rows_still_fit() {
        // All rows identical: the centered design is all-zero, only jitter keeps the
        // system solvable. This happens in practice when early tuning iterations
        // repeat the default configuration.
        let x = vec![vec![1.0, 2.0]; 5];
        let y = vec![3.0; 5];
        let mut m = Ridge::new(0.0);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[1.0, 2.0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_sign_is_recovered_under_noise() {
        // The FIND_GRADIENT use-case: detect the descent direction from noisy data.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 6) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 10.0 - 2.0 * r[0] + crate::stats::normal(&mut rng, 0.0, 1.0))
            .collect();
        let mut m = Ridge::new(0.1);
        m.fit(&x, &y).unwrap();
        assert!(m.weights()[0] < 0.0, "slope should be negative");
    }
}
