//! The per-line rule matchers and the suppression grammar.

use std::path::Path;

use crate::mask::MaskedSource;
use crate::{Diagnostic, Rule, ScanScope};

/// Scan one source file. `crate_name` selects rule scopes; `rel_path` is the
/// workspace-relative path recorded in diagnostics.
///
/// Standalone entry point (masks the text itself, applies suppressions).
/// The workspace pass instead uses [`raw_findings`] over cached
/// [`MaskedSource`]s and filters suppressions centrally, so the semantic
/// rules honor `rhlint:allow` too.
pub fn scan_source(
    crate_name: &str,
    rel_path: &Path,
    text: &str,
    scope: ScanScope,
) -> Vec<Diagnostic> {
    let masked = MaskedSource::new(text);
    let mut diagnostics = raw_findings(crate_name, rel_path, &masked, scope);
    diagnostics.retain(|d| !allowed_rules_at(&masked, d.line).contains(&d.rule));
    diagnostics.extend(bad_suppressions(rel_path, &masked));
    diagnostics
}

/// All line-rule findings, BEFORE suppression filtering. Test regions are
/// skipped.
pub(crate) fn raw_findings(
    crate_name: &str,
    rel_path: &Path,
    masked: &MaskedSource,
    scope: ScanScope,
) -> Vec<Diagnostic> {
    let sanctioned_spawn = spawn_sanctioned(crate_name, rel_path);
    let sanctioned_socket = socket_sanctioned(crate_name);
    let mut diagnostics = Vec::new();
    for (idx, masked_line) in masked.masked_lines.iter().enumerate() {
        if masked.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for (rule, message) in line_findings(
            masked_line,
            scope,
            crate_name,
            sanctioned_spawn,
            sanctioned_socket,
        ) {
            diagnostics.push(Diagnostic {
                file: rel_path.to_path_buf(),
                line: idx + 1,
                rule,
                message,
            });
        }
    }
    diagnostics
}

/// Rules allowed at 1-based `line_no` by a justified `rhlint:allow` on the
/// flagged line or the line above it.
pub(crate) fn allowed_rules_at(masked: &MaskedSource, line_no: usize) -> Vec<Rule> {
    let idx = line_no.saturating_sub(1);
    let candidates = [
        idx.checked_sub(1).and_then(|p| masked.raw_lines.get(p)),
        masked.raw_lines.get(idx),
    ];
    let mut allowed = Vec::new();
    for raw in candidates.into_iter().flatten() {
        if let Suppression::Allow(rules) = parse_suppression(raw) {
            allowed.extend(rules);
        }
    }
    allowed
}

/// Every well-formed, justified `rhlint:allow` in the file as
/// `(1-based line, allowed rules)` — the input to the RH025 staleness check.
pub(crate) fn well_formed_allows(masked: &MaskedSource) -> Vec<(usize, Vec<Rule>)> {
    masked
        .raw_lines
        .iter()
        .enumerate()
        .filter_map(|(idx, raw)| match parse_suppression(raw) {
            Suppression::Allow(rules) => Some((idx + 1, rules)),
            _ => None,
        })
        .collect()
}

/// Malformed suppressions are diagnostics wherever they appear (including
/// test code: a broken audit trail is a problem everywhere).
pub(crate) fn bad_suppressions(rel_path: &Path, masked: &MaskedSource) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for (idx, raw) in masked.raw_lines.iter().enumerate() {
        if let Suppression::Malformed(why) = parse_suppression(raw) {
            diagnostics.push(Diagnostic {
                file: rel_path.to_path_buf(),
                line: idx + 1,
                rule: Rule::BadSuppression,
                message: why,
            });
        }
    }
    diagnostics
}

/// The three sites allowed to call `thread::spawn` directly: the `rockpool`
/// work pool itself, the `pipeline::service` backend worker (a single
/// long-lived request loop that the service handle joins on shutdown), and
/// the `rockserve` serving edge (acceptor + worker pool, all joined by the
/// server handle's drain contract). Everything else must fan out through
/// `rockpool::Pool`.
fn spawn_sanctioned(crate_name: &str, rel_path: &Path) -> bool {
    crate_name == "rockpool"
        || crate_name == "rockserve"
        || rel_path
            .to_string_lossy()
            .replace('\\', "/")
            .ends_with("pipeline/src/service.rs")
}

/// The one crate allowed to construct raw sockets: the `rockserve` serving
/// layer. Every other crate reaches the network through `ServeClient`, whose
/// framing, error replies, and drain behavior are covered by tests.
fn socket_sanctioned(crate_name: &str) -> bool {
    crate_name == "rockserve"
}

/// All rule hits on one masked line, before suppression filtering.
fn line_findings(
    line: &str,
    scope: ScanScope,
    crate_name: &str,
    sanctioned_spawn: bool,
    sanctioned_socket: bool,
) -> Vec<(Rule, String)> {
    let mut findings = Vec::new();

    if scope.float_safety {
        let has_partial_cmp = has_token(line, "partial_cmp");
        if has_partial_cmp && (line.contains(".unwrap()") || line.contains(".expect(")) {
            findings.push((
                Rule::PartialCmpUnwrap,
                "partial_cmp(..).unwrap() panics on NaN; use ml::stats::total_cmp_f64".into(),
            ));
        } else if has_partial_cmp && contains_any_sort_adapter(line) {
            findings.push((
                Rule::FloatSort,
                "float ordering via partial_cmp; use total_cmp (ml::stats helpers)".into(),
            ));
        }
        for nan in ["f64::NAN", "f32::NAN"] {
            if line.contains(nan) {
                findings.push((
                    Rule::NanLiteral,
                    format!(
                        "bare {nan} literal; return Option/Result instead of poisoning results"
                    ),
                ));
            }
        }
    }

    if scope.panic_freedom {
        // partial-cmp-unwrap already covers its own unwrap/expect.
        let covered_by_float = findings.iter().any(|(r, _)| *r == Rule::PartialCmpUnwrap);
        if !covered_by_float {
            if line.contains(".unwrap()") {
                findings.push((
                    Rule::Unwrap,
                    "unwrap() in library code; return a typed error instead".into(),
                ));
            }
            if line.contains(".expect(") {
                findings.push((
                    Rule::Expect,
                    "expect() in library code; return a typed error instead".into(),
                ));
            }
        }
        for mac in ["panic!", "todo!", "unimplemented!", "unreachable!"] {
            if has_token(line, mac) {
                findings.push((
                    Rule::Panic,
                    format!("{mac} in library code; return a typed error instead"),
                ));
            }
        }
        if let Some(snippet) = literal_index(line) {
            findings.push((
                Rule::SliceIndex,
                format!("literal index `{snippet}` can panic; use .get()/.first() or prove bounds"),
            ));
        }
    }

    if scope.determinism {
        for pat in ["SystemTime::now", "Instant::now"] {
            if line.contains(pat) {
                findings.push((
                    Rule::WallClock,
                    format!("{pat} in deterministic crate `{crate_name}`; thread a clock through instead"),
                ));
            }
        }
        for pat in [
            "thread_rng",
            "rand::rng()",
            "from_os_rng",
            "from_entropy",
            "OsRng",
        ] {
            if line.contains(pat) {
                findings.push((
                    Rule::AmbientRng,
                    format!("ambient RNG ({pat}); all randomness must flow through seeded StdRng"),
                ));
            }
        }
        for pat in ["HashMap", "HashSet"] {
            if has_token(line, pat) {
                findings.push((
                    Rule::HashIter,
                    format!("{pat} in deterministic crate `{crate_name}`; iteration order varies — use BTreeMap/BTreeSet/Vec"),
                ));
            }
        }
    }

    // Thread discipline applies to every scoped crate: a raw spawn escapes
    // both the panic story (a detached thread's panic is invisible) and the
    // determinism story (no seed splitting, no ordered reduction).
    if (scope.panic_freedom || scope.determinism)
        && !sanctioned_spawn
        && line.contains("thread::spawn")
    {
        findings.push((
            Rule::ThreadSpawn,
            "raw thread::spawn outside rockpool/pipeline::service; fan out through rockpool::Pool"
                .into(),
        ));
    }

    // Socket discipline mirrors thread discipline: networking outside the
    // serving layer is an untested I/O path with no admission control and no
    // drain story. Only `rockserve` may construct sockets.
    if (scope.panic_freedom || scope.determinism) && !sanctioned_socket {
        for ty in [
            "TcpListener",
            "TcpStream",
            "UdpSocket",
            "UnixListener",
            "UnixStream",
        ] {
            if has_token(line, ty) {
                findings.push((
                    Rule::RawSocket,
                    format!(
                        "raw {ty} in crate `{crate_name}`; all networking goes through rockserve (ServeClient / Server)"
                    ),
                ));
            }
        }
    }

    findings
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// `needle` present with identifier boundaries on both sides.
fn has_token(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap_or(' '));
        let after = line[at + needle.len()..].chars().next();
        let after_ok = !after.map(is_ident_char).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

fn contains_any_sort_adapter(line: &str) -> bool {
    [
        ".sort_by(",
        ".sort_unstable_by(",
        ".min_by(",
        ".max_by(",
        ".binary_search_by(",
    ]
    .iter()
    .any(|p| line.contains(p))
}

/// Find `expr[<integer literal>]` indexing; returns the matched snippet.
/// Heuristic: a `[` directly preceded by an identifier char, `)`, or `]`,
/// whose bracketed content is a non-empty digit string (underscores allowed).
fn literal_index(line: &str) -> Option<String> {
    let chars: Vec<char> = line.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        let close = chars[i + 1..].iter().position(|&c| c == ']')?;
        let inner: String = chars[i + 1..i + 1 + close].iter().collect();
        let trimmed = inner.trim();
        if !trimmed.is_empty() && trimmed.chars().all(|c| c.is_ascii_digit() || c == '_') {
            // reconstruct a short snippet: the identifier + index
            let start = line[..byte_offset(line, i)]
                .rfind(|c: char| !is_ident_char(c) && c != '.' && c != ')' && c != ']')
                .map(|p| p + 1)
                .unwrap_or(0);
            let end = byte_offset(line, i + close + 2);
            return Some(line[start..end].trim().to_string());
        }
    }
    None
}

/// Translate a char index into a byte offset (lines can hold non-ASCII).
fn byte_offset(line: &str, char_idx: usize) -> usize {
    line.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(line.len())
}

enum Suppression {
    None,
    Allow(Vec<Rule>),
    Malformed(String),
}

/// Grammar: `rhlint:allow(rule[, rule...]): justification`
/// The justification is mandatory — suppressions are audit entries.
fn parse_suppression(raw_line: &str) -> Suppression {
    let Some(tag) = raw_line.find("rhlint:allow") else {
        return Suppression::None;
    };
    let rest = &raw_line[tag + "rhlint:allow".len()..];
    let Some(open) = rest.find('(') else {
        return Suppression::Malformed("rhlint:allow missing rule list `( ... )`".into());
    };
    let Some(close) = rest.find(')') else {
        return Suppression::Malformed("rhlint:allow missing closing `)`".into());
    };
    if open != 0 || close < open {
        return Suppression::Malformed("rhlint:allow malformed rule list".into());
    }
    let mut rules = Vec::new();
    for id in rest[open + 1..close].split(',') {
        let id = id.trim();
        match Rule::from_id(id) {
            Some(rule) => rules.push(rule),
            None => {
                return Suppression::Malformed(format!("rhlint:allow names unknown rule `{id}`"))
            }
        }
    }
    if rules.is_empty() {
        return Suppression::Malformed("rhlint:allow with empty rule list".into());
    }
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Suppression::Malformed(
            "rhlint:allow requires a justification: `rhlint:allow(rule): why this is safe`".into(),
        );
    }
    Suppression::Allow(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        scan_source(
            crate_name,
            &PathBuf::from("crates/x/src/lib.rs"),
            src,
            ScanScope::for_crate(crate_name),
        )
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    // ---- panic-freedom ----

    #[test]
    fn flags_unwrap_expect_panic_in_lib_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"set\");\n    panic!(\"boom\");\n}\n";
        let diags = scan("pipeline", src);
        assert_eq!(
            rules_of(&diags),
            vec![Rule::Unwrap, Rule::Expect, Rule::Panic]
        );
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
        assert_eq!(diags[2].line, 4);
    }

    #[test]
    fn unwrap_or_and_unwrap_or_else_are_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }\n";
        assert!(scan("pipeline", src).is_empty());
    }

    #[test]
    fn flags_literal_slice_index_but_not_variables_or_types() {
        let flagged = scan("rockhopper", "fn f(v: &[u32]) -> u32 { v[0] }\n");
        assert_eq!(rules_of(&flagged), vec![Rule::SliceIndex]);
        assert!(scan("rockhopper", "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n").is_empty());
        assert!(scan("rockhopper", "fn f() -> [f64; 3] { [0.0; 3] }\n").is_empty());
        assert!(scan("rockhopper", "const XS: [u8; 2] = [1, 2];\n").is_empty());
    }

    #[test]
    fn test_modules_and_exempt_crates_are_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(scan("pipeline", src).is_empty());
        // `experiments` is not in any scope: even raw panics pass.
        assert!(scan("experiments", "fn f() { panic!(); }\n").is_empty());
    }

    #[test]
    fn strings_and_comments_never_flag() {
        let src = "fn f() -> &'static str { \"call .unwrap() and panic!\" } // .unwrap() here\n";
        assert!(scan("pipeline", src).is_empty());
    }

    // ---- determinism ----

    #[test]
    fn flags_wall_clock_ambient_rng_and_hash_collections_in_scope() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let t = std::time::Instant::now();\n    let mut r = rand::rng();\n}\n";
        let diags = scan("sparksim", src);
        assert_eq!(
            rules_of(&diags),
            vec![Rule::HashIter, Rule::WallClock, Rule::AmbientRng]
        );
    }

    #[test]
    fn determinism_rules_do_not_apply_outside_scope() {
        // pipeline is panic-scoped but not determinism-scoped (its monitor
        // timestamps real wall-clock events by design).
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(scan("pipeline", src).is_empty());
    }

    // ---- thread discipline ----

    #[test]
    fn flags_raw_thread_spawn_in_scoped_crates() {
        let src = "fn f() { let h = std::thread::spawn(|| 1); let _ = h.join(); }\n";
        assert_eq!(rules_of(&scan("optimizers", src)), vec![Rule::ThreadSpawn]);
        // Panic-scoped but determinism-exempt crates are still thread-scoped.
        assert_eq!(rules_of(&scan("ml", src)), vec![Rule::ThreadSpawn]);
    }

    #[test]
    fn sanctioned_spawn_sites_are_exempt() {
        let src = "fn f() { let h = std::thread::spawn(|| 1); let _ = h.join(); }\n";
        // The pipeline service worker is the sanctioned long-lived thread.
        let diags = scan_source(
            "pipeline",
            &PathBuf::from("crates/pipeline/src/service.rs"),
            src,
            ScanScope::for_crate("pipeline"),
        );
        assert!(rules_of(&diags).is_empty(), "got {diags:?}");
        // rockpool and the unscoped harness crates never flag.
        assert!(scan("rockpool", src).is_empty());
        assert!(scan("experiments", src).is_empty());
    }

    // ---- socket discipline ----

    #[test]
    fn flags_raw_sockets_in_scoped_crates() {
        let listen = "fn f() { let l = std::net::TcpListener::bind(\"127.0.0.1:0\"); }\n";
        assert_eq!(rules_of(&scan("pipeline", listen)), vec![Rule::RawSocket]);
        let connect = "fn f() { let s = std::net::TcpStream::connect(\"127.0.0.1:1\"); }\n";
        assert_eq!(
            rules_of(&scan("optimizers", connect)),
            vec![Rule::RawSocket]
        );
        let udp = "fn f() { let u = std::net::UdpSocket::bind(\"127.0.0.1:0\"); }\n";
        assert_eq!(rules_of(&scan("ml", udp)), vec![Rule::RawSocket]);
    }

    #[test]
    fn rockserve_is_the_sanctioned_socket_home() {
        let src = "fn f() { let l = std::net::TcpListener::bind(\"127.0.0.1:0\"); let s = std::net::TcpStream::connect(\"127.0.0.1:1\"); }\n";
        assert!(scan("rockserve", src).is_empty());
        // Unscoped harness crates never flag either.
        assert!(scan("experiments", src).is_empty());
    }

    #[test]
    fn socket_tokens_in_strings_and_identifiers_do_not_flag() {
        let src = "fn f() -> &'static str { \"TcpListener goes through rockserve\" }\nfn g(my_tcp_stream_count: usize) -> usize { my_tcp_stream_count }\n";
        assert!(scan("pipeline", src).is_empty());
    }

    #[test]
    fn scoped_spawn_through_the_pool_is_clean() {
        let src =
            "fn f(xs: &[u64]) -> Vec<u64> { rockpool::Pool::from_env().map(xs, |_, x| x + 1) }\n";
        assert!(scan("optimizers", src).is_empty());
    }

    // ---- float-safety ----

    #[test]
    fn flags_partial_cmp_unwrap_once_not_twice() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let diags = scan("ml", src);
        assert_eq!(rules_of(&diags), vec![Rule::PartialCmpUnwrap]);
    }

    #[test]
    fn flags_float_sort_via_partial_cmp_without_unwrap() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n";
        let diags = scan("ml", src);
        assert_eq!(rules_of(&diags), vec![Rule::FloatSort]);
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(scan("ml", src).is_empty());
    }

    #[test]
    fn flags_nan_literals() {
        let src = "fn f() -> f64 { f64::NAN }\n";
        assert_eq!(rules_of(&scan("optimizers", src)), vec![Rule::NanLiteral]);
    }

    // ---- suppressions ----

    #[test]
    fn justified_allow_suppresses_same_line_and_next_line() {
        let same = "fn f(v: &[u32]) -> u32 { v[0] } // rhlint:allow(slice-index): len asserted by caller\n";
        assert!(scan("rockhopper", same).is_empty());
        let above = "// rhlint:allow(unwrap): infallible — the mutex cannot be poisoned here\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(scan("pipeline", above).is_empty());
    }

    #[test]
    fn allow_without_justification_is_itself_a_violation() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // rhlint:allow(unwrap)\n";
        let diags = scan("pipeline", src);
        assert_eq!(rules_of(&diags), vec![Rule::Unwrap, Rule::BadSuppression]);
    }

    #[test]
    fn allow_of_wrong_rule_does_not_suppress() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // rhlint:allow(expect): wrong rule\n";
        let diags = scan("pipeline", src);
        assert_eq!(rules_of(&diags), vec![Rule::Unwrap]);
    }

    #[test]
    fn unknown_rule_in_allow_is_malformed() {
        let src = "// rhlint:allow(no-such-rule): whatever\nfn f() {}\n";
        let diags = scan("pipeline", src);
        assert_eq!(rules_of(&diags), vec![Rule::BadSuppression]);
    }

    #[test]
    fn multi_rule_allow_covers_both() {
        let src =
            "fn f(v: &[Option<u32>]) -> u32 { v[0].unwrap() } // rhlint:allow(slice-index, unwrap): fixture guarantees one element\n";
        assert!(scan("pipeline", src).is_empty());
    }
}
