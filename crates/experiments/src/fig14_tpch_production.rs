//! **Figure 14**: the production-setting benchmark — all 22 TPC-H queries tuned
//! independently (3 query-level knobs) with the baseline model trained on TPC-DS
//! data. Paper results: total time falls over iterations despite noise; 10 queries
//! gain >10% (6 of those >15%); ≤3 queries show sub-second regressions.

use optimizers::env::{Environment, QueryEnv};
use optimizers::space::ConfigSpace;
use optimizers::tuner::Tuner;
use pipeline::flighting::{run_flight, Benchmark, FlightPlan, PoolId, Strategy};
use pipeline::storage::Storage;
use pipeline::trainer::train_baseline;
use rockhopper::RockhopperTuner;
use sparksim::noise::NoiseSpec;

use crate::harness::{write_csv, Scale, Summary};

fn production_noise() -> NoiseSpec {
    NoiseSpec {
        fluctuation: 0.3,
        spike: 0.3,
    }
}

/// Run the TPC-H production experiment.
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 10.0,
        Scale::Quick => 0.5,
    };
    let iters = scale.pick(50, 8);
    let queries: Vec<usize> = match scale {
        Scale::Full => (1..=22).collect(),
        Scale::Quick => vec![1, 3, 6],
    };

    // Baseline trained on TPC-DS (cross-benchmark transfer, as deployed).
    let space = ConfigSpace::query_level();
    let flight = FlightPlan {
        benchmark: Benchmark::TpcDs,
        // Pinned to the original 24 templates so recorded results stay stable as the
        // workloads crate grows.
        queries: (1..=24).collect(),
        scale_factor: sf,
        runs_per_query: scale.pick(25, 4),
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        noise: NoiseSpec::low(),
        seed: 14,
    };
    let rows = run_flight(&flight, &space, &Storage::new());
    let baseline = train_baseline(&space, &rows, None, 14).expect("flighting rows exist");

    let mut summary = Summary::new("fig14_tpch_production");
    let mut csv = Vec::new();
    let mut improvements = Vec::new();
    let mut total_first = 0.0;
    let mut total_last = 0.0;

    for &q in &queries {
        let mut env = QueryEnv::tpch(q, sf, production_noise(), 1400 + q as u64);
        let space = env.space().clone();
        let default_ms = env.true_time(&space.default_point());
        let mut tuner = RockhopperTuner::builder(space)
            .baseline(baseline.clone())
            .seed(1500 + q as u64)
            .build();
        let mut trace = Vec::with_capacity(iters);
        for _ in 0..iters {
            let p = tuner.suggest(&env.context());
            trace.push(env.true_time(&p));
            let o = env.run(&p);
            tuner.observe(&p, &o);
        }
        let first = ml::stats::mean(&trace[..(iters / 8).max(1)]);
        let last = ml::stats::mean(&trace[trace.len().saturating_sub((iters / 8).max(1))..]);
        total_first += first;
        total_last += last;
        let improvement = 100.0 * (default_ms - last) / default_ms;
        improvements.push((q, improvement, default_ms - last));
        for (t, v) in trace.iter().enumerate() {
            csv.push(vec![q as f64, t as f64, *v, default_ms]);
        }
    }

    let over10 = improvements
        .iter()
        .filter(|(_, imp, _)| *imp > 10.0)
        .count();
    let over15 = improvements
        .iter()
        .filter(|(_, imp, _)| *imp > 15.0)
        .count();
    let regressions: Vec<&(usize, f64, f64)> = improvements
        .iter()
        .filter(|(_, imp, _)| *imp < 0.0)
        .collect();
    summary.row("queries tuned", improvements.len());
    summary.row(
        "total true time, first vs final window",
        format!("{total_first:.0} -> {total_last:.0} ms"),
    );
    summary.row(
        "queries improved >10% vs default",
        format!("{over10} (paper: 10)"),
    );
    summary.row(
        "queries improved >15% vs default",
        format!("{over15} (paper: 6)"),
    );
    summary.row(
        "regressions vs default",
        format!("{} (paper: 3, all minor)", regressions.len()),
    );
    if let Some(worst) = regressions.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        summary.row(
            "worst regression",
            format!("Q{} {:.1}% ({:.0} ms)", worst.0, worst.1, -worst.2),
        );
    }
    for (q, imp, _) in &improvements {
        summary.row(&format!("Q{q} improvement"), format!("{imp:.1}%"));
    }
    summary.files.push(write_csv(
        "fig14_tpch_production",
        "query,iteration,true_ms,default_ms",
        &csv,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_improves_total_time() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        let row = s
            .rows
            .iter()
            .find(|(k, _)| k.starts_with("total true time"))
            .map(|(_, v)| v.clone())
            .unwrap();
        let nums: Vec<f64> = row
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter(|t| !t.is_empty())
            .filter_map(|t| t.parse().ok())
            .collect();
        assert!(nums.len() >= 2);
        assert!(
            nums[1] <= nums[0] * 1.15,
            "final window should not be much worse: {row}"
        );
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
