//! Offline shim of `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free guard-returning API, layered over `std::sync`. A poisoned
//! std lock is recovered transparently (parking_lot has no poisoning).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
