//! RBF kernel ridge regression — the reproduction's stand-in for the paper's
//! scikit-learn SVR surrogate (§6.1, Figure 10). Both are kernel machines over an RBF
//! feature space; KRR trades the ε-insensitive loss for squared loss, which keeps the
//! solver a single Cholesky solve while preserving the "moderately accurate non-linear
//! regressor fit on noisy data" role the paper assigns to it.

use crate::kernel::Kernel;
use crate::linalg::{dot, solve_spd};
use crate::scaler::{StandardScaler, TargetScaler};
use crate::{validate_xy, MlError, Regressor};

/// Kernel ridge regressor with internal feature/target standardization.
#[derive(Debug, Clone)]
pub struct KernelRidge {
    kernel: Kernel,
    /// Regularization strength λ added to the Gram diagonal.
    lambda: f64,
    x_train: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    x_scaler: Option<StandardScaler>,
    y_scaler: Option<TargetScaler>,
}

impl KernelRidge {
    /// Create an unfitted model. Length scale is in *standardized* feature units, so
    /// `1.0` is a sensible default across very differently scaled Spark knobs.
    pub fn new(kernel: Kernel, lambda: f64) -> Self {
        KernelRidge {
            kernel,
            lambda: lambda.max(1e-12),
            x_train: Vec::new(),
            alpha: Vec::new(),
            x_scaler: None,
            y_scaler: None,
        }
    }

    /// RBF kernel with the given length scale and regularization — the configuration
    /// used by the experiments.
    pub fn rbf(length_scale: f64, lambda: f64) -> Self {
        KernelRidge::new(Kernel::rbf(length_scale), lambda)
    }

    /// Whether `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        !self.alpha.is_empty()
    }
}

impl Regressor for KernelRidge {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        validate_xy(x, y)?;
        let x_scaler = StandardScaler::fit(x);
        let y_scaler = TargetScaler::fit(y);
        let xs = x_scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| y_scaler.transform(v)).collect();

        let mut k = self.kernel.gram(&xs);
        k.add_diagonal(self.lambda);
        let alpha = solve_spd(&k, &ys)?;

        self.x_train = xs;
        self.alpha = alpha;
        self.x_scaler = Some(x_scaler);
        self.y_scaler = Some(y_scaler);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let (Some(xs), Some(ys)) = (&self.x_scaler, &self.y_scaler) else {
            return 0.0;
        };
        let xt = xs.transform_row(x);
        let k_star = self.kernel.cross(&xt, &self.x_train);
        ys.inverse(dot(&k_star, &self.alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// The surrogate's real job: learn a convex bowl from noisy samples well enough to
    /// rank candidates.
    #[test]
    fn learns_noisy_convex_bowl() {
        let mut rng = StdRng::seed_from_u64(11);
        let truth = |x: f64| 5.0 + (x - 3.0) * (x - 3.0);
        let x: Vec<Vec<f64>> = (0..80).map(|_| vec![rng.random_range(0.0..6.0)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| truth(r[0]) + crate::stats::normal(&mut rng, 0.0, 0.5))
            .collect();
        let mut m = KernelRidge::rbf(1.0, 0.1);
        m.fit(&x, &y).unwrap();
        // Predicted minimum should be near x = 3.
        let best = (0..=60)
            .map(|i| i as f64 / 10.0)
            .min_by(|a, b| m.predict(&[*a]).total_cmp(&m.predict(&[*b])))
            .unwrap();
        assert!((best - 3.0).abs() < 1.0, "argmin was {best}");
    }

    #[test]
    fn interpolates_training_points_with_small_lambda() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1.0, 3.0, 2.0];
        let mut m = KernelRidge::rbf(1.0, 1e-8);
        m.fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((m.predict(xi) - yi).abs() < 1e-3);
        }
    }

    #[test]
    fn unfitted_predicts_zero() {
        let m = KernelRidge::rbf(1.0, 0.1);
        assert_eq!(m.predict(&[1.0]), 0.0);
        assert!(!m.is_fitted());
    }

    #[test]
    fn handles_wildly_different_feature_scales() {
        // One knob in the hundreds of millions (maxPartitionBytes), one in the tens.
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64) * 1e7 + 1e8, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] / 1e8 + r[1]).collect();
        let mut m = KernelRidge::rbf(1.0, 0.01);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&[2e8, 2.0]);
        assert!((pred - 4.0).abs() < 1.0, "pred {pred}");
    }

    #[test]
    fn duplicate_rows_do_not_break_fit() {
        let x = vec![vec![1.0]; 4];
        let y = vec![2.0, 2.1, 1.9, 2.0];
        let mut m = KernelRidge::rbf(1.0, 0.1);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[1.0]) - 2.0).abs() < 0.2);
    }
}
