//! Fixture scoring kernels for the hot-path allocation rule.

/// Scores one candidate — tagged hot, but allocates a scratch buffer.
// rhlint:hot — called once per candidate per round; must stay allocation-free
fn score(xs: &[f64]) -> f64 {
    let mut acc = Vec::with_capacity(xs.len());
    for x in xs {
        acc.push(*x + 1.0);
    }
    total(&acc)
}

/// Untagged helper — its allocation is nobody's business.
fn total(xs: &[f64]) -> f64 {
    let copied = xs.to_vec();
    let mut sum = 0.0;
    for x in &copied {
        sum += *x;
    }
    sum
}

/// Tagged hot and genuinely allocation-free — silent.
// rhlint:hot — pure arithmetic
fn clamp01(x: f64) -> f64 {
    if x < 0.0 {
        0.0
    } else if x > 1.0 {
        1.0
    } else {
        x
    }
}
