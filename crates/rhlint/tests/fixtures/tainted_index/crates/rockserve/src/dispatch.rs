//! RH027 fixture: slice indexing by a wire-decoded value.
//!
//! One positive — `dims[idx]` where `idx` came straight off the wire — and
//! one negative where `idx < dims.len()` dominates the access (the bound is
//! parameter-derived, which the taint pass treats as trustworthy).

fn knob_at(dims: &[f64], w: [u8; 2]) -> f64 {
    let idx = u16::from_le_bytes(w) as usize;
    dims[idx]
}

fn knob_at_checked(dims: &[f64], w: [u8; 2]) -> f64 {
    let idx = u16::from_le_bytes(w) as usize;
    if idx < dims.len() {
        dims[idx]
    } else {
        0.0
    }
}
