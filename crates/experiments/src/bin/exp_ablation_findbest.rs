//! Regenerates the paper's `exp_ablation_findbest` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_ablation_findbest::run(scale).print();
}
