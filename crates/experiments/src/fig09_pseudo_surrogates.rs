//! **Figure 9**: Centroid Learning convergence with pseudo-surrogates of controlled
//! accuracy (Level X selects the candidate at the 10·X-th percentile of true
//! performance). The paper's finding: CL converges robustly even through Level 5,
//! and the worse the surrogate the slower — but never divergent — the search.

use optimizers::env::{Environment, SyntheticEnv};
use optimizers::tuner::Tuner;
use rockhopper::selector::PseudoSelector;
use rockhopper::RockhopperTuner;

use crate::harness::{band_rows, replicate, write_csv, Scale, Summary};

/// Levels plotted by the paper (9, 7, 5, 3, 1).
pub const LEVELS: [u8; 5] = [9, 7, 5, 3, 1];

/// One replication: CL with a Level-`level` selector on the high-noise function,
/// tracing the centroid's true normalized performance.
pub fn trace_level(level: u8, seed: u64, iters: usize) -> Vec<f64> {
    let mut env = SyntheticEnv::high_noise_constant(seed);
    let f = env.f.clone();
    let oracle = move |c: &[f64]| f.true_time(&[c[0], c[1], c[2]], 1.0);
    let mut tuner = RockhopperTuner::builder(env.space().clone())
        .selector(Box::new(PseudoSelector::new(
            level,
            seed ^ 0x9,
            Box::new(oracle),
        )))
        .guardrail(None)
        .seed(seed)
        .build();
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        out.push(env.normed_performance(&p));
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    out
}

/// Run every level and summarize final medians.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(100, 6);
    let iters = scale.pick(400, 40);
    let mut summary = Summary::new("fig09_pseudo_surrogates");
    let mut finals = Vec::new();
    for &level in &LEVELS {
        let bands = replicate(runs, |seed| trace_level(level, seed, iters));
        let tail = &bands[bands.len().saturating_sub(10)..];
        let p50 = ml::stats::mean(&tail.iter().map(|b| b.p50).collect::<Vec<_>>());
        finals.push((level, p50));
        summary.row(
            &format!("Level {level} final median normed perf"),
            format!("{p50:.3}"),
        );
        summary.files.push(write_csv(
            &format!("fig09_level{level}"),
            "iteration,p5,p50,p95",
            &band_rows(&bands),
        ));
    }
    // The paper's headline: Level 5 still converges, beating Fig 2's baselines.
    let l5 = finals
        .iter()
        .find(|(l, _)| *l == 5)
        .map(|(_, v)| *v)
        .unwrap();
    summary.row(
        "Level 5 robust convergence",
        format!("{l5:.3} (paper: converges, outperforming vanilla BO)"),
    );
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_surrogates_converge_at_least_as_well() {
        let l1: f64 = (0..4)
            .map(|s| *trace_level(1, s, 60).last().unwrap())
            .sum::<f64>()
            / 4.0;
        let l9: f64 = (0..4)
            .map(|s| *trace_level(9, s, 60).last().unwrap())
            .sum::<f64>()
            / 4.0;
        assert!(
            l1 <= l9 * 1.5,
            "level 1 ({l1:.3}) should not be far worse than level 9 ({l9:.3})"
        );
    }

    #[test]
    fn level_one_converges_near_optimum() {
        let finals: Vec<f64> = (0..4)
            .map(|s| *trace_level(1, s, 150).last().unwrap())
            .collect();
        let median = ml::stats::median(&finals).expect("runs > 0");
        assert!(median < 1.6, "level-1 CL median {median}");
    }
}
