//! Per-function control-flow graphs, built from the tolerant AST.
//!
//! A [`Cfg`] is a list of basic blocks; each block carries the ordered
//! [`Event`]s the dataflow passes interpret (guard acquisitions and releases,
//! blocking operations, panic sites, resolved workspace calls) plus its
//! successor edges. The graph is an over-approximation of real control flow:
//! both branches of an `if`/`match` are reachable, every loop body may run
//! zero or more times, `return`/`break`/`continue` edges go where they say.
//! That is exactly the shape a *may*-analysis wants — if a guard can be held
//! on **some** path to a blocking call, the lint should fire.
//!
//! Construction is driven by the lock-discipline walker in [`crate::locks`]:
//! it linearizes statements into the current block via [`CfgBuilder::push`]
//! and splits blocks at branch points with [`CfgBuilder::fork`]-style
//! primitives. Block 0 is the entry; [`CfgBuilder::exit`] is the single
//! synthetic exit that `return` and the final fallthrough edge target.

/// Index of a basic block inside its [`Cfg`].
pub type BlockId = usize;

/// An abstract operand of a value-flow event: a tracked local, a numeric
/// constant, or something the lowerer cannot see through. Constants are
/// stored as `f64` bit patterns so [`Event`] keeps its derived `Eq`/`Ord`
/// friendliness; `1 << 20` and every knob bound in the workspace are exact
/// in an `f64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operand {
    Var(String),
    /// `f64::to_bits` of the constant value.
    Const(u64),
    Unknown,
}

impl Operand {
    pub fn num(v: f64) -> Operand {
        Operand::Const(v.to_bits())
    }

    /// The constant value, when this operand is one.
    pub fn value(&self) -> Option<f64> {
        match self {
            Operand::Const(bits) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }
}

/// Comparison operators that appear in branch guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// The comparison that holds on the `else` edge.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// The comparison `b op a` equivalent to `a op b` with sides swapped.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

/// The right-hand side of a value assignment, as abstract as the value
/// analyses need: enough structure for interval transfer functions and taint
/// propagation, [`VRhs::Opaque`] for everything else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VRhs {
    /// Plain copy/cast of one operand.
    Operand(Operand),
    /// Raw arithmetic `lhs op rhs` (`+ - * / % << >>`).
    Binary {
        op: String,
        lhs: Operand,
        rhs: Operand,
    },
    /// `arg.clamp(lo, hi)`.
    Clamp {
        arg: Operand,
        lo: Operand,
        hi: Operand,
    },
    /// `lhs.min(rhs)` / `cmp::min(lhs, rhs)`.
    Min { lhs: Operand, rhs: Operand },
    /// `lhs.max(rhs)` / `cmp::max(lhs, rhs)`.
    Max { lhs: Operand, rhs: Operand },
    /// `checked_*`/`saturating_*`/`wrapping_*` arithmetic — cannot overflow
    /// unchecked, so taint stays but the overflow sink never fires on it.
    GuardedArith { args: Vec<Operand> },
    /// `T::try_from(arg)` — a bounded conversion; `range` is `T`'s value
    /// range when the target type is a known integer (f64 bit patterns).
    TryFrom {
        arg: Operand,
        range: Option<(u64, u64)>,
    },
    /// `arg.len()` — non-negative, and as attacker-controlled as `arg`.
    Len { of: Operand },
    /// A taint source: wire-decoded integers, env vars, file reads. `range`
    /// is the decoded type's value range when known (f64 bit patterns).
    Source {
        what: &'static str,
        int: bool,
        range: Option<(u64, u64)>,
    },
    /// A resolved call to a workspace function (index into
    /// [`crate::symbols::Workspace::fns`]); summaries supply the value.
    Call { callee: usize },
    /// Value-preserving adapters (`unwrap`, `ok`, `Ok(..)`, `unwrap_or`):
    /// the result is one of `args`. When `values` is false only taint flows
    /// through (e.g. `parse`: the number is new, the provenance is not).
    Adapter { args: Vec<Operand>, values: bool },
    /// No value information survives lowering.
    Opaque,
}

/// Positions where a tainted or out-of-range value does damage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// An allocation sized by the operand (`with_capacity`, `resize`,
    /// `reserve`, `vec![x; n]`). The string names the allocating form.
    Alloc(String),
    /// A slice/array index.
    Index,
    /// A divisor (`/`, `%`, `div_euclid`, `rem_euclid`).
    Div,
    /// Unchecked integer arithmetic (`+ - * <<`); the string is the operator.
    Arith(String),
    /// The operand flows into parameter `index` of workspace fn `callee`;
    /// the callee's summary says whether that parameter reaches a sink.
    CallArg { callee: usize, index: usize },
    /// `conf.set(Knob::<name>, operand)` — checked against the knob's
    /// declared `SearchSpace` bounds.
    KnobSet { knob: String },
}

/// The event alphabet of the dataflow passes (see [`crate::dataflow`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A `Mutex`/`RwLock` guard comes alive: `let g = m.lock()`, a temporary
    /// `m.lock().x()` chain, or a call to a workspace fn returning a guard.
    Acquire {
        /// Unique-within-function guard identity (`g`, or `#tmp3` for
        /// statement-scoped temporaries).
        guard: String,
        /// Stable identity of the lock object, e.g. `Shared.coalescer`.
        lock: String,
        line: usize,
    },
    /// The guard dies: explicit `drop(g)`, end of its lexical scope, or end
    /// of statement for temporaries.
    Release { guard: String },
    /// A blocking operation: channel `recv`/`recv_timeout`, argument-less
    /// `join()`, `thread::sleep`, socket accept/connect/bulk I/O.
    Blocking { what: String, line: usize },
    /// A potential panic: `unwrap`/`expect`, `panic!`-family macro, or an
    /// `assert!` that can fail.
    Panic { what: String, line: usize },
    /// A call into another workspace function (index into
    /// [`crate::symbols::Workspace::fns`]); interprocedural summaries decide
    /// whether it blocks, panics, or acquires further locks.
    Call { callee: usize, line: usize },
    /// A value assignment `var = rhs` visible to the value analyses.
    /// Synthetic `#vN` temporaries chain sub-expression values; `#ret`
    /// carries the function's return value for callee summaries.
    Assign { var: String, rhs: VRhs, line: usize },
    /// A branch-refined fact: on this block, `var cmp bound` holds. Emitted
    /// into the then/else arms of comparisons that guard them.
    Assume {
        var: String,
        op: CmpOp,
        bound: Operand,
    },
    /// A dangerous use of a value; the value analyses decide whether the
    /// operands are tainted/out-of-range enough to report.
    Sink {
        kind: SinkKind,
        args: Vec<Operand>,
        line: usize,
    },
}

/// One basic block: straight-line events, then zero or more successors.
#[derive(Clone, Debug, Default)]
pub struct BasicBlock {
    pub events: Vec<Event>,
    pub succs: Vec<BlockId>,
}

/// A per-function control-flow graph. Block `0` is the entry.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub blocks: Vec<BasicBlock>,
    /// The synthetic exit block every terminating path reaches.
    pub exit: BlockId,
}

impl Cfg {
    /// Predecessor lists, computed on demand by the dataflow solver.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (from, block) in self.blocks.iter().enumerate() {
            for &to in &block.succs {
                if let Some(p) = preds.get_mut(to) {
                    p.push(from);
                }
            }
        }
        preds
    }
}

/// Incremental CFG construction: the AST walker appends events to the
/// *current* block and splits it at branch points.
pub struct CfgBuilder {
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    exit: BlockId,
    /// `(continue_target, break_target)` per enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl Default for CfgBuilder {
    fn default() -> CfgBuilder {
        CfgBuilder::new()
    }
}

impl CfgBuilder {
    pub fn new() -> CfgBuilder {
        // Block 0 is the entry, block 1 the synthetic exit.
        CfgBuilder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            cur: 0,
            exit: 1,
            loop_stack: Vec::new(),
        }
    }

    /// The block new events land in.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// The synthetic exit block.
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Append an event to the current block.
    pub fn push(&mut self, e: Event) {
        if let Some(b) = self.blocks.get_mut(self.cur) {
            b.events.push(e);
        }
    }

    /// Allocate a fresh, empty block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    /// Add the edge `from → to`.
    pub fn edge(&mut self, from: BlockId, to: BlockId) {
        if let Some(b) = self.blocks.get_mut(from) {
            if !b.succs.contains(&to) {
                b.succs.push(to);
            }
        }
    }

    /// Redirect construction into `block`.
    pub fn set_current(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// End the current block with a jump to the exit (a `return`), then
    /// continue in a fresh unreachable block so trailing statements do not
    /// leak facts past the jump.
    pub fn diverge_to_exit(&mut self) {
        let exit = self.exit;
        self.diverge_to(exit);
    }

    /// End the current block with a jump to `target` (break/continue), then
    /// continue in a fresh unreachable block.
    pub fn diverge_to(&mut self, target: BlockId) {
        self.edge(self.cur, target);
        let orphan = self.new_block();
        self.cur = orphan;
    }

    /// Enter a loop whose `continue` jumps to `head` and `break` to `after`.
    pub fn enter_loop(&mut self, head: BlockId, after: BlockId) {
        self.loop_stack.push((head, after));
    }

    /// Leave the innermost loop.
    pub fn leave_loop(&mut self) {
        self.loop_stack.pop();
    }

    /// The innermost loop's `(continue_target, break_target)`, if any.
    pub fn innermost_loop(&self) -> Option<(BlockId, BlockId)> {
        self.loop_stack.last().copied()
    }

    /// Finish: the final fallthrough edge reaches the exit.
    pub fn finish(mut self) -> Cfg {
        let exit = self.exit;
        let cur = self.cur;
        self.edge(cur, exit);
        Cfg {
            blocks: self.blocks,
            exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_cfg_is_entry_then_exit() {
        let mut b = CfgBuilder::new();
        b.push(Event::Blocking {
            what: "recv".into(),
            line: 3,
        });
        let cfg = b.finish();
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
        assert_eq!(cfg.blocks[0].events.len(), 1);
    }

    #[test]
    fn diverge_creates_orphan_continuation() {
        let mut b = CfgBuilder::new();
        b.diverge_to_exit();
        let orphan = b.current();
        assert_ne!(orphan, 0);
        let cfg = b.finish();
        // Entry jumps straight to exit; the orphan has no predecessors.
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
        assert!(cfg.preds()[orphan].is_empty());
    }

    #[test]
    fn preds_invert_succs() {
        let mut b = CfgBuilder::new();
        let then_b = b.new_block();
        let join = b.new_block();
        b.edge(0, then_b);
        b.edge(0, join);
        b.edge(then_b, join);
        b.set_current(join);
        let cfg = b.finish();
        let preds = cfg.preds();
        assert_eq!(preds[join], vec![0, then_b]);
    }
}
