//! Fixture: one live suppression, one stale one left behind by a refactor.

/// The allow below still earns its keep: the cast finding is real.
fn widen(n: usize) -> u32 {
    // rhlint:allow(lossy-cast): candidate index is bounded by the space size
    n as u32
}

/// The unwrap this allow once covered is long gone.
fn shrink(n: u32) -> u32 {
    // rhlint:allow(unwrap): leftover from an old refactor
    n / 2
}
