//! Serving-layer metrics: request counters, coalescing/batching gauges, and a
//! log2-bucketed latency histogram with monotone p50/p95/p99 read-out,
//! rendered as a `/metrics`-style text page.
//!
//! The histogram buckets latencies by power of two (bucket *i* covers
//! `[2^i, 2^(i+1))` microseconds), so recording is O(1) and a quantile is one
//! cumulative walk. Quantiles report the bucket's upper edge: p50 ≤ p95 ≤ p99
//! holds by construction, which `tests/bench_gate.rs` relies on.

use std::sync::{Mutex, PoisonError};

use pipeline::DashboardCounters;
use serde::{Deserialize, Serialize};

/// Histogram width: bucket 31 covers ~36 minutes, far beyond any suggest.
const BUCKETS: usize = 32;

/// Per-shard counter block: the suggest-path counters that are attributable
/// to one signature-hash shard, plus that shard's own latency histogram.
#[derive(Debug, Default)]
struct ShardInner {
    suggests: u64,
    backend_evals: u64,
    coalesced_hits: u64,
    overloaded: u64,
    latency_counts: [u64; BUCKETS],
    latency_total: u64,
}

#[derive(Debug)]
struct Inner {
    suggests: u64,
    reports: u64,
    healths: u64,
    metrics_requests: u64,
    shutdowns: u64,
    overloaded: u64,
    protocol_errors: u64,
    backend_evals: u64,
    coalesced_hits: u64,
    transfer_served: u64,
    batch_max: u64,
    latency_counts: [u64; BUCKETS],
    latency_total: u64,
    shards: Vec<ShardInner>,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            suggests: 0,
            reports: 0,
            healths: 0,
            metrics_requests: 0,
            shutdowns: 0,
            overloaded: 0,
            protocol_errors: 0,
            backend_evals: 0,
            coalesced_hits: 0,
            transfer_served: 0,
            batch_max: 0,
            latency_counts: [0; BUCKETS],
            latency_total: 0,
            shards: Vec::new(),
        }
    }
}

/// Shared, thread-safe serving metrics; one instance per server.
#[derive(Debug, Default)]
pub(crate) struct ServeMetrics {
    inner: Mutex<Inner>,
}

impl ServeMetrics {
    /// Metrics with one per-shard counter block per shard. `Default` (zero
    /// shard blocks) is only for unsharded unit tests — the server always
    /// sizes the blocks to its lane count.
    pub(crate) fn with_shards(shards: usize) -> ServeMetrics {
        let m = ServeMetrics::default();
        m.with(|i| i.shards = (0..shards).map(|_| ShardInner::default()).collect());
        m
    }

    fn with<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub(crate) fn count_suggest(&self, shard: usize) {
        self.with(|i| {
            i.suggests = i.suggests.saturating_add(1);
            if let Some(s) = i.shards.get_mut(shard) {
                s.suggests = s.suggests.saturating_add(1);
            }
        });
    }

    pub(crate) fn count_report(&self) {
        self.with(|i| i.reports = i.reports.saturating_add(1));
    }

    pub(crate) fn count_health(&self) {
        self.with(|i| i.healths = i.healths.saturating_add(1));
    }

    pub(crate) fn count_metrics(&self) {
        self.with(|i| i.metrics_requests = i.metrics_requests.saturating_add(1));
    }

    pub(crate) fn count_shutdown(&self) {
        self.with(|i| i.shutdowns = i.shutdowns.saturating_add(1));
    }

    /// An accept-gate shed, attributable to no shard.
    pub(crate) fn count_overloaded(&self) {
        self.with(|i| i.overloaded = i.overloaded.saturating_add(1));
    }

    /// A suggest-gate shed on one shard's admission gate.
    pub(crate) fn count_shard_overloaded(&self, shard: usize) {
        self.with(|i| {
            i.overloaded = i.overloaded.saturating_add(1);
            if let Some(s) = i.shards.get_mut(shard) {
                s.overloaded = s.overloaded.saturating_add(1);
            }
        });
    }

    pub(crate) fn count_protocol_error(&self) {
        self.with(|i| i.protocol_errors = i.protocol_errors.saturating_add(1));
    }

    pub(crate) fn count_backend_eval(&self, shard: usize) {
        self.with(|i| {
            i.backend_evals = i.backend_evals.saturating_add(1);
            if let Some(s) = i.shards.get_mut(shard) {
                s.backend_evals = s.backend_evals.saturating_add(1);
            }
        });
    }

    pub(crate) fn count_coalesced_hit(&self, shard: usize) {
        self.with(|i| {
            i.coalesced_hits = i.coalesced_hits.saturating_add(1);
            if let Some(s) = i.shards.get_mut(shard) {
                s.coalesced_hits = s.coalesced_hits.saturating_add(1);
            }
        });
    }

    /// A suggestion answered with a config transferred from the retrieval
    /// corpus (a cold signature served without executing anything).
    pub(crate) fn count_transfer_served(&self) {
        self.with(|i| i.transfer_served = i.transfer_served.saturating_add(1));
    }

    /// Track the largest batch (requests served by one backend evaluation).
    pub(crate) fn observe_batch(&self, size: u64) {
        self.with(|i| i.batch_max = i.batch_max.max(size));
    }

    /// Record one request's service latency.
    pub(crate) fn record_latency_us(&self, us: u64) {
        let bucket = bucket_of(us);
        self.with(|i| {
            if let Some(c) = i.latency_counts.get_mut(bucket) {
                *c = c.saturating_add(1);
            }
            i.latency_total = i.latency_total.saturating_add(1);
        });
    }

    /// Record one suggest's latency against its shard's own histogram.
    pub(crate) fn record_shard_latency_us(&self, shard: usize, us: u64) {
        let bucket = bucket_of(us);
        self.with(|i| {
            if let Some(s) = i.shards.get_mut(shard) {
                if let Some(c) = s.latency_counts.get_mut(bucket) {
                    *c = c.saturating_add(1);
                }
                s.latency_total = s.latency_total.saturating_add(1);
            }
        });
    }

    /// One-copy snapshot; queue gauges are sampled by the caller (they live
    /// in the server's admission counters, not here).
    pub(crate) fn snapshot(&self, queue_depth: u64, inflight: u64) -> MetricsSnapshot {
        self.with(|i| MetricsSnapshot {
            suggests: i.suggests,
            reports: i.reports,
            healths: i.healths,
            metrics_requests: i.metrics_requests,
            shutdowns: i.shutdowns,
            overloaded: i.overloaded,
            protocol_errors: i.protocol_errors,
            backend_evals: i.backend_evals,
            coalesced_hits: i.coalesced_hits,
            transfer_served: i.transfer_served,
            batch_max: i.batch_max,
            queue_depth,
            inflight,
            p50_us: quantile(&i.latency_counts, i.latency_total, 0.50),
            p95_us: quantile(&i.latency_counts, i.latency_total, 0.95),
            p99_us: quantile(&i.latency_counts, i.latency_total, 0.99),
            shards: i
                .shards
                .iter()
                .enumerate()
                .map(|(n, s)| ShardMetricsSnapshot {
                    shard: n as u64,
                    suggests: s.suggests,
                    backend_evals: s.backend_evals,
                    coalesced_hits: s.coalesced_hits,
                    overloaded: s.overloaded,
                    p50_us: quantile(&s.latency_counts, s.latency_total, 0.50),
                    p99_us: quantile(&s.latency_counts, s.latency_total, 0.99),
                })
                .collect(),
        })
    }
}

/// The bucket index covering `us` microseconds.
// rhlint:hot — runs on every request latency sample; pure bit math, no alloc
fn bucket_of(us: u64) -> usize {
    if us == 0 {
        return 0;
    }
    let log2 = (u64::BITS - 1 - us.leading_zeros()) as usize;
    log2.min(BUCKETS - 1)
}

/// The `q`-quantile's bucket upper edge in microseconds; 0 with no samples.
fn quantile(counts: &[u64; BUCKETS], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum = cum.saturating_add(c);
        if cum >= rank {
            return upper_edge(i);
        }
    }
    upper_edge(BUCKETS - 1)
}

/// Upper edge of bucket `i`: `2^(i+1) - 1` microseconds.
fn upper_edge(i: usize) -> u64 {
    1u64.checked_shl(u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1))
        .map(|v| v - 1)
        .unwrap_or(u64::MAX)
}

/// One shard's slice of the suggest-path counters, plus its own latency
/// percentiles — the per-shard half of `BENCH_serve.json`'s `sharding` block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMetricsSnapshot {
    /// Shard index (the `shard_of` routing target).
    pub shard: u64,
    /// `Suggest` frames routed to this shard.
    pub suggests: u64,
    /// Suggest evaluations this shard's backend actually ran.
    pub backend_evals: u64,
    /// Suggests served from a shared evaluation on this shard.
    pub coalesced_hits: u64,
    /// Suggests shed at this shard's admission gate.
    pub overloaded: u64,
    /// Median suggest latency on this shard (bucket upper edge), µs.
    pub p50_us: u64,
    /// 99th-percentile suggest latency on this shard, µs.
    pub p99_us: u64,
}

/// A point-in-time copy of every serving counter and the latency percentiles.
/// Carried verbatim inside `Response::MetricsReport` and folded into
/// `BENCH_serve.json` by the load generator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `Suggest` frames handled (including coalesced and shed ones).
    pub suggests: u64,
    /// `Report` frames handled.
    pub reports: u64,
    /// `Health` frames handled.
    pub healths: u64,
    /// `Metrics` frames handled.
    pub metrics_requests: u64,
    /// `Shutdown` frames handled.
    pub shutdowns: u64,
    /// Requests shed by admission control.
    pub overloaded: u64,
    /// Frames rejected as truncated/oversized/malformed/wrong-version.
    pub protocol_errors: u64,
    /// Suggest evaluations that actually reached the autotune backend.
    pub backend_evals: u64,
    /// Suggest requests served from a shared evaluation instead of their own.
    pub coalesced_hits: u64,
    /// Suggestions answered with a config transferred from the retrieval
    /// corpus (cold signatures served without executing anything).
    pub transfer_served: u64,
    /// Largest number of requests served by a single backend evaluation.
    pub batch_max: u64,
    /// Connections waiting for a worker when the snapshot was taken.
    pub queue_depth: u64,
    /// Suggest evaluations in flight when the snapshot was taken.
    pub inflight: u64,
    /// Median service latency (bucket upper edge), microseconds.
    pub p50_us: u64,
    /// 95th-percentile service latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile service latency, microseconds.
    pub p99_us: u64,
    /// Per-shard suggest-path counters, index = shard id. Empty only for
    /// metrics built without shard blocks (unit tests).
    pub shards: Vec<ShardMetricsSnapshot>,
}

/// Render the `/metrics`-style text page: `name value` per line, serving
/// counters first, then the pipeline dashboard counters.
pub(crate) fn render_text(s: &MetricsSnapshot, d: &DashboardCounters) -> String {
    let mut out = String::new();
    for (name, value) in [
        ("rockserve_requests_suggest", s.suggests),
        ("rockserve_requests_report", s.reports),
        ("rockserve_requests_health", s.healths),
        ("rockserve_requests_metrics", s.metrics_requests),
        ("rockserve_requests_shutdown", s.shutdowns),
        ("rockserve_overloaded", s.overloaded),
        ("rockserve_protocol_errors", s.protocol_errors),
        ("rockserve_backend_evals", s.backend_evals),
        ("rockserve_coalesced_hits", s.coalesced_hits),
        ("rockserve_transfer_served", s.transfer_served),
        ("rockserve_batch_max", s.batch_max),
        ("rockserve_queue_depth", s.queue_depth),
        ("rockserve_inflight", s.inflight),
        ("rockserve_latency_p50_us", s.p50_us),
        ("rockserve_latency_p95_us", s.p95_us),
        ("rockserve_latency_p99_us", s.p99_us),
        ("pipeline_ingested_records", d.ingested_records),
        ("pipeline_failed_runs", d.failed_runs),
        ("pipeline_quarantined_lines", d.quarantined_lines),
        ("pipeline_tracked_signatures", d.tracked_signatures),
        ("pipeline_wal_records_written", d.wal_records_written),
        (
            "pipeline_wal_records_quarantined",
            d.wal_records_quarantined,
        ),
        ("pipeline_snapshot_writes", d.snapshot_writes),
        ("pipeline_recovery_replayed", d.recovery_replayed),
        ("pipeline_tuner_evictions", d.tuner_evictions),
        ("pipeline_evicted_restored", d.evicted_restored),
        ("pipeline_cold_hits", d.cold_hits),
        ("pipeline_cold_misses", d.cold_misses),
        ("pipeline_transfer_seeded", d.transfer_seeded),
    ] {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for shard in &s.shards {
        for (family, value) in [
            ("suggests", shard.suggests),
            ("backend_evals", shard.backend_evals),
            ("coalesced_hits", shard.coalesced_hits),
            ("overloaded", shard.overloaded),
            ("latency_p50_us", shard.p50_us),
            ("latency_p99_us", shard.p99_us),
        ] {
            out.push_str(&format!(
                "rockserve_shard{}_{family} {value}\n",
                shard.shard
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_log2_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_monotone_and_cover_the_samples() {
        let m = ServeMetrics::default();
        for us in [10u64, 20, 40, 80, 5000, 100_000] {
            m.record_latency_us(us);
        }
        let s = m.snapshot(0, 0);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
        assert!(s.p50_us >= 40, "median above the low samples: {}", s.p50_us);
        assert!(s.p99_us >= 100_000, "tail covers the slowest: {}", s.p99_us);
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let s = ServeMetrics::default().snapshot(3, 1);
        assert_eq!((s.p50_us, s.p95_us, s.p99_us), (0, 0, 0));
        assert_eq!((s.queue_depth, s.inflight), (3, 1));
    }

    #[test]
    fn render_includes_every_counter_family() {
        let m = ServeMetrics::default();
        m.count_suggest(0);
        m.count_backend_eval(0);
        m.observe_batch(64);
        let text = render_text(&m.snapshot(0, 0), &DashboardCounters::default());
        assert!(text.contains("rockserve_requests_suggest 1"), "{text}");
        assert!(text.contains("rockserve_batch_max 64"), "{text}");
        assert!(text.contains("pipeline_ingested_records 0"), "{text}");
        assert!(text.contains("pipeline_wal_records_written 0"), "{text}");
        assert!(text.contains("pipeline_recovery_replayed 0"), "{text}");
        assert!(text.contains("pipeline_tuner_evictions 0"), "{text}");
        assert!(text.contains("pipeline_evicted_restored 0"), "{text}");
        assert!(text.contains("rockserve_transfer_served 0"), "{text}");
        assert!(text.contains("pipeline_cold_hits 0"), "{text}");
        assert!(text.contains("pipeline_cold_misses 0"), "{text}");
        assert!(text.contains("pipeline_transfer_seeded 0"), "{text}");
        assert_eq!(text.lines().count(), 29);
    }

    #[test]
    fn shard_counters_split_by_shard_and_render_per_shard_lines() {
        let m = ServeMetrics::with_shards(2);
        m.count_suggest(0);
        m.count_suggest(1);
        m.count_suggest(1);
        m.count_backend_eval(1);
        m.count_coalesced_hit(1);
        m.count_shard_overloaded(0);
        m.record_shard_latency_us(1, 500);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].suggests, 1);
        assert_eq!(snap.shards[1].suggests, 2);
        assert_eq!(snap.shards[1].backend_evals, 1);
        assert_eq!(snap.shards[1].coalesced_hits, 1);
        assert_eq!(snap.shards[0].overloaded, 1);
        assert!(snap.shards[1].p99_us >= 500);
        assert_eq!(snap.shards[0].p50_us, 0);
        // The shard gates also feed the fleet totals.
        assert_eq!(snap.suggests, 3);
        assert_eq!(snap.overloaded, 1);
        let text = render_text(&snap, &DashboardCounters::default());
        assert!(text.contains("rockserve_shard0_suggests 1"), "{text}");
        assert!(text.contains("rockserve_shard1_suggests 2"), "{text}");
        assert_eq!(text.lines().count(), 29 + 2 * 6);
    }

    #[test]
    fn out_of_range_shard_indexes_are_ignored_not_panicked() {
        let m = ServeMetrics::with_shards(1);
        m.count_suggest(5);
        m.count_backend_eval(5);
        m.record_shard_latency_us(5, 100);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.suggests, 1, "fleet total still counted");
        assert_eq!(snap.shards.len(), 1);
        assert_eq!(snap.shards[0].suggests, 0);
    }
}
