//! Wave-based task scheduling and the per-stage time model.
//!
//! A stage's `tasks` run over `slots = executors × cores` in `ceil(tasks / slots)`
//! waves. Each task pays CPU, I/O, shuffle and spill costs plus a fixed overhead; the
//! final wave carries a straggler tail. The ceil produces the realistic staircase in
//! runtime-vs-partitions curves (paper Figure 1) while the per-task overhead penalizes
//! over-partitioning and the memory model penalizes under-partitioning.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::config::SparkConf;
use crate::cost::CostParams;
use crate::memory::{evaluate_stage, MemoryOutcome};
use crate::physical::{PhysicalPlan, Stage, StageKind};

/// Timing breakdown for one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage id.
    pub stage_id: usize,
    /// Task count.
    pub tasks: usize,
    /// Scheduling waves.
    pub waves: usize,
    /// Single-task duration, ms (before the straggler tail).
    pub task_ms: f64,
    /// Total stage duration, ms.
    pub stage_ms: f64,
    /// Memory outcome feeding the spill costs.
    pub memory: MemoryOutcome,
}

/// Timing for the whole query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTiming {
    /// Per-stage breakdowns, in execution order.
    pub stages: Vec<StageTiming>,
    /// End-to-end duration, ms (stages serialized — the simulator's stage DAGs are
    /// effectively linear chains after planning).
    pub total_ms: f64,
}

/// Compute the deterministic ("true", noise-free) timing of a physical plan.
pub fn schedule(
    plan: &PhysicalPlan,
    conf: &SparkConf,
    cluster: &ClusterSpec,
    cost: &CostParams,
) -> QueryTiming {
    let executors = cluster.granted_executors(conf.executor_count());
    let slots = cluster.slots(executors);
    let heap_mb = cluster.granted_memory_mb(conf.executor_memory_mb);
    // Bigger heaps drag CPU via GC in this simplified model, giving the memory knob
    // an interior optimum instead of "always max".
    let gc_factor = 1.0 + cost.gc_per_64g * (heap_mb / (64.0 * 1024.0));

    let mut stages = Vec::with_capacity(plan.stages.len());
    let mut total_ms = 0.0;
    for stage in &plan.stages {
        let timing = schedule_stage(stage, conf, cluster, cost, slots, executors, gc_factor);
        total_ms += timing.stage_ms;
        stages.push(timing);
    }
    QueryTiming { stages, total_ms }
}

fn schedule_stage(
    stage: &Stage,
    conf: &SparkConf,
    cluster: &ClusterSpec,
    cost: &CostParams,
    slots: usize,
    executors: usize,
    gc_factor: f64,
) -> StageTiming {
    let tasks = stage.tasks.max(1);
    let tasks_f = tasks as f64;
    let memory = evaluate_stage(stage, conf, cluster, cost);

    // CPU: weighted rows, evenly divided; sorting adds n·log n on the task's slice.
    let rows_per_task = stage.cpu_rows / tasks_f;
    let mut cpu_ms = rows_per_task * cost.cpu_ns_per_row * 1e-6;
    if stage.sort_rows > 0.0 {
        let sort_rows_per_task = stage.sort_rows / tasks_f;
        cpu_ms += sort_rows_per_task
            * sort_rows_per_task.max(2.0).log2()
            * cost.sort_ns_per_row_log
            * 1e-6;
    }
    cpu_ms *= gc_factor;

    // I/O: reads from storage or shuffle, writes to shuffle.
    let read_bps = match stage.kind {
        StageKind::Scan => cost.scan_bps,
        StageKind::Shuffle => cost.shuffle_read_bps,
    };
    let io_ms = stage.input_bytes / tasks_f / read_bps * 1e3
        + stage.shuffle_write_bytes / tasks_f / cost.shuffle_write_bps * 1e3;

    // Spill: spilled bytes are written then re-read.
    let spill_ms = 2.0 * memory.spill_bytes_per_task / cost.spill_bps * 1e3;

    let task_ms = cpu_ms + io_ms + spill_ms + cost.task_overhead_ms;
    let waves = tasks.div_ceil(slots);

    // Broadcast distribution happens once per stage, growing with the fleet size.
    let broadcast_ms = if stage.broadcast_bytes > 0.0 {
        stage.broadcast_bytes / cost.broadcast_bps * 1e3 * (1.0 + 0.05 * executors as f64)
    } else {
        0.0
    };

    let stage_ms = waves as f64 * task_ms
        + task_ms * cost.skew_tail // straggling final wave
        + cost.stage_overhead_ms
        + broadcast_ms;

    StageTiming {
        stage_id: stage.id,
        tasks,
        waves,
        task_ms,
        stage_ms,
        memory,
    }
}

/// Extra work when `losses` executors die mid-stage (see [`crate::fault`]):
/// the dead executors' in-flight and unfetched-finished tasks re-queue — they
/// are never lost — lost shuffle map output is recomputed by the readers, and
/// the pool pays a reschedule overhead per loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryWave {
    /// Tasks re-queued for re-execution.
    pub retried_tasks: usize,
    /// Time spent recomputing lost shuffle output, ms.
    pub recompute_ms: f64,
    /// Total extra stage time, ms (retry waves + recompute + reschedule).
    pub extra_ms: f64,
}

/// Cost of re-executing the work lost with `losses` executors during `stage`.
pub fn executor_loss_retry(
    stage: &Stage,
    timing: &StageTiming,
    losses: u32,
    slots: usize,
    executors: usize,
    cost: &CostParams,
) -> RetryWave {
    let tasks = stage.tasks.max(1);
    let per_loss = tasks.div_ceil(executors.max(1));
    let retried = (per_loss * losses as usize).min(tasks);
    let slots = slots.max(1);
    let extra_waves = retried.div_ceil(slots);
    // Shuffle readers lose the dead executors' map output and recompute it;
    // scan stages re-read from durable storage instead.
    let recompute_ms = match stage.kind {
        StageKind::Shuffle => timing.task_ms * (retried as f64 / slots as f64),
        StageKind::Scan => 0.0,
    };
    let extra_ms =
        extra_waves as f64 * timing.task_ms + recompute_ms + cost.stage_overhead_ms * losses as f64;
    RetryWave {
        retried_tasks: retried,
        recompute_ms,
        extra_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::plan_physical;
    use crate::plan::PlanNode;

    #[test]
    fn executor_loss_retry_requeues_without_losing_tasks() {
        let plan = PlanNode::scan("t", 1e9, 100.0).hash_aggregate(0.1);
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let phys = plan_physical(&plan, &conf);
        let timing = schedule(&phys, &conf, &cluster, &cost);
        let executors = cluster.granted_executors(conf.executor_count());
        let slots = cluster.slots(executors);
        for (stage, st) in phys.stages.iter().zip(&timing.stages) {
            let one = executor_loss_retry(stage, st, 1, slots, executors, &cost);
            let two = executor_loss_retry(stage, st, 2, slots, executors, &cost);
            assert!(one.retried_tasks >= 1);
            assert!(one.retried_tasks <= stage.tasks.max(1));
            assert!(one.extra_ms > 0.0);
            assert!(two.retried_tasks >= one.retried_tasks);
            assert!(two.extra_ms > one.extra_ms);
        }
    }

    #[test]
    fn shuffle_stages_pay_recompute_scan_stages_do_not() {
        let plan = PlanNode::scan("t", 1e9, 100.0).hash_aggregate(0.1);
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let phys = plan_physical(&plan, &conf);
        let timing = schedule(&phys, &conf, &cluster, &cost);
        let executors = cluster.granted_executors(conf.executor_count());
        let slots = cluster.slots(executors);
        for (stage, st) in phys.stages.iter().zip(&timing.stages) {
            let retry = executor_loss_retry(stage, st, 1, slots, executors, &cost);
            match stage.kind {
                StageKind::Scan => assert_eq!(retry.recompute_ms, 0.0),
                StageKind::Shuffle => assert!(retry.recompute_ms > 0.0),
            }
        }
    }

    fn agg_plan(rows: f64) -> PlanNode {
        PlanNode::scan("t", rows, 100.0)
            .filter(0.5)
            .hash_aggregate(0.05)
    }

    fn time_with_partitions(rows: f64, partitions: f64) -> f64 {
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = partitions;
        let phys = plan_physical(&agg_plan(rows), &conf);
        schedule(&phys, &conf, &ClusterSpec::medium(), &CostParams::default()).total_ms
    }

    #[test]
    fn shuffle_partitions_have_interior_optimum() {
        // The paper's Figure 1 phenomenon: extremes lose to a middle setting.
        let lo = time_with_partitions(5e8, 4.0);
        let mid = time_with_partitions(5e8, 256.0);
        let hi = time_with_partitions(5e8, 20_000.0);
        assert!(mid < lo, "mid {mid} should beat too-few {lo}");
        assert!(mid < hi, "mid {mid} should beat too-many {hi}");
    }

    #[test]
    fn more_data_takes_longer() {
        let small = time_with_partitions(1e6, 200.0);
        let large = time_with_partitions(1e8, 200.0);
        assert!(large > small * 2.0);
    }

    #[test]
    fn more_executors_speed_up_wide_stages() {
        let plan = agg_plan(5e8);
        let cost = CostParams::default();
        let cluster = ClusterSpec::large();
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 2048.0;
        conf.executor_instances = 2.0;
        let phys = plan_physical(&plan, &conf);
        let few = schedule(&phys, &conf, &cluster, &cost).total_ms;
        conf.executor_instances = 64.0;
        let many = schedule(&phys, &conf, &cluster, &cost).total_ms;
        assert!(many < few);
    }

    #[test]
    fn waves_follow_slots() {
        let plan = PlanNode::scan("t", 1e9, 100.0); // 100 GB → many scan tasks
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let phys = plan_physical(&plan, &conf);
        let timing = schedule(&phys, &conf, &cluster, &CostParams::default());
        let slots = cluster.slots(cluster.granted_executors(conf.executor_count()));
        let st = &timing.stages[0];
        assert_eq!(st.waves, st.tasks.div_ceil(slots));
    }

    #[test]
    fn gc_penalizes_oversized_heaps() {
        let plan = agg_plan(1e7); // small enough that memory never spills
        let cost = CostParams::default();
        let cluster = ClusterSpec::large();
        let mut conf = SparkConf::default();
        conf.executor_memory_mb = 8.0 * 1024.0;
        let phys = plan_physical(&plan, &conf);
        let small_heap = schedule(&phys, &conf, &cluster, &cost).total_ms;
        conf.executor_memory_mb = 256.0 * 1024.0;
        let huge_heap = schedule(&phys, &conf, &cluster, &cost).total_ms;
        assert!(huge_heap > small_heap);
    }

    #[test]
    fn spilling_stage_is_slower_than_fitting_stage() {
        // Force a giant sort-merge join so the shuffle stage's working set explodes,
        // then relieve it with more partitions.
        let fact = PlanNode::scan("fact", 2e8, 200.0);
        let other = PlanNode::scan("other", 2e8, 200.0);
        let plan = fact.join(other, 1e-8);
        let cluster = ClusterSpec::small();
        let cost = CostParams::default();
        let mut conf = SparkConf::default();
        conf.auto_broadcast_join_threshold = -1.0;
        conf.shuffle_partitions = 8.0;
        let phys = plan_physical(&plan, &conf);
        let t8 = schedule(&phys, &conf, &cluster, &cost);
        assert!(
            t8.stages.iter().any(|s| s.memory.spills()),
            "tiny partition count must spill"
        );
        conf.shuffle_partitions = 2000.0;
        let phys = plan_physical(&plan, &conf);
        let t2000 = schedule(&phys, &conf, &cluster, &cost);
        let spill8: f64 = t8
            .stages
            .iter()
            .map(|s| s.memory.total_spill_bytes(s.tasks))
            .sum();
        let spill2000: f64 = t2000
            .stages
            .iter()
            .map(|s| s.memory.total_spill_bytes(s.tasks))
            .sum();
        assert!(spill2000 < spill8);
    }

    #[test]
    fn timing_is_deterministic() {
        let a = time_with_partitions(1e7, 100.0);
        let b = time_with_partitions(1e7, 100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn total_is_sum_of_stages() {
        let conf = SparkConf::default();
        let phys = plan_physical(&agg_plan(1e7), &conf);
        let t = schedule(&phys, &conf, &ClusterSpec::medium(), &CostParams::default());
        let sum: f64 = t.stages.iter().map(|s| s.stage_ms).sum();
        assert!((t.total_ms - sum).abs() < 1e-9);
    }
}
