//! Embedding featurization cost: computed client-side at every query submission
//! (compile time), so it must be microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use embedding::{query_signature, WorkloadEmbedder};

fn bench_embed(c: &mut Criterion) {
    let small = workloads::tpch::query(6, 10.0);
    let large = workloads::tpcds::query(11, 10.0); // mega-join, deepest template
    let plain = WorkloadEmbedder::plain();
    let virt = WorkloadEmbedder::virtual_ops();

    let mut group = c.benchmark_group("embed");
    group.bench_function("plain_small_plan", |b| {
        b.iter(|| plain.embed(black_box(&small)))
    });
    group.bench_function("plain_large_plan", |b| {
        b.iter(|| plain.embed(black_box(&large)))
    });
    group.bench_function("virtual_small_plan", |b| {
        b.iter(|| virt.embed(black_box(&small)))
    });
    group.bench_function("virtual_large_plan", |b| {
        b.iter(|| virt.embed(black_box(&large)))
    });
    group.finish();
}

fn bench_signature(c: &mut Criterion) {
    let plan = workloads::tpcds::query(11, 10.0);
    c.bench_function("query_signature_large_plan", |b| {
        b.iter(|| query_signature(black_box(&plan)))
    });
}

criterion_group!(benches, bench_embed, bench_signature);
criterion_main!(benches);
