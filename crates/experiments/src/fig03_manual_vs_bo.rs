//! **Figure 3**: manual tuning (the §2.2 user study, simulated expert policies) vs
//! model-based Bayesian Optimization on 5 queries. The study's platform served
//! *predicted* times from a noise-free model, so the environments here are
//! noiseless; the paper's finding is that BO converges faster on average but
//! occasionally sticks in local minima while experts keep exploring.

use optimizers::bo::BayesOpt;
use optimizers::env::{Environment, QueryEnv};
use optimizers::expert::SimulatedExpert;
use optimizers::tuner::Tuner;
use sparksim::noise::NoiseSpec;

use crate::harness::{best_so_far, write_csv, Scale, Summary};

/// The five queries the study tuned (diverse TPC-DS-style shapes).
pub const QUERIES: [usize; 5] = [1, 5, 6, 13, 21];

fn drive<T: Tuner>(env: &mut QueryEnv, tuner: &mut T, iters: usize) -> Vec<f64> {
    let mut trace = Vec::with_capacity(iters);
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        trace.push(env.true_time(&p));
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    best_so_far(&trace)
}

/// Run the comparison; reports final best-so-far times per query and the count of
/// queries where experts ended ahead of BO.
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 20.0,
        Scale::Quick => 1.0,
    };
    let iters = scale.pick(40, 12);
    let n_experts = scale.pick(20, 3);

    let mut summary = Summary::new("fig03_manual_vs_bo");
    let mut rows = Vec::new();
    let mut expert_wins = 0;
    let mut best_expert_wins = 0;
    for (qi, &q) in QUERIES.iter().enumerate() {
        // Average (and best) expert trace across the volunteer pool.
        let mut expert_avg = vec![0.0; iters];
        let mut best_expert_final = f64::INFINITY;
        for e in 0..n_experts {
            let mut env = QueryEnv::tpcds(q, sf, NoiseSpec::none(), 1000 + e as u64);
            let mut ex = SimulatedExpert::new(env.space().clone(), 2000 + e as u64);
            let trace = drive(&mut env, &mut ex, iters);
            for (t, v) in trace.iter().enumerate() {
                expert_avg[t] += v / n_experts as f64;
            }
            best_expert_final = best_expert_final.min(trace[iters - 1]);
        }
        let mut env = QueryEnv::tpcds(q, sf, NoiseSpec::none(), 1);
        let mut bo = BayesOpt::new(env.space().clone(), 77 + qi as u64);
        let bo_trace = drive(&mut env, &mut bo, iters);

        for t in 0..iters {
            rows.push(vec![qi as f64, t as f64, expert_avg[t], bo_trace[t]]);
        }
        let (ef, bf) = (expert_avg[iters - 1], bo_trace[iters - 1]);
        if ef < bf {
            expert_wins += 1;
        }
        if best_expert_final < bf {
            best_expert_wins += 1;
        }
        summary.row(
            &format!("Q{q} final best (expert avg vs BO) ms"),
            format!("{ef:.0} vs {bf:.0}"),
        );
    }
    summary.row("queries where the average expert ended ahead", expert_wins);
    summary.row(
        "queries where some expert beat BO (\"occasionally better\")",
        best_expert_wins,
    );
    summary.row(
        "paper expectation",
        "BO converges faster on average; experts occasionally beat it",
    );
    summary.files.push(write_csv(
        "fig03_manual_vs_bo",
        "query_idx,iteration,expert_avg_best_ms,bo_best_ms",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_all_queries() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        assert_eq!(
            s.rows.iter().filter(|(k, _)| k.starts_with('Q')).count(),
            QUERIES.len()
        );
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
