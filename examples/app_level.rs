//! App-level joint optimization (paper §4.4, Algorithm 2): a recurrent application
//! with several queries runs through the backend service; after each completion the
//! App Cache Generator pre-computes the next run's executor/memory configuration,
//! which the next submission reads with zero inference latency.
//!
//! ```sh
//! cargo run --release --example app_level
//! ```

use std::sync::Arc;

use rockhopper_repro::pipeline::service::AutotuneBackend;
use rockhopper_repro::pipeline::storage::Storage;
use rockhopper_repro::prelude::*;

fn main() {
    let mut backend = AutotuneBackend::new(Arc::new(Storage::new()), None, 17);
    let user = "contoso";
    let artifact_id = "nightly-sales-rollup";

    // The application's three recurrent queries.
    let mut envs: Vec<QueryEnv> = [1usize, 10, 16]
        .iter()
        .map(|&q| QueryEnv::tpcds(q, 2.0, NoiseSpec::low(), 31 + q as u64))
        .collect();
    let signatures: Vec<u64> = envs.iter().map(QueryEnv::signature).collect();

    for app_run in 0..8 {
        // Submission: the pre-computed app-level configuration (if any) is read
        // straight from the cache — Algorithm 2 ran after the *previous* run.
        match backend.app_conf(artifact_id) {
            Some(app) => println!(
                "run {app_run}: app_cache hit -> executors = {:.0}, memory = {:.0} MiB",
                app[0], app[1]
            ),
            None => println!("run {app_run}: cold start, app defaults"),
        }

        // Each query gets its per-query configuration, executes, and reports events.
        for env in envs.iter_mut() {
            let sig = env.signature();
            let ctx = env.context();
            let point = backend.suggest(user, sig, &ctx);
            let conf = env.space().to_conf(&point);
            let plan = env.plan.clone();
            let run = env.sim.execute(&plan, &conf, app_run as u64 ^ sig);
            let app_id = format!("{artifact_id}-run{app_run}");
            let events = env.sim.events_for_run(
                &app_id,
                artifact_id,
                sig,
                &plan,
                &conf,
                ctx.embedding,
                &run,
            );
            backend.ingest(user, &app_id, &events);
            let _ = env.run(&point); // keep the env's iteration counter in step
        }

        // Application finished: pre-compute the app cache for the next run.
        backend.update_app_cache(user, artifact_id, &signatures, 1e7);
    }

    let entry = backend.app_conf(artifact_id).expect("computed after run 0");
    println!(
        "\nfinal pre-computed app-level config: executors = {:.0}, memory = {:.0} MiB",
        entry[0], entry[1]
    );
}
