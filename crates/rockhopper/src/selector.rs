//! Candidate selection — Step 2 of the online loop: given the neighborhood `C(e_t)`,
//! pick the configuration to actually run.
//!
//! Selection is pluggable because the paper exercises three variants: the production
//! path (window surrogate with an offline-baseline warm start), the §6.1 accuracy
//! study (Level-X pseudo-surrogates that need an oracle), and a random control.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ml::pseudo::PercentileSelector;
use ml::Regressor;
use optimizers::space::ConfigSpace;
use optimizers::tuner::{History, TuningContext};

use crate::baseline::BaselineModel;
use crate::find_best::{fit_window_model, h_features};

/// Picks one candidate index from a generated candidate set.
pub trait CandidateSelector: std::fmt::Debug {
    /// Choose an index into `candidates` (raw-unit points). `history` carries the
    /// query's own observations; `ctx` the compile-time context of the next run.
    fn select(
        &mut self,
        space: &ConfigSpace,
        candidates: &[Vec<f64>],
        ctx: &TuningContext,
        history: &History,
    ) -> usize;

    /// Export the selector's raw RNG state for bit-exact checkpointing
    /// (the durability layer's recovery contract: a restored selector must
    /// continue the *same* random-fallback stream, not restart it from the
    /// seed). Stateless selectors have nothing to save.
    fn rng_state(&self) -> Option<[u64; 4]> {
        None
    }

    /// Re-inject state exported by [`CandidateSelector::rng_state`].
    /// No-op for stateless selectors.
    fn restore_rng_state(&mut self, _state: [u64; 4]) {}
}

/// The production selector: score candidates with the window model `H` when enough
/// query-specific data exists, fall back to the offline baseline model (warm start,
/// §4.2), and finally to a seeded random pick.
#[derive(Debug)]
pub struct SurrogateSelector {
    /// Window length `N` for the online model.
    pub window: usize,
    /// Offline baseline model, if one was trained.
    pub baseline: Option<BaselineModel>,
    rng: StdRng,
}

impl SurrogateSelector {
    /// Create with window size `n` and an optional baseline model.
    pub fn new(window: usize, baseline: Option<BaselineModel>, seed: u64) -> SurrogateSelector {
        SurrogateSelector {
            window,
            baseline,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CandidateSelector for SurrogateSelector {
    fn select(
        &mut self,
        space: &ConfigSpace,
        candidates: &[Vec<f64>],
        ctx: &TuningContext,
        history: &History,
    ) -> usize {
        assert!(!candidates.is_empty(), "candidate set must be non-empty");
        // Prefer the query's own window model once it can be fit. Scoring a
        // CL centroid's whole sample set is pure (the fitted model is read
        // only), so it fans out over rockpool; the index-ordered reduction in
        // `argmin_by` keeps the pick bit-identical to the serial loop.
        if let Some(h) = fit_window_model(space, history.window(self.window)) {
            return argmin_by(candidates, |c| {
                h.predict(&h_features(space, c, ctx.expected_data_size))
            });
        }
        if let Some(b) = &self.baseline {
            return argmin_by(candidates, |c| {
                b.predict_ms(&ctx.embedding, c, ctx.expected_data_size)
            });
        }
        self.rng.random_range(0..candidates.len())
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.rng.to_state())
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

/// A true-performance oracle: maps a raw candidate point to its noise-free score.
pub(crate) type Oracle = Box<dyn FnMut(&[f64]) -> f64 + Send>;

/// §6.1 pseudo-surrogate: ranks candidates by their *true* performance (supplied by
/// an oracle closure — only experiments can provide one) and picks the one at the
/// `10·X`-th percentile.
pub struct PseudoSelector {
    selector: PercentileSelector,
    oracle: Oracle,
}

impl std::fmt::Debug for PseudoSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PseudoSelector")
            .field("level", &self.selector.level())
            .finish_non_exhaustive()
    }
}

impl PseudoSelector {
    /// Create a Level-`level` pseudo-surrogate backed by a true-performance oracle.
    pub fn new(level: u8, seed: u64, oracle: Oracle) -> PseudoSelector {
        PseudoSelector {
            selector: PercentileSelector::new(level, seed),
            oracle,
        }
    }
}

impl CandidateSelector for PseudoSelector {
    fn select(
        &mut self,
        _space: &ConfigSpace,
        candidates: &[Vec<f64>],
        _ctx: &TuningContext,
        _history: &History,
    ) -> usize {
        assert!(!candidates.is_empty(), "candidate set must be non-empty");
        let scores: Vec<f64> = candidates.iter().map(|c| (self.oracle)(c)).collect();
        self.selector.select(&scores).unwrap_or(0)
    }
}

/// Uniform-random control selector.
#[derive(Debug)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Seeded random selector.
    pub fn new(seed: u64) -> RandomSelector {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CandidateSelector for RandomSelector {
    fn select(
        &mut self,
        _space: &ConfigSpace,
        candidates: &[Vec<f64>],
        _ctx: &TuningContext,
        _history: &History,
    ) -> usize {
        assert!(!candidates.is_empty(), "candidate set must be non-empty");
        self.rng.random_range(0..candidates.len())
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.rng.to_state())
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

fn argmin_by<F: Fn(&Vec<f64>) -> f64 + Sync>(candidates: &[Vec<f64>], score: F) -> usize {
    // Scores are computed per stable candidate index on the ambient pool and
    // reduced in index order, so the winning index matches the serial scan
    // for any RH_THREADS (DESIGN.md §7). Candidates are asserted non-empty by
    // every selector; if every score is NaN the first candidate is as good a
    // pick as any.
    let scores = rockpool::Pool::from_env().map(candidates, |_, c| score(c));
    ml::stats::nan_safe_min_by(&scores, |s| *s).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineRow;

    fn space() -> ConfigSpace {
        ConfigSpace::query_level()
    }

    fn ctx() -> TuningContext {
        TuningContext {
            embedding: vec![1.0, 2.0],
            expected_data_size: 1.0,
            iteration: 0,
        }
    }

    /// A history whose window model says dim-2 ≈ 0.4 is best.
    fn informative_history() -> History {
        let s = space();
        let mut h = History::new();
        for i in 0..15 {
            let x = (i % 8) as f64 / 7.0;
            let mut p = s.default_point();
            p[2] = s.dims[2].denormalize(x);
            h.push(p, 1.0, 100.0 + 500.0 * (x - 0.4) * (x - 0.4));
        }
        h
    }

    fn candidate_sweep() -> Vec<Vec<f64>> {
        let s = space();
        (0..11)
            .map(|i| {
                let mut p = s.default_point();
                p[2] = s.dims[2].denormalize(i as f64 / 10.0);
                p
            })
            .collect()
    }

    #[test]
    fn surrogate_uses_window_model_when_available() {
        let s = space();
        let mut sel = SurrogateSelector::new(20, None, 1);
        let idx = sel.select(&s, &candidate_sweep(), &ctx(), &informative_history());
        let x = s.dims[2].normalize(candidate_sweep()[idx][2]);
        assert!((x - 0.4).abs() <= 0.15, "picked x = {x}");
    }

    #[test]
    fn surrogate_falls_back_to_baseline_with_no_history() {
        let s = space();
        // Baseline says: big dim-2 values are slow.
        let rows: Vec<BaselineRow> = (0..80)
            .map(|i| {
                let x = (i % 10) as f64 / 9.0;
                let mut p = s.default_point();
                p[2] = s.dims[2].denormalize(x);
                BaselineRow {
                    embedding: vec![1.0, 2.0],
                    point: p,
                    data_size: 1.0,
                    elapsed_ms: 100.0 + 900.0 * x,
                }
            })
            .collect();
        let baseline = BaselineModel::train(&s, &rows, 1).unwrap();
        let mut sel = SurrogateSelector::new(20, Some(baseline), 1);
        let idx = sel.select(&s, &candidate_sweep(), &ctx(), &History::new());
        let x = s.dims[2].normalize(candidate_sweep()[idx][2]);
        assert!(
            x < 0.35,
            "warm start should pick a low-x candidate, got {x}"
        );
    }

    #[test]
    fn surrogate_random_when_nothing_known() {
        let s = space();
        let mut sel = SurrogateSelector::new(20, None, 3);
        let cands = candidate_sweep();
        let picks: std::collections::HashSet<usize> = (0..20)
            .map(|_| sel.select(&s, &cands, &ctx(), &History::new()))
            .collect();
        assert!(picks.len() > 3, "random fallback should vary: {picks:?}");
    }

    #[test]
    fn pseudo_selector_level_one_is_near_oracle_best() {
        let s = space();
        // Oracle: best at x = 0.7.
        let mut sel = PseudoSelector::new(
            1,
            5,
            Box::new(move |c: &[f64]| {
                let x = ConfigSpace::query_level().dims[2].normalize(c[2]);
                (x - 0.7) * (x - 0.7)
            }),
        );
        let cands = candidate_sweep();
        let idx = sel.select(&s, &cands, &ctx(), &History::new());
        let x = s.dims[2].normalize(cands[idx][2]);
        assert!((x - 0.7).abs() <= 0.21, "level 1 picked {x}");
    }

    #[test]
    fn pseudo_selector_level_nine_is_far_from_best() {
        let s = space();
        let mut sel = PseudoSelector::new(
            9,
            5,
            Box::new(move |c: &[f64]| {
                let x = ConfigSpace::query_level().dims[2].normalize(c[2]);
                (x - 0.7) * (x - 0.7)
            }),
        );
        let cands = candidate_sweep();
        let idx = sel.select(&s, &cands, &ctx(), &History::new());
        let x = s.dims[2].normalize(cands[idx][2]);
        assert!((x - 0.7).abs() >= 0.25, "level 9 picked {x}");
    }

    #[test]
    fn random_selector_is_uniformish() {
        let s = space();
        let mut sel = RandomSelector::new(0);
        let cands = candidate_sweep();
        let picks: std::collections::HashSet<usize> = (0..50)
            .map(|_| sel.select(&s, &cands, &ctx(), &History::new()))
            .collect();
        assert!(picks.len() >= 8);
    }
}
