//! FLOW2 (Wu, Wang & Huang, AAAI'21) — FLAML's frugal randomized direct search, the
//! paper's second baseline (Figure 2b).
//!
//! At each round FLOW2 samples a random unit direction `u` and proposes
//! `x + δ·u`; on failure it tries the mirror `x − δ·u`. Improvements move the
//! incumbent; after `2^(d−1)` consecutive no-improvement rounds the step size shrinks.
//! Because accept/reject decisions compare *two raw observations*, heavy noise makes
//! it accept regressions and reject true improvements — the failure mode the Centroid
//! Learning algorithm is built to avoid.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Evaluate the incumbent first (to have a comparison value).
    EvalIncumbent,
    /// Proposed `x + δu`, awaiting its observation.
    TriedPlus,
    /// Proposed `x − δu`, awaiting its observation.
    TriedMinus,
}

/// FLOW2 direct search in normalized space.
#[derive(Debug)]
pub struct Flow2 {
    space: ConfigSpace,
    rng: StdRng,
    /// Current step size in normalized units.
    pub step: f64,
    /// Lower bound on the step size (convergence threshold).
    pub step_lower: f64,
    incumbent: Vec<f64>, // normalized
    incumbent_cost: Option<f64>,
    direction: Vec<f64>,
    phase: Phase,
    no_improve: u32,
    /// Rounds without improvement before the step halves (`2^(d−1)` per the paper).
    shrink_after: u32,
    /// Recorded observations.
    pub history: History,
}

impl Flow2 {
    /// Start from the space's default configuration with step 0.1.
    pub fn new(space: ConfigSpace, seed: u64) -> Flow2 {
        let incumbent = space.normalize(&space.default_point());
        let d = u32::try_from(space.len()).unwrap_or(u32::MAX);
        Flow2 {
            space,
            rng: StdRng::seed_from_u64(seed),
            step: 0.1,
            step_lower: 1e-3,
            incumbent,
            incumbent_cost: None,
            direction: Vec::new(),
            phase: Phase::EvalIncumbent,
            no_improve: 0,
            shrink_after: 1u32 << d.saturating_sub(1),
            history: History::new(),
        }
    }

    /// Start from a specific raw point.
    // rhlint:allow(dead-pub): constructor kept for warm-start experiments
    pub fn from_point(space: ConfigSpace, start: &[f64], seed: u64) -> Flow2 {
        let mut f = Flow2::new(space, seed);
        f.incumbent = f.space.normalize(start);
        f
    }

    /// Current incumbent, raw units.
    pub fn incumbent(&self) -> Vec<f64> {
        self.space.denormalize(&self.incumbent)
    }

    fn sample_direction(&mut self) -> Vec<f64> {
        // Random point on the unit sphere via normalized Gaussian.
        loop {
            let v: Vec<f64> = (0..self.space.len())
                .map(|_| ml::stats::standard_normal(&mut self.rng))
                .collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-9 {
                return v.into_iter().map(|x| x / norm).collect();
            }
        }
    }

    fn proposal(&self, sign: f64) -> Vec<f64> {
        let x: Vec<f64> = self
            .incumbent
            .iter()
            .zip(&self.direction)
            .map(|(xi, di)| (xi + sign * self.step * di).clamp(0.0, 1.0))
            .collect();
        self.space.denormalize(&x)
    }
}

impl Tuner for Flow2 {
    fn suggest(&mut self, _ctx: &TuningContext) -> Vec<f64> {
        match self.phase {
            Phase::EvalIncumbent => self.space.denormalize(&self.incumbent),
            Phase::TriedPlus => self.proposal(1.0),
            Phase::TriedMinus => self.proposal(-1.0),
        }
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
        let cost = outcome.elapsed_ms;
        match self.phase {
            Phase::EvalIncumbent => {
                self.incumbent_cost = Some(cost);
                self.direction = self.sample_direction();
                self.phase = Phase::TriedPlus;
            }
            Phase::TriedPlus => {
                if cost < self.incumbent_cost.unwrap_or(f64::INFINITY) {
                    self.incumbent = self.space.normalize(point);
                    self.incumbent_cost = Some(cost);
                    self.no_improve = 0;
                    self.direction = self.sample_direction();
                    // Stay in TriedPlus: next proposal explores from the new point.
                } else {
                    self.phase = Phase::TriedMinus;
                }
            }
            Phase::TriedMinus => {
                if cost < self.incumbent_cost.unwrap_or(f64::INFINITY) {
                    self.incumbent = self.space.normalize(point);
                    self.incumbent_cost = Some(cost);
                    self.no_improve = 0;
                } else {
                    self.no_improve += 1;
                    if self.no_improve >= self.shrink_after {
                        self.step = (self.step * 0.5).max(self.step_lower);
                        self.no_improve = 0;
                    }
                }
                self.direction = self.sample_direction();
                self.phase = Phase::TriedPlus;
            }
        }
    }

    fn name(&self) -> &'static str {
        "flow2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Environment, SyntheticEnv};
    use sparksim::noise::NoiseSpec;
    use workloads::dynamic::DataSchedule;

    fn drive(noise: NoiseSpec, iters: usize, seed: u64) -> f64 {
        let mut env = SyntheticEnv::new(noise, DataSchedule::Constant { size: 1.0 }, seed);
        let mut f = Flow2::new(env.space().clone(), seed);
        for _ in 0..iters {
            let p = f.suggest(&env.context());
            let o = env.run(&p);
            f.observe(&p, &o);
        }
        let inc = f.incumbent();
        env.f.normed_performance(&[inc[0], inc[1], inc[2]], 1.0)
    }

    #[test]
    fn converges_without_noise() {
        let final_perf: f64 = (0..5)
            .map(|s| drive(NoiseSpec::none(), 150, s))
            .sum::<f64>()
            / 5.0;
        assert!(
            final_perf < 1.15,
            "noiseless FLOW2 should converge: {final_perf}"
        );
    }

    #[test]
    fn noise_degrades_convergence() {
        let clean: f64 = (0..5)
            .map(|s| drive(NoiseSpec::none(), 100, s))
            .sum::<f64>()
            / 5.0;
        let noisy: f64 = (0..5)
            .map(|s| drive(NoiseSpec::high(), 100, s))
            .sum::<f64>()
            / 5.0;
        assert!(noisy > clean, "clean {clean} vs noisy {noisy}");
    }

    #[test]
    fn first_suggestion_is_the_start_point() {
        let space = ConfigSpace::query_level();
        let mut f = Flow2::new(space.clone(), 0);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let p = f.suggest(&ctx);
        let d = space.default_point();
        for (a, b) in p.iter().zip(&d) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn step_shrinks_after_repeated_failures() {
        let space = ConfigSpace::query_level();
        let mut f = Flow2::new(space.clone(), 0);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let initial_step = f.step;
        // Incumbent is perfect (cost 0); everything else fails.
        for i in 0..40 {
            let p = f.suggest(&ctx);
            let cost = if i == 0 { 0.0 } else { 100.0 };
            f.observe(
                &p,
                &Outcome {
                    elapsed_ms: cost,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(f.step < initial_step, "step {} never shrank", f.step);
    }

    #[test]
    fn improvements_move_the_incumbent() {
        let space = ConfigSpace::query_level();
        let mut f = Flow2::new(space.clone(), 1);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let start = f.incumbent();
        // Strictly decreasing costs: every proposal is an improvement.
        for i in 0..10 {
            let p = f.suggest(&ctx);
            f.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0 - i as f64,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert_ne!(f.incumbent(), start);
    }
}
