//! A tolerant recursive-descent parser for the Rust subset the workspace uses.
//!
//! Produces a per-file AST of items (functions, structs, enums, impls, traits,
//! modules, uses, consts, type aliases) and expressions (calls, method chains,
//! casts, matches, struct literals, closures, control flow). The parser never
//! panics and never fails a file outright: an unparseable statement degrades to
//! [`Expr::Opaque`] and item-level noise is skipped token by token, so the
//! semantic passes see as much structure as can be recovered.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed source file.
#[derive(Clone, Debug, Default)]
pub struct SourceFile {
    pub items: Vec<Item>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    Private,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)`.
    Crate,
    Pub,
}

#[derive(Clone, Debug)]
pub struct Item {
    pub name: String,
    pub vis: Vis,
    pub line: u32,
    /// Inside a `#[cfg(test)]` item or module.
    pub cfg_test: bool,
    /// Doc-comment lines attached to the item.
    pub docs: Vec<String>,
    pub kind: ItemKind,
}

#[derive(Clone, Debug)]
pub enum ItemKind {
    Fn(FnItem),
    Struct {
        fields: Vec<Field>,
    },
    Enum {
        variants: Vec<Variant>,
    },
    Impl(ImplItem),
    Trait {
        items: Vec<Item>,
    },
    Mod {
        inline: Option<Vec<Item>>,
    },
    Use {
        bindings: Vec<UseBinding>,
    },
    Const {
        ty: Type,
        init: Option<Expr>,
    },
    Static {
        ty: Type,
        init: Option<Expr>,
    },
    TypeAlias {
        target: Type,
    },
    /// `macro_rules!`, `extern` blocks, attribute noise — structure not needed.
    Other,
}

#[derive(Clone, Debug)]
pub struct FnItem {
    pub has_self: bool,
    /// `(name, type)` for named, typed parameters (patterns keep `""`).
    pub params: Vec<(String, Type)>,
    pub ret: Option<Type>,
    pub body: Option<Block>,
}

#[derive(Clone, Debug)]
pub struct ImplItem {
    /// The implementing type's head name (`SparkConf` for `impl SparkConf`).
    pub self_ty: String,
    /// `Some(trait path text)` for `impl Trait for Type`.
    pub trait_: Option<String>,
    pub items: Vec<Item>,
}

#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub ty: Type,
    pub line: u32,
    pub docs: Vec<String>,
    pub vis: Vis,
}

#[derive(Clone, Debug)]
pub struct Variant {
    pub name: String,
    pub line: u32,
    pub docs: Vec<String>,
}

/// `use a::b::{c, d as e}` flattens to one binding per leaf; glob imports get
/// alias `"*"`.
#[derive(Clone, Debug)]
pub struct UseBinding {
    pub path: Vec<String>,
    pub alias: String,
    pub is_pub: bool,
}

/// A type, reduced to its rendered text and head path (`std::collections::
/// HashMap<K, V>` → head `["std", "collections", "HashMap"]`). References,
/// `mut`, and lifetimes are stripped from the head.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Type {
    pub text: String,
    pub head: Vec<String>,
}

impl Type {
    pub fn head_name(&self) -> &str {
        self.head.last().map(String::as_str).unwrap_or("")
    }
}

#[derive(Clone, Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

#[derive(Clone, Debug)]
pub enum Stmt {
    Let {
        /// Bound name when the pattern is a plain (possibly `mut`) identifier.
        name: Option<String>,
        ty: Option<Type>,
        init: Option<Expr>,
        /// `let _ = ...` — an explicit discard.
        underscore: bool,
        line: u32,
    },
    /// Expression statement; `semi` records whether it was `;`-terminated
    /// (a `;`-terminated call is a discarded value, a tail call is returned).
    Expr {
        expr: Expr,
        semi: bool,
    },
    Item(Item),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LitKind {
    Int,
    Float,
    Str,
    Char,
    Bool,
}

#[derive(Clone, Debug)]
pub struct Arm {
    /// All path-like sequences in the pattern (`Knob::One | Knob::Two` →
    /// `[["Knob","One"], ["Knob","Two"]]`).
    pub pat_paths: Vec<Vec<String>>,
    /// `_` wildcard pattern.
    pub wildcard: bool,
    pub guard: Option<Box<Expr>>,
    pub body: Box<Expr>,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub enum Expr {
    Path {
        segs: Vec<String>,
        line: u32,
    },
    Lit {
        kind: LitKind,
        text: String,
        line: u32,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    Cast {
        expr: Box<Expr>,
        ty: Type,
        line: u32,
    },
    Unary {
        op: char,
        expr: Box<Expr>,
        line: u32,
    },
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `expr?`.
    Try {
        expr: Box<Expr>,
        line: u32,
    },
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        line: u32,
    },
    MacroCall {
        path: Vec<String>,
        args: Vec<Expr>,
        line: u32,
    },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
        line: u32,
    },
    If {
        cond: Box<Expr>,
        then: Block,
        else_: Option<Box<Expr>>,
        line: u32,
    },
    Loop {
        body: Block,
        line: u32,
    },
    While {
        cond: Box<Expr>,
        body: Block,
        line: u32,
    },
    For {
        iter: Box<Expr>,
        body: Block,
        line: u32,
    },
    Closure {
        body: Box<Expr>,
        line: u32,
    },
    Block {
        block: Block,
        line: u32,
    },
    Ref {
        expr: Box<Expr>,
        line: u32,
    },
    Tuple {
        elems: Vec<Expr>,
        line: u32,
    },
    Array {
        elems: Vec<Expr>,
        line: u32,
    },
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
        line: u32,
    },
    Return {
        expr: Option<Box<Expr>>,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    /// Recovered parse failure — contents unknown.
    Opaque {
        line: u32,
    },
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Try { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Match { line, .. }
            | Expr::If { line, .. }
            | Expr::Loop { line, .. }
            | Expr::While { line, .. }
            | Expr::For { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Block { line, .. }
            | Expr::Ref { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Range { line, .. }
            | Expr::Return { line, .. }
            | Expr::Break { line }
            | Expr::Continue { line }
            | Expr::Opaque { line } => *line,
        }
    }
}

/// Parse a whole file. Infallible by construction.
pub fn parse_file(text: &str) -> SourceFile {
    let toks = lex(text);
    let mut p = Parser { toks: &toks, i: 0 };
    SourceFile {
        items: p.items_until_end(false),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, ahead: usize) -> Option<&Tok> {
        self.toks.get(self.i + ahead)
    }

    fn line(&self) -> u32 {
        self.peek()
            .map(|t| t.line)
            .unwrap_or_else(|| self.toks.last().map(|t| t.line).unwrap_or(1))
    }

    fn eat(&mut self, punct: &str) -> bool {
        if self.peek().map(|t| t.is(punct)).unwrap_or(false) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_ident(kw)).unwrap_or(false) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn at(&self, punct: &str) -> bool {
        self.peek().map(|t| t.is(punct)).unwrap_or(false)
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_ident(kw)).unwrap_or(false)
    }

    fn ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let text = t.text.clone();
                self.i += 1;
                Some(text)
            }
            _ => None,
        }
    }

    /// Skip one balanced group starting at the current open delimiter; returns
    /// the token range of the *inner* tokens. `>` groups track angle depth.
    fn skip_balanced(&mut self) -> (usize, usize) {
        let open = match self.peek() {
            Some(t) if t.kind == TokKind::Punct => t.text.clone(),
            _ => return (self.i, self.i),
        };
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            "<" => ">",
            _ => return (self.i, self.i),
        };
        self.i += 1;
        let start = self.i;
        let mut depth = 1i64;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                // Angle groups must also balance the bracket kinds nested in
                // them (`Vec<[f64; 3]>`); bracket groups ignore angles (`a < b`).
                if t.text == open || (open == "<" && matches!(t.text.as_str(), "(" | "[" | "{")) {
                    if t.text == open {
                        depth += 1;
                    } else {
                        // Nested non-angle group inside angles: skip it whole.
                        self.skip_balanced();
                        continue;
                    }
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        let end = self.i;
                        self.i += 1;
                        return (start, end);
                    }
                }
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Skip a `<...>` generic parameter/argument group if one starts here.
    fn skip_generics(&mut self) {
        if self.at("<") {
            self.skip_balanced();
        }
    }

    // ---- attributes ----

    /// Consume leading `#[...]` / `#![...]` attributes and doc comments.
    /// Returns `(docs, is_cfg_test)`.
    fn attrs(&mut self) -> (Vec<String>, bool) {
        let mut docs = Vec::new();
        let mut cfg_test = false;
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Doc => {
                    docs.push(t.text.clone());
                    self.i += 1;
                }
                Some(t) if t.is("#") => {
                    self.i += 1;
                    self.eat("!");
                    if self.at("[") {
                        let (start, end) = self.skip_balanced();
                        let inner =
                            &self.toks[start.min(self.toks.len())..end.min(self.toks.len())];
                        let has = |name: &str| inner.iter().any(|t| t.is_ident(name));
                        if has("cfg") && has("test") {
                            cfg_test = true;
                        }
                    }
                }
                _ => break,
            }
        }
        (docs, cfg_test)
    }

    // ---- items ----

    fn items_until_end(&mut self, inside_braces: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if inside_braces && self.at("}") {
                break;
            }
            if self.peek().is_none() {
                break;
            }
            let before = self.i;
            if let Some(item) = self.item() {
                items.push(item);
            }
            if self.i == before {
                // No progress: skip the offending token (or whole group).
                if self.at("(") || self.at("[") || self.at("{") {
                    self.skip_balanced();
                } else {
                    self.i += 1;
                }
            }
        }
        items
    }

    fn item(&mut self) -> Option<Item> {
        let (docs, mut cfg_test) = self.attrs();
        let line = self.line();
        let vis = self.visibility();

        // Modifier keywords before the item keyword.
        loop {
            if self.at_kw("const") && self.peek_at(1).map(|t| t.is_ident("fn")).unwrap_or(false) {
                self.i += 1; // `const fn`
                continue;
            }
            if self.at_kw("async") || self.at_kw("unsafe") {
                self.i += 1;
                continue;
            }
            if self.at_kw("extern")
                && self
                    .peek_at(1)
                    .map(|t| t.kind == TokKind::Str)
                    .unwrap_or(false)
                && self.peek_at(2).map(|t| t.is_ident("fn")).unwrap_or(false)
            {
                self.i += 2; // `extern "C" fn`
                continue;
            }
            break;
        }

        if self.eat_kw("fn") {
            let name = self.ident().unwrap_or_default();
            let f = self.fn_rest();
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Fn(f),
            });
        }
        if self.eat_kw("struct") {
            let name = self.ident().unwrap_or_default();
            self.skip_generics();
            let mut fields = Vec::new();
            if self.at("(") {
                self.skip_balanced(); // tuple struct
                self.skip_where();
                self.eat(";");
            } else if self.at("{") {
                self.i += 1;
                fields = self.fields_until_close();
            } else {
                self.skip_where();
                if self.at("{") {
                    self.i += 1;
                    fields = self.fields_until_close();
                } else {
                    self.eat(";");
                }
            }
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Struct { fields },
            });
        }
        if self.eat_kw("enum") {
            let name = self.ident().unwrap_or_default();
            self.skip_generics();
            self.skip_where();
            let mut variants = Vec::new();
            if self.eat("{") {
                loop {
                    if self.eat("}") || self.peek().is_none() {
                        break;
                    }
                    let (vdocs, _) = self.attrs();
                    let vline = self.line();
                    if let Some(vname) = self.ident() {
                        variants.push(Variant {
                            name: vname,
                            line: vline,
                            docs: vdocs,
                        });
                        if self.at("(") || self.at("{") {
                            self.skip_balanced(); // payload
                        }
                        if self.eat("=") {
                            // discriminant — consume one expression
                            let _ = self.expr(true);
                        }
                        self.eat(",");
                    } else if !self.eat(",") {
                        self.i += 1; // recovery
                    }
                }
            }
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Enum { variants },
            });
        }
        if self.eat_kw("impl") {
            self.skip_generics();
            let first = self.type_until(&["for", "{", "where"]);
            let (trait_, self_ty) = if self.eat_kw("for") {
                let t = self.type_until(&["{", "where"]);
                (Some(first.text.clone()), t)
            } else {
                (None, first)
            };
            self.skip_where();
            let mut items = Vec::new();
            if self.eat("{") {
                items = self.items_until_end(true);
                self.eat("}");
            }
            return Some(Item {
                name: self_ty.head_name().to_string(),
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Impl(ImplItem {
                    self_ty: self_ty.head_name().to_string(),
                    trait_,
                    items,
                }),
            });
        }
        if self.eat_kw("trait") {
            let name = self.ident().unwrap_or_default();
            self.skip_generics();
            // supertrait bounds
            if self.eat(":") {
                while let Some(t) = self.peek() {
                    if t.is("{") || t.is_ident("where") {
                        break;
                    }
                    if t.is("(") || t.is("[") || t.is("<") {
                        self.skip_balanced();
                    } else {
                        self.i += 1;
                    }
                }
            }
            self.skip_where();
            let mut items = Vec::new();
            if self.eat("{") {
                items = self.items_until_end(true);
                self.eat("}");
            }
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Trait { items },
            });
        }
        if self.eat_kw("mod") {
            let name = self.ident().unwrap_or_default();
            if self.eat(";") {
                return Some(Item {
                    name,
                    vis,
                    line,
                    cfg_test,
                    docs,
                    kind: ItemKind::Mod { inline: None },
                });
            }
            let mut inner = Vec::new();
            if self.eat("{") {
                inner = self.items_until_end(true);
                self.eat("}");
            }
            if cfg_test {
                fn mark(items: &mut [Item]) {
                    for it in items {
                        it.cfg_test = true;
                        match &mut it.kind {
                            ItemKind::Mod { inline: Some(sub) } => mark(sub),
                            ItemKind::Impl(imp) => mark(&mut imp.items),
                            ItemKind::Trait { items } => mark(items),
                            _ => {}
                        }
                    }
                }
                mark(&mut inner);
            }
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Mod {
                    inline: Some(inner),
                },
            });
        }
        if self.eat_kw("use") {
            let mut bindings = Vec::new();
            self.use_tree(Vec::new(), &mut bindings, vis == Vis::Pub);
            self.eat(";");
            return Some(Item {
                name: String::new(),
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Use { bindings },
            });
        }
        if self.at_kw("const") || self.at_kw("static") {
            let is_const = self.at_kw("const");
            self.i += 1;
            self.eat_kw("mut");
            let name = self.ident().unwrap_or_default();
            let ty = if self.eat(":") {
                self.type_until(&["=", ";"])
            } else {
                Type::default()
            };
            let init = if self.eat("=") { self.expr(true) } else { None };
            self.eat(";");
            let kind = if is_const {
                ItemKind::Const { ty, init }
            } else {
                ItemKind::Static { ty, init }
            };
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind,
            });
        }
        if self.eat_kw("type") {
            let name = self.ident().unwrap_or_default();
            self.skip_generics();
            let target = if self.eat("=") {
                self.type_until(&[";"])
            } else {
                Type::default()
            };
            self.eat(";");
            return Some(Item {
                name,
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::TypeAlias { target },
            });
        }
        if self.at_kw("extern") || self.at_kw("macro_rules") {
            // `extern crate x;` / extern block / macro definition: skip whole.
            while let Some(t) = self.peek() {
                if t.is(";") {
                    self.i += 1;
                    break;
                }
                if t.is("{") {
                    self.skip_balanced();
                    break;
                }
                self.i += 1;
            }
            return Some(Item {
                name: String::new(),
                vis,
                line,
                cfg_test,
                docs,
                kind: ItemKind::Other,
            });
        }
        // Item-level macro invocation `foo!{...}` / `foo!(...);`
        if self
            .peek()
            .map(|t| t.kind == TokKind::Ident)
            .unwrap_or(false)
            && self.peek_at(1).map(|t| t.is("!")).unwrap_or(false)
        {
            self.i += 2;
            if self.at("(") || self.at("[") || self.at("{") {
                self.skip_balanced();
            }
            self.eat(";");
            return Some(Item {
                name: String::new(),
                vis,
                line,
                cfg_test: {
                    cfg_test |= false;
                    cfg_test
                },
                docs,
                kind: ItemKind::Other,
            });
        }
        None
    }

    fn visibility(&mut self) -> Vis {
        if self.eat_kw("pub") {
            if self.at("(") {
                self.skip_balanced();
                Vis::Crate
            } else {
                Vis::Pub
            }
        } else {
            Vis::Private
        }
    }

    fn skip_where(&mut self) {
        if self.at_kw("where") {
            while let Some(t) = self.peek() {
                if t.is("{") || t.is(";") {
                    break;
                }
                if t.is("(") || t.is("[") || t.is("<") {
                    self.skip_balanced();
                } else {
                    self.i += 1;
                }
            }
        }
    }

    fn fields_until_close(&mut self) -> Vec<Field> {
        let mut fields = Vec::new();
        loop {
            if self.eat("}") || self.peek().is_none() {
                break;
            }
            let (docs, _) = self.attrs();
            let line = self.line();
            let vis = self.visibility();
            if let Some(name) = self.ident() {
                if self.eat(":") {
                    let ty = self.type_until(&[",", "}"]);
                    fields.push(Field {
                        name,
                        ty,
                        line,
                        docs,
                        vis,
                    });
                }
                self.eat(",");
            } else if !self.eat(",") {
                self.i += 1; // recovery
            }
        }
        fields
    }

    fn use_tree(&mut self, prefix: Vec<String>, out: &mut Vec<UseBinding>, is_pub: bool) {
        let mut path = prefix;
        loop {
            if self.at("{") {
                self.i += 1;
                loop {
                    if self.eat("}") || self.peek().is_none() {
                        break;
                    }
                    self.use_tree(path.clone(), out, is_pub);
                    self.eat(",");
                }
                return;
            }
            if self.at("*") {
                self.i += 1;
                out.push(UseBinding {
                    path,
                    alias: "*".into(),
                    is_pub,
                });
                return;
            }
            let Some(seg) = self.ident() else {
                return;
            };
            path.push(seg);
            if self.eat("::") {
                continue;
            }
            let alias = if self.eat_kw("as") {
                self.ident().unwrap_or_else(|| "_".into())
            } else {
                path.last().cloned().unwrap_or_default()
            };
            out.push(UseBinding {
                path,
                alias,
                is_pub,
            });
            return;
        }
    }

    fn fn_rest(&mut self) -> FnItem {
        self.skip_generics();
        let mut has_self = false;
        let mut params = Vec::new();
        if self.at("(") {
            let (start, end) = self.skip_balanced();
            let inner: Vec<Tok> =
                self.toks[start.min(self.toks.len())..end.min(self.toks.len())].to_vec();
            let mut q = Parser { toks: &inner, i: 0 };
            loop {
                if q.peek().is_none() {
                    break;
                }
                let (_, _) = q.attrs();
                // `self` receiver forms: self / &self / &mut self / mut self
                let save = q.i;
                while q.at("&")
                    || q.at_kw("mut")
                    || q.peek()
                        .map(|t| t.kind == TokKind::Lifetime)
                        .unwrap_or(false)
                {
                    q.i += 1;
                }
                if q.eat_kw("self") {
                    has_self = true;
                    if q.eat(":") {
                        let _ = q.type_until(&[","]);
                    }
                    q.eat(",");
                    continue;
                }
                q.i = save;
                // pattern tokens until `:` at depth 0
                let mut name = None;
                q.eat_kw("mut");
                if q.peek().map(|t| t.kind == TokKind::Ident).unwrap_or(false)
                    && q.peek_at(1).map(|t| t.is(":")).unwrap_or(false)
                {
                    name = q.ident();
                } else {
                    // complex pattern: skip to `:`
                    while let Some(t) = q.peek() {
                        if t.is(":") {
                            break;
                        }
                        if t.is("(") || t.is("[") || t.is("{") {
                            q.skip_balanced();
                        } else {
                            q.i += 1;
                        }
                    }
                }
                if q.eat(":") {
                    let ty = q.type_until(&[","]);
                    params.push((name.unwrap_or_default(), ty));
                }
                if !q.eat(",") && q.peek().is_some() && q.i == save {
                    q.i += 1;
                }
            }
        }
        let ret = if self.eat("->") {
            Some(self.type_until(&["{", ";", "where"]))
        } else {
            None
        };
        self.skip_where();
        let body = if self.at("{") {
            Some(self.block())
        } else {
            self.eat(";");
            None
        };
        FnItem {
            has_self,
            params,
            ret,
            body,
        }
    }

    // ---- types ----

    /// Parse a type: consume tokens (balancing groups) until one of `stops`
    /// appears at depth 0. Stop tokens are punct text or the keywords
    /// `for`/`where`. The head path is extracted from the leading segments.
    fn type_until(&mut self, stops: &[&str]) -> Type {
        let mut text = String::new();
        let mut head: Vec<String> = Vec::new();
        let mut head_open = true;
        let mut angle_depth = 0i64;
        loop {
            let Some(t) = self.peek() else { break };
            let is_stop = stops.iter().any(|s| {
                (t.kind == TokKind::Punct && t.text == *s)
                    || (t.kind == TokKind::Ident && t.text == *s)
            });
            if is_stop && angle_depth == 0 {
                break;
            }
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "<" => {
                        angle_depth += 1;
                        head_open = false;
                        text.push('<');
                        self.i += 1;
                    }
                    ">" => {
                        if angle_depth == 0 {
                            break;
                        }
                        angle_depth -= 1;
                        text.push('>');
                        self.i += 1;
                    }
                    "(" | "[" => {
                        let open = t.text.clone();
                        let (s, e) = self.skip_balanced();
                        text.push_str(&open);
                        for tok in &self.toks[s.min(self.toks.len())..e.min(self.toks.len())] {
                            text.push_str(&tok.text);
                            text.push(' ');
                        }
                        text.push_str(if open == "(" { ")" } else { "]" });
                        head_open = false;
                    }
                    "::" => {
                        text.push_str("::");
                        self.i += 1;
                    }
                    "&" | "*" => {
                        text.push_str(&t.text);
                        self.i += 1;
                    }
                    "+" | "'" | "," | "=" => {
                        // `dyn A + Send`, stray commas inside angle depth.
                        if angle_depth == 0 && (t.text == "," || t.text == "=") {
                            break;
                        }
                        text.push_str(&t.text);
                        head_open = false;
                        self.i += 1;
                    }
                    _ => break,
                },
                TokKind::Ident => {
                    let word = t.text.clone();
                    self.i += 1;
                    match word.as_str() {
                        "mut" | "dyn" | "impl" | "const" => {
                            text.push_str(&word);
                            text.push(' ');
                        }
                        _ => {
                            text.push_str(&word);
                            if head_open && angle_depth == 0 {
                                head.push(word);
                                // Only continue the head through `::`.
                                if !self.at("::") {
                                    head_open = false;
                                }
                            }
                        }
                    }
                }
                TokKind::Lifetime => {
                    text.push_str(&t.text);
                    text.push(' ');
                    self.i += 1;
                }
                TokKind::Int => {
                    // array length `[f64; 3]` handled in bracket group; a bare
                    // int here is const-generic-ish — keep text.
                    text.push_str(&t.text);
                    self.i += 1;
                }
                _ => break,
            }
        }
        Type { text, head }
    }

    // ---- expressions ----

    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat("{") {
            return Block { stmts };
        }
        loop {
            if self.eat("}") || self.peek().is_none() {
                break;
            }
            if self.eat(";") {
                continue;
            }
            let before = self.i;
            if let Some(stmt) = self.stmt() {
                stmts.push(stmt);
            }
            if self.i == before {
                // recovery: skip one token or group
                if self.at("(") || self.at("[") || self.at("{") {
                    self.skip_balanced();
                } else {
                    self.i += 1;
                }
            }
        }
        Block { stmts }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        // Items allowed in statement position.
        if self.at_kw("fn")
            || self.at_kw("struct")
            || self.at_kw("enum")
            || self.at_kw("impl")
            || self.at_kw("trait")
            || self.at_kw("mod")
            || self.at_kw("use")
            || self.at_kw("type")
            || (self.at_kw("const") && !self.peek_at(1).map(|t| t.is("{")).unwrap_or(false))
            || self.at_kw("static")
            || self.at("#")
        {
            // `let` handled below; `const { }` blocks are expressions.
            if !self.at_kw("let") {
                if let Some(item) = self.item() {
                    return Some(Stmt::Item(item));
                }
            }
        }

        if self.at_kw("let") {
            let line = self.line();
            self.i += 1;
            // pattern
            let mut name = None;
            let mut underscore = false;
            self.eat_kw("mut");
            if self.at_kw("_") {
                underscore = true;
                self.i += 1;
            } else if self
                .peek()
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
                && self
                    .peek_at(1)
                    .map(|t| t.is(":") || t.is("=") || t.is(";"))
                    .unwrap_or(false)
            {
                name = self.ident();
            } else {
                // complex pattern (tuple, struct, ref): skip to `:`/`=`/`;`
                while let Some(t) = self.peek() {
                    if t.is(":") || t.is("=") || t.is(";") {
                        break;
                    }
                    if t.is("(") || t.is("[") || t.is("{") || t.is("<") {
                        self.skip_balanced();
                    } else {
                        self.i += 1;
                    }
                }
            }
            let ty = if self.eat(":") {
                Some(self.type_until(&["=", ";"]))
            } else {
                None
            };
            let init = if self.eat("=") { self.expr(true) } else { None };
            // `let ... else { ... }`
            if self.at_kw("else") {
                self.i += 1;
                if self.at("{") {
                    self.block();
                }
            }
            self.eat(";");
            return Some(Stmt::Let {
                name,
                ty,
                init,
                underscore,
                line,
            });
        }

        let expr = self.expr(true)?;
        let semi = self.eat(";");
        Some(Stmt::Expr { expr, semi })
    }

    fn expr(&mut self, allow_struct: bool) -> Option<Expr> {
        self.assign_expr(allow_struct)
    }

    fn assign_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let lhs = self.range_expr(allow_struct)?;
        if let Some(t) = self.peek() {
            let op = t.text.clone();
            if t.kind == TokKind::Punct
                && matches!(
                    op.as_str(),
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<="
                )
            {
                let line = t.line;
                self.i += 1;
                // `>>=` arrives as `>` `>` `=` — not handled; assignments by
                // shift-right are absent from this workspace.
                let rhs = self
                    .assign_expr(allow_struct)
                    .unwrap_or(Expr::Opaque { line });
                return Some(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                });
            }
        }
        Some(lhs)
    }

    fn range_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        if self.at("..") || self.at("..=") {
            let line = self.line();
            self.i += 1;
            let hi = self.or_expr(allow_struct).map(Box::new);
            return Some(Expr::Range { lo: None, hi, line });
        }
        let lo = self.or_expr(allow_struct)?;
        if self.at("..") || self.at("..=") {
            let line = self.line();
            self.i += 1;
            let at_end = self.peek().map(|t| {
                t.is(")") || t.is("]") || t.is("}") || t.is(",") || t.is(";") || t.is("{")
            });
            let hi = if at_end.unwrap_or(true) {
                None
            } else {
                self.or_expr(allow_struct).map(Box::new)
            };
            return Some(Expr::Range {
                lo: Some(Box::new(lo)),
                hi,
                line,
            });
        }
        Some(lo)
    }

    fn or_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        self.binary_level(allow_struct, 0)
    }

    /// Binary operators by precedence level (loosest first).
    fn binary_level(&mut self, allow_struct: bool, level: usize) -> Option<Expr> {
        const LEVELS: [&[&str]; 7] = [
            &["||"],
            &["&&"],
            &["==", "!=", "<", ">", "<=", ">="],
            &["|"],
            &["^"],
            &["&"],
            &["<<"],
        ];
        if level >= LEVELS.len() {
            return self.add_expr(allow_struct);
        }
        let mut lhs = self.binary_level(allow_struct, level + 1)?;
        loop {
            let Some(t) = self.peek() else { break };
            if t.kind != TokKind::Punct {
                break;
            }
            // `>` followed directly by `=` means `>=` (lexer never fuses `>`).
            let mut op = t.text.clone();
            let mut extra = 0;
            if op == ">" {
                if let Some(n) = self.peek_at(1) {
                    if n.is("=") && n.pos == t.pos + 1 {
                        op = ">=".into();
                        extra = 1;
                    } else if n.is(">") && n.pos == t.pos + 1 {
                        op = ">>".into();
                        extra = 1;
                    }
                }
            }
            let lvl_ops = LEVELS[level];
            let matched = lvl_ops.contains(&op.as_str()) || (level == 6 && op == ">>"); // shifts share a level
            if !matched {
                break;
            }
            let line = t.line;
            self.i += 1 + extra;
            let rhs = self
                .binary_level(allow_struct, level + 1)
                .unwrap_or(Expr::Opaque { line });
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Some(lhs)
    }

    fn add_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let mut lhs = self.mul_expr(allow_struct)?;
        while let Some(t) = self.peek() {
            if !(t.is("+") || t.is("-")) {
                break;
            }
            let op = t.text.clone();
            let line = t.line;
            self.i += 1;
            let rhs = self.mul_expr(allow_struct).unwrap_or(Expr::Opaque { line });
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Some(lhs)
    }

    fn mul_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let mut lhs = self.cast_expr(allow_struct)?;
        while let Some(t) = self.peek() {
            if !(t.is("*") || t.is("/") || t.is("%")) {
                break;
            }
            let op = t.text.clone();
            let line = t.line;
            self.i += 1;
            let rhs = self
                .cast_expr(allow_struct)
                .unwrap_or(Expr::Opaque { line });
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Some(lhs)
    }

    fn cast_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let mut e = self.unary_expr(allow_struct)?;
        while self.at_kw("as") {
            let line = self.line();
            self.i += 1;
            let ty = self.type_until(&[
                ",", ";", ")", "]", "}", "+", "-", "*", "/", "%", "==", "!=", "<=", "&&", "||",
                "?", ".", "{", "..", "..=", "as",
            ]);
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
                line,
            };
        }
        Some(e)
    }

    fn unary_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let t = self.peek()?;
        let line = t.line;
        if t.is("-") || t.is("!") || t.is("*") {
            let op = t.text.chars().next().unwrap_or('-');
            self.i += 1;
            let inner = self.unary_expr(allow_struct)?;
            return Some(Expr::Unary {
                op,
                expr: Box::new(inner),
                line,
            });
        }
        if t.is("&") || t.is("&&") {
            let double = t.is("&&");
            self.i += 1;
            self.eat_kw("mut");
            let inner = self.unary_expr(allow_struct)?;
            let once = Expr::Ref {
                expr: Box::new(inner),
                line,
            };
            return Some(if double {
                Expr::Ref {
                    expr: Box::new(once),
                    line,
                }
            } else {
                once
            });
        }
        self.postfix_expr(allow_struct)
    }

    fn postfix_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let mut e = self.primary_expr(allow_struct)?;
        loop {
            let Some(t) = self.peek() else { break };
            if t.is(".") {
                let line = t.line;
                self.i += 1;
                match self.peek() {
                    Some(n) if n.kind == TokKind::Ident => {
                        let name = n.text.clone();
                        self.i += 1;
                        if name == "await" {
                            continue;
                        }
                        // turbofish on method: `.collect::<Vec<_>>()`
                        if self.at("::") {
                            self.i += 1;
                            self.skip_generics();
                        }
                        if self.at("(") {
                            let args = self.call_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                    }
                    Some(n) if n.kind == TokKind::Int => {
                        let name = n.text.clone();
                        self.i += 1;
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                    _ => {
                        e = Expr::Opaque { line };
                        break;
                    }
                }
            } else if t.is("(") {
                let line = t.line;
                let args = self.call_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
            } else if t.is("[") {
                let line = t.line;
                self.i += 1;
                let idx = self.expr(true).unwrap_or(Expr::Opaque { line });
                self.eat("]");
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                    line,
                };
            } else if t.is("?") {
                let line = t.line;
                self.i += 1;
                e = Expr::Try {
                    expr: Box::new(e),
                    line,
                };
            } else {
                break;
            }
        }
        Some(e)
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat("(") {
            return args;
        }
        loop {
            if self.eat(")") || self.peek().is_none() {
                break;
            }
            let before = self.i;
            if let Some(a) = self.expr(true) {
                args.push(a);
            }
            if !self.eat(",") && !self.at(")") && self.i == before {
                self.i += 1; // recovery
            }
        }
        args
    }

    fn primary_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        let t = self.peek()?;
        let line = t.line;
        match t.kind {
            TokKind::Int => {
                let text = t.text.clone();
                self.i += 1;
                Some(Expr::Lit {
                    kind: LitKind::Int,
                    text,
                    line,
                })
            }
            TokKind::Float => {
                let text = t.text.clone();
                self.i += 1;
                Some(Expr::Lit {
                    kind: LitKind::Float,
                    text,
                    line,
                })
            }
            TokKind::Str => {
                let text = t.text.clone();
                self.i += 1;
                Some(Expr::Lit {
                    kind: LitKind::Str,
                    text,
                    line,
                })
            }
            TokKind::Char => {
                let text = t.text.clone();
                self.i += 1;
                Some(Expr::Lit {
                    kind: LitKind::Char,
                    text,
                    line,
                })
            }
            TokKind::Lifetime => {
                // loop label `'outer: loop { ... }`
                self.i += 1;
                self.eat(":");
                self.primary_expr(allow_struct)
            }
            TokKind::Doc => {
                self.i += 1;
                self.primary_expr(allow_struct)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.i += 1;
                    let mut elems = Vec::new();
                    loop {
                        if self.eat(")") || self.peek().is_none() {
                            break;
                        }
                        let before = self.i;
                        if let Some(e) = self.expr(true) {
                            elems.push(e);
                        }
                        if !self.eat(",") && !self.at(")") && self.i == before {
                            self.i += 1;
                        }
                    }
                    if elems.len() == 1 {
                        elems.pop()
                    } else {
                        Some(Expr::Tuple { elems, line })
                    }
                }
                "[" => {
                    self.i += 1;
                    let mut elems = Vec::new();
                    loop {
                        if self.eat("]") || self.peek().is_none() {
                            break;
                        }
                        let before = self.i;
                        if let Some(e) = self.expr(true) {
                            elems.push(e);
                        }
                        // `[expr; n]` repeat syntax
                        if self.eat(";") {
                            let _ = self.expr(true);
                        }
                        if !self.eat(",") && !self.at("]") && self.i == before {
                            self.i += 1;
                        }
                    }
                    Some(Expr::Array { elems, line })
                }
                "{" => Some(Expr::Block {
                    block: self.block(),
                    line,
                }),
                "|" | "||" => {
                    // closure
                    if t.is("|") {
                        self.skip_balanced_closure_params();
                    } else {
                        self.i += 1;
                    }
                    // optional `-> Type` then body
                    if self.eat("->") {
                        let _ = self.type_until(&["{"]);
                    }
                    let body = self.expr(true).unwrap_or(Expr::Opaque { line });
                    Some(Expr::Closure {
                        body: Box::new(body),
                        line,
                    })
                }
                "#" => {
                    // expression-position attribute (e.g. on a match arm block)
                    let _ = self.attrs();
                    self.primary_expr(allow_struct)
                }
                _ => None,
            },
            TokKind::Ident => {
                let word = t.text.clone();
                match word.as_str() {
                    "true" | "false" => {
                        self.i += 1;
                        Some(Expr::Lit {
                            kind: LitKind::Bool,
                            text: word,
                            line,
                        })
                    }
                    "if" => self.if_expr(),
                    "match" => self.match_expr(),
                    "loop" => {
                        self.i += 1;
                        Some(Expr::Loop {
                            body: self.block(),
                            line,
                        })
                    }
                    "while" => {
                        self.i += 1;
                        if self.eat_kw("let") {
                            // `while let pat = expr { }` — skip pattern
                            self.skip_pattern_until(&["="]);
                            self.eat("=");
                        }
                        let cond = self.expr(false).unwrap_or(Expr::Opaque { line });
                        Some(Expr::While {
                            cond: Box::new(cond),
                            body: self.block(),
                            line,
                        })
                    }
                    "for" => {
                        self.i += 1;
                        self.skip_pattern_until(&["in"]);
                        self.eat_kw("in");
                        let iter = self.expr(false).unwrap_or(Expr::Opaque { line });
                        Some(Expr::For {
                            iter: Box::new(iter),
                            body: self.block(),
                            line,
                        })
                    }
                    "return" => {
                        self.i += 1;
                        let at_end = self
                            .peek()
                            .map(|t| t.is(";") || t.is("}") || t.is(")") || t.is(","))
                            .unwrap_or(true);
                        let inner = if at_end {
                            None
                        } else {
                            self.expr(true).map(Box::new)
                        };
                        Some(Expr::Return { expr: inner, line })
                    }
                    "break" => {
                        self.i += 1;
                        if self
                            .peek()
                            .map(|t| t.kind == TokKind::Lifetime)
                            .unwrap_or(false)
                        {
                            self.i += 1;
                        }
                        let at_end = self
                            .peek()
                            .map(|t| t.is(";") || t.is("}") || t.is(")") || t.is(","))
                            .unwrap_or(true);
                        if !at_end {
                            let _ = self.expr(allow_struct);
                        }
                        Some(Expr::Break { line })
                    }
                    "continue" => {
                        self.i += 1;
                        if self
                            .peek()
                            .map(|t| t.kind == TokKind::Lifetime)
                            .unwrap_or(false)
                        {
                            self.i += 1;
                        }
                        Some(Expr::Continue { line })
                    }
                    "move" => {
                        self.i += 1;
                        self.primary_expr(allow_struct)
                    }
                    "unsafe" | "const" => {
                        self.i += 1;
                        if self.at("{") {
                            Some(Expr::Block {
                                block: self.block(),
                                line,
                            })
                        } else {
                            self.primary_expr(allow_struct)
                        }
                    }
                    "let" => {
                        // `if let` handled in if_expr; a stray `let` in expr
                        // position (let-chains) — parse as opaque condition.
                        self.i += 1;
                        self.skip_pattern_until(&["="]);
                        self.eat("=");
                        let _ = self.expr(false);
                        Some(Expr::Opaque { line })
                    }
                    _ => self.path_or_struct_or_macro(allow_struct),
                }
            }
        }
    }

    fn skip_balanced_closure_params(&mut self) {
        // at `|`: skip to the matching `|` at depth 0
        self.i += 1;
        let mut guard = 0usize;
        while let Some(t) = self.peek() {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            if t.is("|") {
                self.i += 1;
                break;
            }
            if t.is("(") || t.is("[") || t.is("{") || t.is("<") {
                self.skip_balanced();
            } else {
                self.i += 1;
            }
        }
    }

    fn skip_pattern_until(&mut self, stops: &[&str]) {
        while let Some(t) = self.peek() {
            let hit = stops.iter().any(|s| {
                (t.kind == TokKind::Punct && t.text == *s)
                    || (t.kind == TokKind::Ident && t.text == *s)
            });
            if hit {
                break;
            }
            if t.is("(") || t.is("[") || t.is("{") {
                self.skip_balanced();
            } else {
                self.i += 1;
            }
        }
    }

    fn if_expr(&mut self) -> Option<Expr> {
        let line = self.line();
        self.eat_kw("if");
        if self.eat_kw("let") {
            self.skip_pattern_until(&["="]);
            self.eat("=");
        }
        let cond = self.expr(false).unwrap_or(Expr::Opaque { line });
        let then = self.block();
        let else_ = if self.eat_kw("else") {
            if self.at_kw("if") {
                self.if_expr().map(Box::new)
            } else {
                let l = self.line();
                Some(Box::new(Expr::Block {
                    block: self.block(),
                    line: l,
                }))
            }
        } else {
            None
        };
        Some(Expr::If {
            cond: Box::new(cond),
            then,
            else_,
            line,
        })
    }

    fn match_expr(&mut self) -> Option<Expr> {
        let line = self.line();
        self.eat_kw("match");
        let scrutinee = self.expr(false).unwrap_or(Expr::Opaque { line });
        let mut arms = Vec::new();
        if self.eat("{") {
            loop {
                if self.eat("}") || self.peek().is_none() {
                    break;
                }
                let (_, _) = self.attrs();
                let arm_line = self.line();
                // Pattern: collect path-like sequences until `=>` or `if`.
                let mut pat_paths: Vec<Vec<String>> = Vec::new();
                let mut wildcard = false;
                let mut current: Vec<String> = Vec::new();
                let mut guard = None;
                loop {
                    let Some(t) = self.peek() else { break };
                    if t.is("=>") {
                        self.i += 1;
                        break;
                    }
                    if t.is_ident("if") {
                        if !current.is_empty() {
                            pat_paths.push(std::mem::take(&mut current));
                        }
                        self.i += 1;
                        guard = self.expr(false).map(Box::new);
                        self.eat("=>");
                        break;
                    }
                    match t.kind {
                        TokKind::Ident if t.text == "_" => {
                            wildcard = true;
                            self.i += 1;
                        }
                        TokKind::Ident => {
                            current.push(t.text.clone());
                            self.i += 1;
                            if !self.at("::") {
                                pat_paths.push(std::mem::take(&mut current));
                            } else {
                                self.i += 1; // consume `::`
                            }
                        }
                        TokKind::Punct => match t.text.as_str() {
                            "_" => {
                                wildcard = true;
                                self.i += 1;
                            }
                            "(" | "[" | "{" => {
                                // Sub-patterns may carry more paths; extract
                                // idents joined by `::` from the group.
                                let (s, e) = self.skip_balanced();
                                let inner =
                                    &self.toks[s.min(self.toks.len())..e.min(self.toks.len())];
                                let mut sub: Vec<String> = Vec::new();
                                let mut k = 0;
                                while k < inner.len() {
                                    if inner[k].is_ident("_") {
                                        wildcard = true;
                                    } else if inner[k].kind == TokKind::Ident {
                                        sub.push(inner[k].text.clone());
                                        if inner.get(k + 1).map(|t| t.is("::")).unwrap_or(false) {
                                            k += 2;
                                            continue;
                                        }
                                        pat_paths.push(std::mem::take(&mut sub));
                                    }
                                    k += 1;
                                }
                            }
                            _ => {
                                self.i += 1;
                            }
                        },
                        _ => {
                            self.i += 1;
                        }
                    }
                }
                let body = self.expr(true).unwrap_or(Expr::Opaque { line: arm_line });
                self.eat(",");
                arms.push(Arm {
                    pat_paths,
                    wildcard,
                    guard,
                    body: Box::new(body),
                    line: arm_line,
                });
            }
        }
        Some(Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        })
    }

    /// A path, optionally continuing into a struct literal or macro call.
    fn path_or_struct_or_macro(&mut self, allow_struct: bool) -> Option<Expr> {
        let line = self.line();
        let mut segs = Vec::new();
        loop {
            let Some(seg) = self.ident() else { break };
            segs.push(seg);
            if self.at("::") {
                self.i += 1;
                // turbofish `::<...>`
                if self.at("<") {
                    self.skip_balanced();
                    if !self.at("::") {
                        break;
                    }
                    self.i += 1;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return None;
        }
        if self.at("!") {
            self.i += 1;
            let mut args = Vec::new();
            if self.at("(") || self.at("[") || self.at("{") {
                let (s, e) = self.skip_balanced();
                let inner: Vec<Tok> =
                    self.toks[s.min(self.toks.len())..e.min(self.toks.len())].to_vec();
                let mut q = Parser { toks: &inner, i: 0 };
                loop {
                    if q.peek().is_none() {
                        break;
                    }
                    let before = q.i;
                    if let Some(a) = q.expr(true) {
                        args.push(a);
                    }
                    if !q.eat(",") && !q.eat(";") && q.i == before {
                        q.i += 1;
                    }
                }
            }
            return Some(Expr::MacroCall {
                path: segs,
                args,
                line,
            });
        }
        if allow_struct && self.at("{") && self.looks_like_struct_lit() {
            self.i += 1;
            let mut fields = Vec::new();
            loop {
                if self.eat("}") || self.peek().is_none() {
                    break;
                }
                if self.eat("..") {
                    // struct update syntax `..base`
                    let _ = self.expr(true);
                    continue;
                }
                let Some(fname) = self.ident() else {
                    if !self.eat(",") {
                        self.i += 1;
                    }
                    continue;
                };
                if self.eat(":") {
                    if let Some(v) = self.expr(true) {
                        fields.push((fname, v));
                    }
                } else {
                    // shorthand `Point { x, y }`
                    fields.push((
                        fname.clone(),
                        Expr::Path {
                            segs: vec![fname],
                            line,
                        },
                    ));
                }
                self.eat(",");
            }
            return Some(Expr::StructLit {
                path: segs,
                fields,
                line,
            });
        }
        Some(Expr::Path { segs, line })
    }

    /// Heuristic: `Path {` opens a struct literal if the first tokens inside
    /// look like `ident:` / `ident,` / `ident }` / `..` / `}`.
    fn looks_like_struct_lit(&self) -> bool {
        let Some(t1) = self.peek_at(1) else {
            return false;
        };
        if t1.is("}") || t1.is("..") {
            return true;
        }
        if t1.kind == TokKind::Ident {
            if let Some(t2) = self.peek_at(2) {
                return (t2.is(":") && !t2.is("::")) || t2.is(",") || t2.is("}");
            }
        }
        false
    }
}

// ---- generic AST walking ----

/// Invoke `f` on every expression in the block, recursively (including closure
/// bodies, match arms, nested blocks).
pub fn walk_block<F: FnMut(&Expr)>(block: &Block, f: &mut F) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => walk_expr(e, f),
            Stmt::Let { .. } => {}
            Stmt::Expr { expr, .. } => walk_expr(expr, f),
            Stmt::Item(item) => walk_item(item, f),
        }
    }
}

pub fn walk_item<F: FnMut(&Expr)>(item: &Item, f: &mut F) {
    match &item.kind {
        ItemKind::Fn(func) => {
            if let Some(b) = &func.body {
                walk_block(b, f);
            }
        }
        ItemKind::Impl(imp) => {
            for it in &imp.items {
                walk_item(it, f);
            }
        }
        ItemKind::Trait { items }
        | ItemKind::Mod {
            inline: Some(items),
        } => {
            for it in items {
                walk_item(it, f);
            }
        }
        ItemKind::Const { init: Some(e), .. } | ItemKind::Static { init: Some(e), .. } => {
            walk_expr(e, f)
        }
        _ => {}
    }
}

pub fn walk_expr<F: FnMut(&Expr)>(expr: &Expr, f: &mut F) {
    f(expr);
    match expr {
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Cast { expr, .. }
        | Expr::Unary { expr, .. }
        | Expr::Try { expr, .. }
        | Expr::Ref { expr, .. }
        | Expr::Closure { body: expr, .. } => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        Expr::If {
            cond, then, else_, ..
        } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = else_ {
                walk_expr(e, f);
            }
        }
        Expr::Loop { body, .. } => walk_block(body, f),
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Block { block, .. } => walk_block(block, f),
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for e in elems {
                walk_expr(e, f);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                walk_expr(e, f);
            }
            if let Some(e) = hi {
                walk_expr(e, f);
            }
        }
        Expr::Return { expr: Some(e), .. } => walk_expr(e, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<Item> {
        parse_file(src).items
    }

    #[test]
    fn parses_fn_with_params_and_ret() {
        let file = items("pub fn add(a: f64, b: f64) -> f64 { a + b }");
        assert_eq!(file.len(), 1);
        let Item {
            name, vis, kind, ..
        } = &file[0];
        assert_eq!(name, "add");
        assert_eq!(*vis, Vis::Pub);
        let ItemKind::Fn(f) = kind else {
            panic!("not a fn")
        };
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].0, "a");
        assert_eq!(f.params[0].1.head_name(), "f64");
        assert_eq!(f.ret.as_ref().map(|t| t.head_name()), Some("f64"));
    }

    #[test]
    fn parses_struct_fields_with_docs() {
        let file = items("pub struct S {\n    /// `spark.a.one` in bytes.\n    pub one: f64,\n    two: Vec<u32>,\n}");
        let ItemKind::Struct { fields } = &file[0].kind else {
            panic!()
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "one");
        assert!(fields[0].docs[0].contains("`spark.a.one`"));
        assert_eq!(fields[1].ty.head_name(), "Vec");
    }

    #[test]
    fn parses_enum_variants() {
        let file = items("enum Knob { One, Two, Three(u32), Four { x: f64 } }");
        let ItemKind::Enum { variants } = &file[0].kind else {
            panic!()
        };
        let names: Vec<&str> = variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["One", "Two", "Three", "Four"]);
    }

    #[test]
    fn parses_impl_and_trait_impl() {
        let file = items("impl Foo { fn a(&self) {} }\nimpl Display for Foo { fn fmt(&self) {} }");
        let ItemKind::Impl(a) = &file[0].kind else {
            panic!()
        };
        assert_eq!(a.self_ty, "Foo");
        assert!(a.trait_.is_none());
        let ItemKind::Impl(b) = &file[1].kind else {
            panic!()
        };
        assert_eq!(b.self_ty, "Foo");
        assert_eq!(b.trait_.as_deref(), Some("Display"));
    }

    #[test]
    fn parses_use_trees_and_aliases() {
        let file = items(
            "use std::time::Instant as Clock;\npub use space::{ConfigSpace, Dim};\nuse rand::*;",
        );
        let ItemKind::Use { bindings } = &file[0].kind else {
            panic!()
        };
        assert_eq!(bindings[0].path, ["std", "time", "Instant"]);
        assert_eq!(bindings[0].alias, "Clock");
        let ItemKind::Use { bindings } = &file[1].kind else {
            panic!()
        };
        assert_eq!(bindings.len(), 2);
        assert!(bindings[0].is_pub);
        assert_eq!(bindings[1].path, ["space", "Dim"]);
        let ItemKind::Use { bindings } = &file[2].kind else {
            panic!()
        };
        assert_eq!(bindings[0].alias, "*");
    }

    #[test]
    fn cfg_test_marks_module_items() {
        let file = items("fn lib() {}\n#[cfg(test)]\nmod tests { fn helper() {} }");
        assert!(!file[0].cfg_test);
        assert!(file[1].cfg_test);
        let ItemKind::Mod {
            inline: Some(inner),
        } = &file[1].kind
        else {
            panic!()
        };
        assert!(inner[0].cfg_test);
    }

    fn first_fn_body(src: &str) -> Block {
        for item in parse_file(src).items {
            if let ItemKind::Fn(f) = item.kind {
                if let Some(b) = f.body {
                    return b;
                }
            }
        }
        panic!("no fn body in {src}");
    }

    #[test]
    fn extracts_calls_and_method_chains() {
        let body = first_fn_body("fn f() { helper(); x.iter().map(g).collect::<Vec<_>>(); }");
        let mut calls = Vec::new();
        walk_block(&body, &mut |e| {
            if let Expr::Call { callee, .. } = e {
                if let Expr::Path { segs, .. } = &**callee {
                    calls.push(segs.join("::"));
                }
            }
            if let Expr::MethodCall { method, .. } = e {
                calls.push(format!(".{method}"));
            }
        });
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&".iter".to_string()));
        assert!(calls.contains(&".collect".to_string()));
    }

    #[test]
    fn extracts_casts() {
        let body = first_fn_body("fn f(x: f64) -> u32 { (x.round() as i64).max(1) as u32 }");
        let mut casts = Vec::new();
        walk_block(&body, &mut |e| {
            if let Expr::Cast { ty, .. } = e {
                casts.push(ty.head_name().to_string());
            }
        });
        assert_eq!(casts, ["u32", "i64"]);
    }

    #[test]
    fn parses_match_arms_with_paths() {
        let body = first_fn_body(
            "fn f(k: Knob) -> &'static str { match k { Knob::One => \"a\", Knob::Two | Knob::Three => \"b\", _ => \"c\" } }",
        );
        let mut arms_seen = Vec::new();
        let mut wildcards = 0;
        walk_block(&body, &mut |e| {
            if let Expr::Match { arms, .. } = e {
                for arm in arms {
                    for p in &arm.pat_paths {
                        arms_seen.push(p.join("::"));
                    }
                    if arm.wildcard {
                        wildcards += 1;
                    }
                }
            }
        });
        assert_eq!(arms_seen, ["Knob::One", "Knob::Two", "Knob::Three"]);
        assert_eq!(wildcards, 1);
    }

    #[test]
    fn parses_struct_literals() {
        let body = first_fn_body(
            "fn f() -> Dim { Dim { knob: Knob::One, lo: 0.0, hi: 1.0 * MIB, log_scale: true, default: 0.5 } }",
        );
        let mut found = false;
        walk_block(&body, &mut |e| {
            if let Expr::StructLit { path, fields, .. } = e {
                if path.last().map(String::as_str) == Some("Dim") {
                    found = true;
                    assert!(fields.iter().any(|(n, v)| {
                        n == "knob"
                            && matches!(v, Expr::Path { segs, .. } if segs.join("::") == "Knob::One")
                    }));
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn struct_literal_not_confused_with_blocks() {
        // `if x { ... }` must not parse `x {` as a struct literal.
        let body = first_fn_body("fn f(x: bool) -> u32 { if x { 1 } else { 2 } }");
        let mut ifs = 0;
        let mut lits = 0;
        walk_block(&body, &mut |e| match e {
            Expr::If { .. } => ifs += 1,
            Expr::StructLit { .. } => lits += 1,
            _ => {}
        });
        assert_eq!(ifs, 1);
        assert_eq!(lits, 0);
    }

    #[test]
    fn closures_and_macros_are_walked() {
        let body = first_fn_body(
            "fn f(xs: &[f64]) { xs.iter().map(|x| helper(*x)).count(); println!(\"{}\", other()); }",
        );
        let mut calls = Vec::new();
        walk_block(&body, &mut |e| {
            if let Expr::Call { callee, .. } = e {
                if let Expr::Path { segs, .. } = &**callee {
                    calls.push(segs.join("::"));
                }
            }
        });
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&"other".to_string()));
    }

    #[test]
    fn let_statements_capture_name_type_init() {
        let body = first_fn_body("fn f() { let n: usize = xs.len(); let _ = drop_it(); }");
        let Stmt::Let {
            name,
            ty,
            init,
            underscore,
            ..
        } = &body.stmts[0]
        else {
            panic!()
        };
        assert_eq!(name.as_deref(), Some("n"));
        assert_eq!(ty.as_ref().map(|t| t.head_name()), Some("usize"));
        assert!(init.is_some());
        assert!(!underscore);
        let Stmt::Let { underscore, .. } = &body.stmts[1] else {
            panic!()
        };
        assert!(underscore);
    }

    #[test]
    fn semi_vs_tail_statements() {
        let body = first_fn_body("fn f() -> u32 { g(); h() }");
        let Stmt::Expr { semi, .. } = &body.stmts[0] else {
            panic!()
        };
        assert!(semi);
        let Stmt::Expr { semi, .. } = &body.stmts[1] else {
            panic!()
        };
        assert!(!semi);
    }

    #[test]
    fn tolerates_unparseable_noise() {
        // Garbage between items must not lose the following fn.
        let file = items("@@ %% fn good() {} ??");
        assert!(file.iter().any(|i| i.name == "good"));
    }

    #[test]
    fn nested_generics_in_types() {
        let file = items(
            "fn f(m: BTreeMap<String, Vec<Vec<f64>>>) -> Option<Box<dyn Sel + Send>> { None }",
        );
        let ItemKind::Fn(f) = &file[0].kind else {
            panic!()
        };
        assert_eq!(f.params[0].1.head_name(), "BTreeMap");
        assert_eq!(f.ret.as_ref().map(|t| t.head_name()), Some("Option"));
    }

    #[test]
    fn if_let_and_while_let_and_for() {
        let body = first_fn_body(
            "fn f(xs: Vec<u32>) { if let Some(x) = xs.first() { g(x); } for x in xs.iter() { h(x); } }",
        );
        let mut fors = 0;
        walk_block(&body, &mut |e| {
            if matches!(e, Expr::For { .. }) {
                fors += 1;
            }
        });
        assert_eq!(fors, 1);
        assert_eq!(body.stmts.len(), 2);
    }
}
