//! Property tests for the rockserve wire protocol: every frame type
//! round-trips bit-exactly through encode/frame/decode, and truncated,
//! oversized, garbage, and wrong-version frames are rejected with typed
//! errors — never a panic, never a silent success.

use pipeline::DashboardCounters;
use proptest::prelude::*;
use rockserve::proto::{self, Request, Response, WireError, MAX_PAYLOAD_BYTES, PROTOCOL_VERSION};
use rockserve::MetricsSnapshot;

/// Lowercase-ASCII identifier strings (tenants, app ids).
fn ident() -> impl Strategy<Value = String> {
    prop::collection::vec(97u8..123u8, 0..12)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// JSONL-ish documents exercising quotes, escapes, and newlines.
fn doc() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..6, 0..16).prop_map(|picks| {
        picks
            .iter()
            .map(|p| {
                [
                    "{\"event\":\"x\"}",
                    "\n",
                    "\"",
                    "\\",
                    "not json",
                    "\u{1F427}",
                ][*p]
            })
            .collect()
    })
}

fn frame_and_read(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, payload).expect("frame writes into a Vec");
    proto::read_frame(&mut wire.as_slice())
        .expect("framed payload reads back")
        .expect("payload frame is not a clean EOF")
}

fn assert_request_round_trips(req: &Request) {
    let payload = proto::encode_request(req).expect("request encodes");
    let back = frame_and_read(&payload);
    assert_eq!(&proto::decode_request(&back).expect("request decodes"), req);
}

fn assert_response_round_trips(resp: &Response) {
    let payload = proto::encode_response(resp).expect("response encodes");
    let back = frame_and_read(&payload);
    assert_eq!(
        &proto::decode_response(&back).expect("response decodes"),
        resp
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_request_variant_round_trips(
        user in ident(),
        app_id in ident(),
        jsonl in doc(),
        signature: u64,
        embedding in prop::collection::vec(-1.0e9f64..1.0e9, 0..8),
        expected_data_size in 0.0f64..1.0e12,
        iteration in 0u32..1000,
    ) {
        for req in [
            Request::Suggest {
                user: user.clone(),
                signature,
                embedding,
                expected_data_size,
                iteration,
            },
            Request::Report { user, app_id, jsonl },
            Request::Health,
            Request::Metrics,
            Request::Shutdown,
        ] {
            assert_request_round_trips(&req);
        }
    }

    #[test]
    fn every_response_variant_round_trips(
        point in prop::collection::vec(0.0f64..1.0e6, 0..8),
        fallback_doc in doc(),
        counters in prop::collection::vec(0u64..u64::MAX, 29),
        draining: bool,
        has_provenance: bool,
        protocol_version: u16,
    ) {
        let c = |i: usize| counters.get(i).copied().unwrap_or(0);
        let serving = MetricsSnapshot {
            suggests: c(0),
            reports: c(1),
            healths: c(2),
            metrics_requests: c(3),
            shutdowns: c(4),
            overloaded: c(5),
            protocol_errors: c(6),
            backend_evals: c(7),
            coalesced_hits: c(8),
            transfer_served: c(25),
            batch_max: c(9),
            queue_depth: c(10),
            inflight: c(11),
            p50_us: c(12),
            p95_us: c(13),
            p99_us: c(14),
            shards: vec![rockserve::ShardMetricsSnapshot {
                shard: 0,
                suggests: c(0),
                backend_evals: c(7),
                coalesced_hits: c(8),
                overloaded: c(5),
                p50_us: c(12),
                p99_us: c(14),
            }],
        };
        let dashboard = DashboardCounters {
            ingested_records: c(15),
            failed_runs: c(16),
            quarantined_lines: c(17),
            tracked_signatures: c(18),
            wal_records_written: c(19),
            wal_records_quarantined: c(20),
            snapshot_writes: c(21),
            recovery_replayed: c(22),
            tuner_evictions: c(23),
            evicted_restored: c(24),
            cold_hits: c(26),
            cold_misses: c(27),
            transfer_seeded: c(28),
        };
        for resp in [
            Response::Suggestion {
                point,
                fallback: if draining { Some(fallback_doc.clone()) } else { None },
                provenance: if has_provenance {
                    Some("transferred".to_string())
                } else {
                    None
                },
            },
            Response::Reported,
            Response::Healthy { draining, protocol_version },
            Response::MetricsReport {
                text: fallback_doc.clone(),
                serving,
                dashboard,
            },
            Response::Overloaded { inflight: c(0), capacity: c(1) },
            Response::ShuttingDown,
            Response::Error {
                code: proto::codes::MALFORMED_FRAME.to_string(),
                message: fallback_doc,
            },
        ] {
            assert_response_round_trips(&resp);
        }
    }

    #[test]
    fn v3_suggestion_frames_without_provenance_still_round_trip(
        point in prop::collection::vec(-1.0e6f64..1.0e6, 0..8),
        has_fallback: bool,
    ) {
        // A v3 peer's Suggestion payload has no `provenance` field at all.
        // The absent field must decode as `None` — not an error — so old
        // clients and servers interoperate with this build unchanged.
        let rendered: Vec<String> = point.iter().map(|p| format!("{p:?}")).collect();
        let fallback = if has_fallback { "\"backend down\"" } else { "null" };
        let v3_payload = format!(
            "{{\"Suggestion\":{{\"point\":[{}],\"fallback\":{}}}}}",
            rendered.join(","),
            fallback,
        );
        let back = frame_and_read(v3_payload.as_bytes());
        let decoded = proto::decode_response(&back).expect("v3 frame decodes");
        match decoded {
            Response::Suggestion { point: got, fallback: got_fb, provenance } => {
                prop_assert_eq!(got, point);
                prop_assert_eq!(got_fb.is_some(), has_fallback);
                prop_assert_eq!(provenance, None, "absent provenance must decode as None");
            }
            other => prop_assert!(false, "expected a Suggestion, got {other:?}"),
        }
    }

    #[test]
    fn truncating_a_valid_frame_anywhere_is_a_typed_error(
        user in ident(),
        signature: u64,
        cut_seed: u64,
    ) {
        let req = Request::Suggest {
            user,
            signature,
            embedding: vec![1.0, 2.0],
            expected_data_size: 64.0,
            iteration: 1,
        };
        let payload = proto::encode_request(&req).expect("request encodes");
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, &payload).expect("frame writes");
        // Cut strictly inside the frame: the result must be Truncated (or a
        // clean None when nothing at all arrived), never a panic or a parse.
        let cut = (cut_seed as usize) % wire.len();
        let result = proto::read_frame(&mut &wire[..cut]);
        if cut == 0 {
            prop_assert!(matches!(result, Ok(None)), "empty stream is a clean EOF");
        } else {
            prop_assert!(
                matches!(result, Err(WireError::Truncated { .. })),
                "cut at {cut}/{} must be Truncated, got {result:?}",
                wire.len(),
            );
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation(extra: u32) {
        let len = MAX_PAYLOAD_BYTES
            .saturating_add(1)
            .saturating_add(extra % (u32::MAX - MAX_PAYLOAD_BYTES));
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        // No payload follows: if the length were honoured this would allocate
        // and then report Truncated; instead the bound fires on the header.
        prop_assert!(matches!(
            proto::read_frame(&mut wire.as_slice()),
            Err(WireError::Oversized { len: l, .. }) if l == len
        ));
    }

    #[test]
    fn garbage_payloads_decode_to_malformed_not_panic(
        noise in prop::collection::vec(0u8..=255, 0..64),
    ) {
        // A leading NUL is never valid JSON, so the decode must fail — but
        // through the typed error, not a panic, and the framing layer itself
        // must carry the bytes faithfully.
        let mut payload = vec![0u8];
        payload.extend_from_slice(&noise);
        let back = frame_and_read(&payload);
        prop_assert_eq!(&back, &payload);
        prop_assert!(matches!(
            proto::decode_request(&back),
            Err(WireError::Malformed(_))
        ));
        prop_assert!(matches!(
            proto::decode_response(&back),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn foreign_versions_are_rejected_with_the_version_they_spoke(raw: u16) {
        let version = if raw == PROTOCOL_VERSION { 0 } else { raw };
        let mut wire = Vec::new();
        proto::write_frame_versioned(&mut wire, version, b"{}").expect("frame writes");
        match proto::read_frame(&mut wire.as_slice()) {
            Err(WireError::VersionMismatch { got, want }) => {
                prop_assert_eq!(got, version);
                prop_assert_eq!(want, PROTOCOL_VERSION);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {other:?}"),
        }
    }
}
