//! CFG corner cases: labeled `break`/`continue`, `while let`, nested
//! closures, and `?` early-return edges.
//!
//! Each construct wraps a taint flow that only resolves correctly if the
//! CFG edges are right: the labeled loops must not strand the block after
//! them, closure bodies must be lowered into the enclosing function, and a
//! dominating bound must survive both a `?` edge and a `while let` loop.

fn after_labeled_loops(hdr: [u8; 2], dims: &[f64]) -> f64 {
    let idx = u16::from_le_bytes(hdr) as usize;
    let mut total = 0.0;
    'outer: for d in dims {
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 2 {
                continue 'outer;
            }
            if *d < 0.0 {
                break 'outer;
            }
        }
    }
    total += dims[idx];
    total
}

fn closure_allocates(hdr: [u8; 4]) -> Vec<u8> {
    let len = u32::from_le_bytes(hdr) as usize;
    let make = || Vec::with_capacity(len);
    make()
}

fn nested_closure_arith(hdr: [u8; 4]) -> usize {
    let len = u32::from_le_bytes(hdr) as usize;
    let outer = || {
        let inner = || len + 1;
        inner()
    };
    outer()
}

fn bound_survives_try_and_while_let(hdr: [u8; 4], rows: &[u64]) -> Option<u64> {
    let len = u32::from_le_bytes(hdr) as usize;
    if len >= rows.len() {
        return None;
    }
    let first = rows.first()?;
    let mut acc = *first;
    let mut it = rows.iter();
    while let Some(r) = it.next() {
        acc = acc.wrapping_add(*r);
    }
    Some(acc.wrapping_add(rows[len]))
}
