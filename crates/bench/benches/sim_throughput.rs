//! Simulator throughput: physical planning and full query execution. The online
//! tuner sits on the job-submission critical path, so everything it touches must be
//! sub-millisecond.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sparksim::config::SparkConf;
use sparksim::noise::NoiseSpec;
use sparksim::physical::plan_physical;
use sparksim::simulator::Simulator;

fn bench_planning(c: &mut Criterion) {
    let conf = SparkConf::default();
    let mut group = c.benchmark_group("physical_planning");
    for (name, plan) in [
        ("tpch_q1", workloads::tpch::query(1, 10.0)),
        ("tpch_q9", workloads::tpch::query(9, 10.0)),
        ("tpcds_q11", workloads::tpcds::query(11, 10.0)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| plan_physical(black_box(&plan), black_box(&conf)))
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let sim = Simulator::default_pool(NoiseSpec::high());
    let conf = SparkConf::default();
    let mut group = c.benchmark_group("query_execution");
    for (name, plan) in [
        ("tpch_q6", workloads::tpch::query(6, 10.0)),
        ("tpch_q9", workloads::tpch::query(9, 10.0)),
    ] {
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| sim.execute(black_box(&plan), black_box(&conf), s),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_plan_scaling(c: &mut Criterion) {
    let plan = workloads::tpch::query(9, 10.0);
    c.bench_function("plan_scaled_reestimate", |b| {
        b.iter(|| black_box(&plan).scaled(black_box(2.5)))
    });
}

criterion_group!(benches, bench_planning, bench_execution, bench_plan_scaling);
criterion_main!(benches);
