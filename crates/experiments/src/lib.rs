#![forbid(unsafe_code)]

//! Experiment harness regenerating **every table and figure** in the paper's
//! evaluation (§6). Each figure lives in its own module with a
//! `run(scale) -> Summary` entry point; the `src/bin/` wrappers execute one figure
//! each and `run_all` executes the lot. CSV series land in `results/`.
//!
//! Numbers are produced on the simulator substrate, so absolute values differ from
//! the paper's testbed; `EXPERIMENTS.md` records the paper-vs-measured comparison of
//! the *shapes* (who wins, by what factor, where crossovers fall).

pub mod harness;
pub mod plot;

pub mod exp_ablation_findbest;
pub mod exp_ablation_overshoot;
pub mod exp_ablation_window;
pub mod exp_applevel;
pub mod exp_aqe_interaction;
pub mod exp_coldstart_transfer;
pub mod exp_embedding_ablation;
pub mod exp_fault_injection;
pub mod exp_restart_regret;
pub mod fig01_shuffle_partitions;
pub mod fig02_noisy_baselines;
pub mod fig03_manual_vs_bo;
pub mod fig08_synthetic_function;
pub mod fig09_pseudo_surrogates;
pub mod fig10_cl_learned_surrogate;
pub mod fig11_dynamic_workloads;
pub mod fig12_transfer_warmstart;
pub mod fig13_cl_vs_cbo;
pub mod fig14_tpch_production;
pub mod fig15_16_customer_workloads;

pub use harness::{Scale, Summary};
