//! Fixture rockpool crate: a long-lived worker registry whose `seen` list
//! grows on every call with no eviction anywhere, next to a `recent` list
//! that is properly bounded.

use std::thread::JoinHandle;

struct Registry {
    worker: JoinHandle<u64>,
    seen: Vec<u64>,
    recent: Vec<u64>,
}

impl Registry {
    /// Grows forever — nothing in production code shrinks `seen`.
    fn record(&mut self, v: u64) {
        self.seen.push(v);
    }

    /// Bounded: checks the length and evicts the oldest entry.
    fn remember(&mut self, v: u64) {
        self.recent.push(v);
        if self.recent.len() > 64 {
            self.recent.remove(0);
        }
    }
}
