#!/usr/bin/env bash
# Full CI pass, in the order that fails fastest:
#   formatting → static analysis (rhlint) → release build → tests.
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> rhlint check"
cargo run -q -p rhlint -- check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos smoke (fault injection)"
cargo run -q --release -p experiments --bin exp_fault_injection -- --quick

echo "CI: all green"
