//! Crash-recovery determinism gate (tier 1, ISSUE 8 acceptance).
//!
//! The claim under test: a rockserve endpoint with a durable state directory
//! can die at an arbitrary point in a seeded workload — including mid-append,
//! with a seed-salted torn tail chopped off its WAL — and the recovered
//! server continues the served-suggestion stream **bit-identically** to a
//! server that never died. The proof is the bench fleet's
//! `suggest_fingerprint`: an order-sensitive fold of every served point in
//! (lane, request) order, compared between one uninterrupted run and the
//! same schedule split across two server lifetimes.
//!
//! Three properties make the gate hold at any thread count (CI runs this
//! suite at `RH_THREADS=1` and `RH_THREADS=8`):
//!
//! 1. append-before-apply: the WAL records every state-mutating operation in
//!    backend order, and replay re-executes them through the normal code
//!    paths with checkpointed tuner RNG streams;
//! 2. replay-before-accept: the recovered server prepopulates its coalescing
//!    cache from the replayed operations, so a repeated suggest key is
//!    served from the same evaluation as before the crash;
//! 3. a torn tail can only lose a suffix of logged operations, and each
//!    lost suggest re-derives the identical point on the next request for
//!    its signature (the tuner state it would have mutated was lost with it).

use bench::serve::{run_crash_recovery_bench, run_serve_bench, ServeBenchConfig};

/// A self-cleaning state directory under the system temp dir.
struct StateDir(std::path::PathBuf);

impl StateDir {
    fn new(tag: &str) -> StateDir {
        let dir = std::env::temp_dir().join(format!(
            "rockhopper-recovery-gate-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("state dir creates");
        StateDir(dir)
    }
}

impl Drop for StateDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Shared body: reference run vs split run, with or without fault injection.
/// The reference is always the *unsharded* uninterrupted run, so at
/// `shards > 1` this proves cross-shard-count fingerprint equality and
/// kill-and-recover continuity in one comparison (under a torn tail the
/// victim shard's lineage is seed-chosen; the others replay untouched logs).
fn assert_split_run_matches(seed: u64, shards: usize, tear_wal_tail: bool, tag: &str) {
    let cfg = ServeBenchConfig::quick(seed);
    let reference = run_serve_bench(&cfg).expect("uninterrupted run");
    assert_eq!(reference.protocol_errors, 0, "reference run must be clean");

    let dir = StateDir::new(tag);
    let split = cfg.requests_per_client / 2;
    let mut split_cfg = cfg;
    split_cfg.shards = shards;
    let crashed =
        run_crash_recovery_bench(&split_cfg, &dir.0, split, tear_wal_tail).expect("split run");

    assert_eq!(
        crashed.suggest_fingerprint, reference.suggest_fingerprint,
        "recovered server diverged from the uninterrupted unsharded run \
         (shards={shards}, tear_wal_tail={tear_wal_tail}): {crashed:?}"
    );
    assert_eq!(crashed.requests_total, reference.requests_total);
    assert_eq!(crashed.sent, reference.sent);
    assert_eq!(crashed.protocol_errors, 0, "split run spoke bad frames");
    assert!(crashed.clean_drain, "both lifetimes must drain cleanly");
    // Every suggest is either a backend evaluation or a coalesced hit —
    // across both lifetimes, including hits on the replay-rebuilt cache.
    assert_eq!(
        crashed.backend_evals + crashed.coalesced_hits,
        crashed.sent.0,
        "suggest accounting broke across the restart: {crashed:?}"
    );
    // Durability was actually exercised, and the metrics frame surfaced it.
    assert!(
        crashed.wal_records_written > 0,
        "no WAL records written: {crashed:?}"
    );
    assert!(
        crashed.recovery_replayed > 0,
        "the drain syncs the WAL without snapshotting, so recovery must \
         have replayed at least one record: {crashed:?}"
    );
}

#[test]
fn clean_restart_continues_the_suggestion_stream_bit_identically() {
    assert_split_run_matches(0xD15C_0001, 1, false, "clean");
}

#[test]
fn torn_tail_crash_recovers_and_continues_bit_identically() {
    // Note: no assertion on the quarantine count — WAL record *order* is
    // arrival order (thread-timing dependent), so whether the seed-derived
    // chop lands mid-record or exactly on a boundary varies run to run.
    // The fingerprint, by contrast, must never move.
    assert_split_run_matches(0xD15C_0002, 1, true, "torn");
}

#[test]
fn sharded_clean_restart_matches_the_unsharded_stream() {
    assert_split_run_matches(0xD15C_0005, 2, false, "sharded-clean");
}

#[test]
fn sharded_torn_shard_recovers_and_matches_the_unsharded_stream() {
    // 8 shards, one seed-chosen victim lineage torn mid-append: the other
    // seven replay clean logs, the victim quarantines its torn suffix, and
    // the merged suggestion stream still equals the unsharded reference.
    assert_split_run_matches(0xD15C_0006, 8, true, "sharded-torn");
}

/// The backend-level entry points with the *default* snapshot cadence:
/// a crashed backend recovered via `recover_from` must continue the
/// suggestion stream exactly where an uninterrupted twin would.
#[test]
fn backend_default_cadence_recovery_continues_like_an_uninterrupted_twin() {
    use optimizers::tuner::TuningContext;
    use pipeline::{AutotuneBackend, Storage};
    use std::sync::Arc;

    let seed = 0xD15C_0004;
    let ctx = TuningContext {
        embedding: vec![0.25, 0.75],
        expected_data_size: 2.0,
        iteration: 0,
    };

    // Durable backend: attach, serve a prefix, crash without warning.
    let dir = StateDir::new("backend-default");
    let mut durable = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    durable.persist_to(&dir.0).expect("attach durable state");
    for sig in 0..4u64 {
        durable.suggest("tenant", 9_000 + sig, &ctx);
    }
    durable.flush_durability().expect("fsync barrier");
    drop(durable); // the crash: no drain, no final snapshot

    // Witness: same seed, never persisted, never died.
    let mut witness = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    for sig in 0..4u64 {
        witness.suggest("tenant", 9_000 + sig, &ctx);
    }

    // Recovery adopts the on-disk state (note the deliberately wrong seed —
    // the snapshot's seed wins) and the continuation streams must agree.
    let mut recovered = AutotuneBackend::new(Arc::new(Storage::new()), None, 1);
    let report = recovered
        .recover_from(&dir.0)
        .expect("recovery is not fatal");
    assert!(report.replayed > 0, "the WAL tail must replay: {report:?}");
    for sig in 0..4u64 {
        assert_eq!(
            recovered.suggest("tenant", 9_000 + sig, &ctx),
            witness.suggest("tenant", 9_000 + sig, &ctx),
            "recovered backend diverged from the uninterrupted twin at {sig}"
        );
    }
}

#[test]
fn recovery_counters_reach_the_wire_metrics_frame() {
    let cfg = ServeBenchConfig::quick(0xD15C_0003);
    let dir = StateDir::new("counters");
    let report = run_crash_recovery_bench(&cfg, &dir.0, cfg.requests_per_client / 2, false)
        .expect("split run");
    // Cadence 8 with a ~45-frame first phase: at least one compacted
    // snapshot must have been cut, and the report must carry it.
    assert!(
        report.snapshot_writes > 0,
        "no snapshot at cadence {}: {report:?}",
        bench::serve::CRASH_BENCH_SNAPSHOT_EVERY
    );
    assert_eq!(
        report.wal_records_quarantined, 0,
        "clean restart must quarantine nothing: {report:?}"
    );
}
