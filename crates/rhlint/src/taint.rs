//! Untrusted-input taint analysis — RH026/RH027/RH029/RH030.
//!
//! A taint lattice over the locals of every lowered function
//! ([`crate::lower`]): each variable carries the set of untrusted *sources*
//! that may have produced it, plus three sanitizer flags. Sources are the
//! workspace's three trust boundaries:
//!
//! * **wire bytes** — integers decoded with `from_le_bytes` & friends in
//!   `rockserve` (the length/version words of the frame protocol);
//! * **env var** — `env::var(..)` anywhere in a scoped crate;
//! * **file read** — `fs::read`/`fs::read_to_string` in `pipeline` (the ETL
//!   input path).
//!
//! Sanitizers clear the corresponding hazard without clearing the taint:
//!
//! * a dominating comparison against an untrusted-free bound (`if len >
//!   MAX_PAYLOAD_BYTES { return }` — the lowerer places the negated fact on
//!   the fall-through arm) sets `bounded`;
//! * bounded conversions (`u16::try_from(x)?`), `clamp`/`min` against an
//!   untrusted-free cap, and checked/saturating arithmetic set `bounded`;
//! * `x != 0` / `x > 0` guards and `x.max(1)`-style floors set `nonzero`.
//!
//! Sinks come pre-lowered as [`Event::Sink`]: allocations sized by a value
//! (RH026 when tainted and unbounded), slice indexing (RH027), raw `+ - *
//! <<` arithmetic (RH029 when the taint is integer-typed), and `/`/`%`
//! divisors (RH030 when not proven non-zero — the interval pass's
//! zero-exclusion evidence is consulted too, so `x % n` after
//! `let n = v.clamp(1, 64)` stays silent).
//!
//! Interprocedural flow uses two summaries, refined over a few rounds like
//! `locks::summarize`: per-function *return taint* (real sources reaching
//! `#ret`) and *parameter sinks* (parameters that flow into a sink class
//! with no dominating sanitizer — pseudo-sources `param#i` seeded at
//! entry). A call with a really-tainted argument in a parameter-sink
//! position fires at the call site, so `read_frame` handing a raw wire
//! length to a helper that allocates is caught one hop away.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::cfg::{CmpOp, Event, Operand, SinkKind, VRhs};
use crate::dataflow::{forward_env, EnvLattice};
use crate::intervals::SinkRanges;
use crate::locks::concurrency_scoped;
use crate::lower::FnModel;
use crate::symbols::Workspace;
use crate::{Diagnostic, Rule};

/// Taint carried by one variable.
#[derive(Clone, Debug, Default, PartialEq)]
struct Taint {
    /// Untrusted origins: `"wire bytes"`, `"env var"`, `"file read"`, or a
    /// `"param#N"` pseudo-source used for summary building.
    sources: BTreeSet<String>,
    /// The value is integer-typed at its source (wire words, lengths).
    int: bool,
    /// A dominating bound check / bounded conversion caps the value.
    bounded: bool,
    /// A dominating guard proves the value non-zero.
    nonzero: bool,
}

impl Taint {
    fn is_tainted(&self) -> bool {
        !self.sources.is_empty()
    }

    fn real_sources(&self) -> Vec<&str> {
        self.sources
            .iter()
            .map(String::as_str)
            .filter(|s| !s.starts_with("param#"))
            .collect()
    }

    fn param_sources(&self) -> Vec<usize> {
        self.sources
            .iter()
            .filter_map(|s| s.strip_prefix("param#").and_then(|n| n.parse().ok()))
            .collect()
    }

    fn merge(&mut self, other: &Taint) {
        if !other.is_tainted() {
            return;
        }
        if self.is_tainted() {
            self.sources.extend(other.sources.iter().cloned());
            self.int |= other.int;
            self.bounded &= other.bounded;
            self.nonzero &= other.nonzero;
        } else {
            *self = other.clone();
        }
    }
}

type Env = BTreeMap<String, Taint>;

/// The sink classes a parameter can flow into (for summaries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum SinkClass {
    Alloc,
    Index,
    Div,
    Arith,
}

impl SinkClass {
    fn rule(self) -> Rule {
        match self {
            SinkClass::Alloc => Rule::UnvalidatedLengthAlloc,
            SinkClass::Index => Rule::TaintedIndex,
            SinkClass::Div => Rule::UntrustedDivisor,
            SinkClass::Arith => Rule::UncheckedArithUntrusted,
        }
    }

    fn noun(self) -> &'static str {
        match self {
            SinkClass::Alloc => "an allocation size",
            SinkClass::Index => "a slice index",
            SinkClass::Div => "a divisor",
            SinkClass::Arith => "unchecked arithmetic",
        }
    }
}

/// Per-function parameter-sink summary: `(param index, sink class)`.
type ParamSinks = BTreeSet<(usize, SinkClass)>;

struct TaintLattice<'a> {
    /// Real-source taint reaching each function's `#ret`.
    returns: &'a [Taint],
}

impl<'a> TaintLattice<'a> {
    fn operand(&self, env: &Env, op: &Operand) -> Taint {
        match op {
            Operand::Var(v) => env.get(v).cloned().unwrap_or_default(),
            _ => Taint::default(),
        }
    }

    /// Is this operand free of *real* taint (and therefore a trustworthy
    /// bound)? Parameter pseudo-sources don't disqualify a bound: comparing
    /// against `dims.len()` is a legitimate check even though `dims` came
    /// from the caller — the caller's own summary tracks its inputs.
    fn untrusted_free(&self, env: &Env, op: &Operand) -> bool {
        self.operand(env, op).real_sources().is_empty()
    }

    fn eval(&self, env: &Env, rhs: &VRhs) -> Taint {
        match rhs {
            VRhs::Operand(op) => self.operand(env, op),
            VRhs::Binary { op: _, lhs, rhs } => {
                let mut t = self.operand(env, lhs);
                t.merge(&self.operand(env, rhs));
                // Raw arithmetic can carry a bounded value past its bound.
                t.bounded = false;
                t.nonzero = false;
                t
            }
            VRhs::Clamp { arg, lo, hi } => {
                let mut t = self.operand(env, arg);
                t.merge(&self.operand(env, lo));
                t.merge(&self.operand(env, hi));
                if self.untrusted_free(env, hi) {
                    t.bounded = true;
                }
                if let Operand::Const(bits) = lo {
                    if f64::from_bits(*bits) > 0.0 {
                        t.nonzero = true;
                    }
                }
                t
            }
            VRhs::Min { lhs, rhs } => {
                let mut t = self.operand(env, lhs);
                t.merge(&self.operand(env, rhs));
                // min against an untrusted-free value caps the result.
                if self.untrusted_free(env, lhs) || self.untrusted_free(env, rhs) {
                    t.bounded = true;
                }
                t
            }
            VRhs::Max { lhs, rhs } => {
                let mut t = self.operand(env, lhs);
                t.merge(&self.operand(env, rhs));
                // `x.max(1)` floors the value above zero.
                for op in [lhs, rhs] {
                    if let Operand::Const(bits) = op {
                        if f64::from_bits(*bits) > 0.0 {
                            t.nonzero = true;
                        }
                    }
                }
                t
            }
            VRhs::GuardedArith { args } => {
                let mut t = Taint::default();
                for a in args {
                    t.merge(&self.operand(env, a));
                }
                // checked_*/saturating_* cannot overflow past the type.
                t.bounded = true;
                t
            }
            VRhs::TryFrom { arg, range } => {
                let mut t = self.operand(env, arg);
                if range.is_some() {
                    // A narrowing integer TryFrom is a bounds check.
                    t.bounded = true;
                    t.int = true;
                }
                t
            }
            VRhs::Len { of } => {
                let mut t = self.operand(env, of);
                if t.is_tainted() {
                    t.int = true;
                    t.bounded = false;
                }
                t
            }
            VRhs::Source { what, int, .. } => {
                let mut sources = BTreeSet::new();
                sources.insert((*what).to_string());
                Taint {
                    sources,
                    int: *int,
                    bounded: false,
                    nonzero: false,
                }
            }
            VRhs::Call { callee } => self.returns.get(*callee).cloned().unwrap_or_default(),
            VRhs::Adapter { args, .. } => {
                let mut t = Taint::default();
                for a in args {
                    t.merge(&self.operand(env, a));
                }
                t
            }
            VRhs::Opaque => Taint::default(),
        }
    }
}

impl<'a> EnvLattice for TaintLattice<'a> {
    type Env = Env;

    fn transfer(&self, event: &Event, env: &mut Env) {
        match event {
            Event::Assign { var, rhs, .. } => {
                let t = self.eval(env, rhs);
                if t.is_tainted() {
                    env.insert(var.clone(), t);
                } else {
                    env.remove(var);
                }
            }
            Event::Assume { var, op, bound } => {
                // A comparison against a tainted bound proves nothing.
                if !self.untrusted_free(env, bound) {
                    return;
                }
                let Some(t) = env.get_mut(var) else { return };
                match op {
                    CmpOp::Lt | CmpOp::Le => t.bounded = true,
                    CmpOp::Eq => match bound {
                        // Pinned to a known constant: no longer attacker-
                        // controlled at all.
                        Operand::Const(_) => {
                            env.remove(var);
                        }
                        _ => t.bounded = true,
                    },
                    CmpOp::Gt | CmpOp::Ge => {
                        let floor = match bound {
                            Operand::Const(bits) => f64::from_bits(*bits),
                            _ => f64::NEG_INFINITY,
                        };
                        if (*op == CmpOp::Gt && floor >= 0.0) || (*op == CmpOp::Ge && floor > 0.0) {
                            t.nonzero = true;
                        }
                    }
                    CmpOp::Ne => {
                        if matches!(bound, Operand::Const(bits) if f64::from_bits(*bits) == 0.0) {
                            t.nonzero = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn join(&self, acc: &mut Env, incoming: &Env) {
        for (k, t) in incoming {
            match acc.get_mut(k) {
                Some(cur) => cur.merge(t),
                None => {
                    acc.insert(k.clone(), t.clone());
                }
            }
        }
    }
}

/// Entry environment: every parameter is a pseudo-source for the
/// parameter-sink summary; integer-typed parameters keep the `int` flag.
fn param_seed(ws: &Workspace, fn_idx: usize) -> Env {
    let fi = &ws.fns()[fn_idx];
    let mut env = Env::new();
    for (i, (name, ty)) in fi.item.params.iter().enumerate() {
        if name.is_empty() {
            continue;
        }
        let head = ty.head_name();
        let int = matches!(
            head,
            "u8" | "u16" | "u32" | "u64" | "usize" | "i8" | "i16" | "i32" | "i64" | "isize"
        );
        let mut sources = BTreeSet::new();
        sources.insert(format!("param#{i}"));
        env.insert(
            name.clone(),
            Taint {
                sources,
                int,
                bounded: false,
                nonzero: false,
            },
        );
    }
    env
}

/// Run the taint pass. `ranges` is the interval pass's sink-argument ranges
/// (zero-exclusion evidence for RH030).
pub(crate) fn check(
    ws: &Workspace,
    models: &[Option<FnModel>],
    ranges: &SinkRanges,
) -> Vec<Diagnostic> {
    // Summary rounds: return taint (real sources only) and parameter sinks,
    // refined together so one-hop-away helpers resolve.
    let mut returns: Vec<Taint> = vec![Taint::default(); models.len()];
    let mut param_sinks: Vec<ParamSinks> = vec![ParamSinks::new(); models.len()];
    for _ in 0..3 {
        let mut changed = false;
        let snapshot = returns.clone();
        for (i, model) in models.iter().enumerate() {
            let Some(model) = model else { continue };
            let lattice = TaintLattice { returns: &snapshot };
            let sol = forward_env(&model.cfg, &lattice, param_seed(ws, i), Env::new());

            // Return taint: real sources reaching `#ret` at the exit.
            let mut ret = sol.block_in[model.cfg.exit]
                .get("#ret")
                .cloned()
                .unwrap_or_default();
            ret.sources.retain(|s| !s.starts_with("param#"));
            if !ret.is_tainted() {
                ret = Taint::default();
            }
            if returns[i] != ret {
                returns[i] = ret;
                changed = true;
            }

            // Parameter sinks: unsanitized flows from `param#N` to a sink.
            let mut sinks = ParamSinks::new();
            for b in 0..model.cfg.blocks.len() {
                sol.walk_block(&model.cfg, b, &lattice, |ev, env| {
                    let Event::Sink { kind, args, .. } = ev else {
                        return;
                    };
                    for a in args {
                        let t = lattice.operand(env, a);
                        if !t.is_tainted() || t.bounded {
                            continue;
                        }
                        for class in classes_of(kind, &param_sinks) {
                            if class == SinkClass::Div && t.nonzero {
                                continue;
                            }
                            if class == SinkClass::Arith && !t.int {
                                continue;
                            }
                            for p in t.param_sources() {
                                sinks.insert((p, class));
                            }
                        }
                    }
                });
            }
            if param_sinks[i] != sinks {
                param_sinks[i] = sinks;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: real findings in scoped, non-test functions.
    let mut found: BTreeSet<(PathBuf, usize, Rule, String)> = BTreeSet::new();
    for (i, fi) in ws.fns().iter().enumerate() {
        if fi.cfg_test || !concurrency_scoped(&fi.krate) {
            continue;
        }
        let Some(model) = &models[i] else { continue };
        let lattice = TaintLattice { returns: &returns };
        let sol = forward_env(&model.cfg, &lattice, param_seed(ws, i), Env::new());
        let rel = &ws.files()[fi.file].rel;
        for b in 0..model.cfg.blocks.len() {
            let mut idx = 0usize;
            sol.walk_block(&model.cfg, b, &lattice, |ev, env| {
                if let Event::Sink { kind, args, line } = ev {
                    for (j, a) in args.iter().enumerate() {
                        let t = lattice.operand(env, a);
                        let real = t.real_sources();
                        if real.is_empty() || t.bounded {
                            continue;
                        }
                        let origin = real.join(", ");
                        match kind {
                            SinkKind::Alloc(what) => {
                                found.insert((
                                    rel.clone(),
                                    *line,
                                    Rule::UnvalidatedLengthAlloc,
                                    format!(
                                        "allocation `{what}` sized by untrusted {origin} with no dominating bound check — cap it before allocating"
                                    ),
                                ));
                            }
                            SinkKind::Index => {
                                found.insert((
                                    rel.clone(),
                                    *line,
                                    Rule::TaintedIndex,
                                    format!(
                                        "slice index derived from untrusted {origin} with no dominating bound check — use `.get(..)` or check the bound first"
                                    ),
                                ));
                            }
                            SinkKind::Arith(op) => {
                                if t.int {
                                    found.insert((
                                        rel.clone(),
                                        *line,
                                        Rule::UncheckedArithUntrusted,
                                        format!(
                                            "unchecked `{op}` on untrusted {origin} can overflow — use `checked_{}` or bound-check first",
                                            arith_name(op)
                                        ),
                                    ));
                                }
                            }
                            SinkKind::Div => {
                                let zero_excluded = t.nonzero
                                    || ranges
                                        .get(&(i, b, idx))
                                        .and_then(|r| r.get(j))
                                        .map(|iv| iv.excludes_zero())
                                        .unwrap_or(false);
                                if !zero_excluded {
                                    found.insert((
                                        rel.clone(),
                                        *line,
                                        Rule::UntrustedDivisor,
                                        format!(
                                            "divisor derived from untrusted {origin} is not proven non-zero — guard with `== 0` or floor with `.max(1)`"
                                        ),
                                    ));
                                }
                            }
                            SinkKind::CallArg { callee, index } => {
                                for &(p, class) in &param_sinks[*callee] {
                                    if p != *index {
                                        continue;
                                    }
                                    if class == SinkClass::Arith && !t.int {
                                        continue;
                                    }
                                    if class == SinkClass::Div {
                                        let zero_excluded = t.nonzero
                                            || ranges
                                                .get(&(i, b, idx))
                                                .and_then(|r| r.get(j))
                                                .map(|iv| iv.excludes_zero())
                                                .unwrap_or(false);
                                        if zero_excluded {
                                            continue;
                                        }
                                    }
                                    let callee_fi = &ws.fns()[*callee];
                                    found.insert((
                                        rel.clone(),
                                        *line,
                                        class.rule(),
                                        format!(
                                            "untrusted {origin} flows into parameter {index} of `{}`, which uses it as {} with no dominating bound check",
                                            callee_fi.name,
                                            class.noun()
                                        ),
                                    ));
                                }
                            }
                            SinkKind::KnobSet { .. } => {}
                        }
                    }
                }
                idx += 1;
            });
        }
    }

    found
        .into_iter()
        .map(|(file, line, rule, message)| Diagnostic {
            file,
            line,
            rule,
            message,
        })
        .collect()
}

/// Sink classes a sink event represents, resolving `CallArg` through the
/// callee's current parameter-sink summary (transitive flows).
fn classes_of(kind: &SinkKind, param_sinks: &[ParamSinks]) -> Vec<SinkClass> {
    match kind {
        SinkKind::Alloc(_) => vec![SinkClass::Alloc],
        SinkKind::Index => vec![SinkClass::Index],
        SinkKind::Div => vec![SinkClass::Div],
        SinkKind::Arith(_) => vec![SinkClass::Arith],
        SinkKind::CallArg { callee, index } => param_sinks
            .get(*callee)
            .map(|s| {
                s.iter()
                    .filter(|(p, _)| p == index)
                    .map(|&(_, c)| c)
                    .collect()
            })
            .unwrap_or_default(),
        SinkKind::KnobSet { .. } => Vec::new(),
    }
}

fn arith_name(op: &str) -> &'static str {
    match op {
        "+" => "add",
        "-" => "sub",
        "*" => "mul",
        _ => "shl",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_unions_sources_and_ands_sanitizers() {
        let mut a = Taint {
            sources: ["wire bytes".to_string()].into_iter().collect(),
            int: true,
            bounded: true,
            nonzero: true,
        };
        let b = Taint {
            sources: ["env var".to_string()].into_iter().collect(),
            int: false,
            bounded: false,
            nonzero: true,
        };
        a.merge(&b);
        assert_eq!(a.sources.len(), 2);
        assert!(a.int);
        assert!(!a.bounded);
        assert!(a.nonzero);
    }

    #[test]
    fn param_sources_parse_indexes() {
        let t = Taint {
            sources: ["param#2".to_string(), "wire bytes".to_string()]
                .into_iter()
                .collect(),
            ..Taint::default()
        };
        assert_eq!(t.param_sources(), vec![2]);
        assert_eq!(t.real_sources(), vec!["wire bytes"]);
    }
}
