//! Integration: the paper's central comparative claim — under heavy production
//! noise, Centroid Learning converges where vanilla Bayesian Optimization and FLOW2
//! struggle (Figures 2 vs 10) — verified on the synthetic function at test scale.

use optimizers::bo::BayesOpt;
use optimizers::env::{Environment, SyntheticEnv};
use optimizers::flow2::Flow2;
use optimizers::tuner::Tuner;
use rockhopper_repro::rockhopper::RockhopperTuner;

/// Median final *executed-configuration* performance across seeds.
fn final_median<T: Tuner>(
    mut make: impl FnMut(&SyntheticEnv, u64) -> T,
    seeds: std::ops::Range<u64>,
    iters: usize,
) -> f64 {
    let finals: Vec<f64> = seeds
        .map(|seed| {
            let mut env = SyntheticEnv::high_noise_constant(seed);
            let mut tuner = make(&env, seed);
            let mut tail = Vec::new();
            for t in 0..iters {
                let p = tuner.suggest(&env.context());
                if t + 10 >= iters {
                    tail.push(env.normed_performance(&p));
                }
                let o = env.run(&p);
                tuner.observe(&p, &o);
            }
            ml::stats::mean(&tail)
        })
        .collect();
    ml::stats::median(&finals).expect("at least one replication")
}

#[test]
fn centroid_learning_beats_bo_and_flow2_under_high_noise() {
    let iters = 120;
    let cl = final_median(
        |env, s| {
            RockhopperTuner::builder(env.space().clone())
                .guardrail(None)
                .seed(s)
                .build()
        },
        0..8,
        iters,
    );
    let bo = final_median(|env, s| BayesOpt::new(env.space().clone(), s), 0..8, iters);
    let flow2 = final_median(|env, s| Flow2::new(env.space().clone(), s), 0..8, iters);

    assert!(cl < bo, "CL {cl:.3} must beat BO {bo:.3} under high noise");
    assert!(
        cl < flow2 * 1.05,
        "CL {cl:.3} should not lose to FLOW2 {flow2:.3}"
    );
    assert!(cl < 2.0, "CL should actually converge: {cl:.3}");
}

#[test]
fn centroid_learning_avoids_catastrophic_proposals() {
    // Regression avoidance (§4.3): across a whole noisy run, CL must never execute
    // a configuration that is drastically worse than the default, while BO's global
    // proposals routinely are.
    let mut worst_cl: f64 = 0.0;
    let mut worst_bo: f64 = 0.0;
    for seed in 0..6 {
        let mut env = SyntheticEnv::high_noise_constant(seed);
        let default_perf = env.normed_performance(&env.space().default_point());
        let mut cl = RockhopperTuner::builder(env.space().clone())
            .guardrail(None)
            .seed(seed)
            .build();
        for _ in 0..80 {
            let p = cl.suggest(&env.context());
            worst_cl = worst_cl.max(env.normed_performance(&p) / default_perf);
            let o = env.run(&p);
            cl.observe(&p, &o);
        }
        let mut env = SyntheticEnv::high_noise_constant(seed + 50);
        let mut bo = BayesOpt::new(env.space().clone(), seed);
        for _ in 0..80 {
            let p = bo.suggest(&env.context());
            worst_bo = worst_bo.max(env.normed_performance(&p) / default_perf);
            let o = env.run(&p);
            bo.observe(&p, &o);
        }
    }
    assert!(
        worst_cl < worst_bo,
        "CL's worst proposal ({worst_cl:.2}x default) must be safer than BO's ({worst_bo:.2}x)"
    );
}
