#![forbid(unsafe_code)]

//! `rockpool` — a std-only scoped-thread work pool whose results are
//! **bit-identical to serial execution** for every thread count.
//!
//! The whole stack leans on seeded determinism (same seed ⇒ same History,
//! same event trace, same fault sequence), so parallelism is only admissible
//! under a strict contract (DESIGN.md §7):
//!
//! 1. **Tasks are index-addressed.** Work is a pure function of the *stable
//!    task index* `0..n` and the input item, never of which worker picked it
//!    up or in what order. RNG streams are derived with [`split_seed`] on the
//!    task index — never on pool-slot order.
//! 2. **Reduction is ordered.** Results land in a slot per index and are
//!    returned as `Vec<R>` in index order; callers fold left-to-right exactly
//!    as a serial loop would.
//! 3. **Thread count is irrelevant to the answer.** `RH_THREADS=1` and
//!    `RH_THREADS=64` must produce byte-identical output; the pool only
//!    changes wall-clock time. `tests/determinism.rs` enforces this end to
//!    end across fault regimes.
//!
//! Workers are `std::thread::scope` threads pulling indices from a shared
//! atomic counter (an index-sharded work queue — no channels, no external
//! deps). A panic inside a task is propagated to the caller, like the serial
//! loop it replaces.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable selecting the worker count for [`Pool::from_env`].
pub const THREADS_ENV: &str = "RH_THREADS";

/// Upper bound on workers: beyond this, scoped-spawn overhead dwarfs any win.
const MAX_THREADS: usize = 64;

/// Tasks-per-pool threshold under which [`Pool::run`] stays inline: spawning
/// costs more than it buys for tiny batches.
const MIN_PARALLEL_TASKS: usize = 2;

/// The worker count [`Pool::from_env`] resolves right now: `RH_THREADS` when
/// set to a positive integer, else the machine's available parallelism.
/// Read on every call — tests flip the variable between runs.
pub fn configured_threads() -> usize {
    let from_env = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let n = from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    n.min(MAX_THREADS)
}

/// Derive an independent RNG seed for task `task_index` from a run seed.
///
/// This is the *only* sanctioned way to give parallel tasks randomness: the
/// stream depends on the stable task index, so task 3 draws the same numbers
/// whether it runs first on an 8-thread pool or last on a serial one. The
/// mix is a SplitMix64 finalizer over `seed ⊕ φ·(index+1)`, so neighbouring
/// indices land in unrelated streams.
pub fn split_seed(seed: u64, task_index: u64) -> u64 {
    let phi: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = seed ^ task_index.wrapping_add(1).wrapping_mul(phi);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-width scoped-thread pool. Creating one is free — threads are
/// spawned per [`Pool::run`]/[`Pool::map`] call inside a `std::thread::scope`
/// and always joined before the call returns, so no pool thread ever outlives
/// its work (nothing detaches).
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to `1..=64`).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// A pool sized by `RH_THREADS` / available parallelism (see
    /// [`configured_threads`]).
    pub fn from_env() -> Pool {
        Pool::new(configured_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `n_tasks` index-addressed tasks and return their results in index
    /// order. `f(i)` must be a pure function of `i` (derive randomness with
    /// [`split_seed`], never from shared mutable state), which is exactly
    /// what makes the output independent of the thread count.
    ///
    /// With one worker — or fewer than two tasks — this is a plain serial
    /// loop, no threads involved.
    pub fn run<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n_tasks < MIN_PARALLEL_TASKS {
            return (0..n_tasks).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n_tasks);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n_tasks);
        slots.resize_with(n_tasks, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (i, r) in produced {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(r);
                            }
                        }
                    }
                    // A task panicked: surface it on the caller exactly as
                    // the serial loop would have.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Every index in 0..n_tasks was claimed exactly once and its worker
        // joined cleanly above, so every slot is filled.
        slots.into_iter().flatten().collect()
    }

    /// Map `f` over `items` with stable indices, results in item order —
    /// the parallel drop-in for `items.iter().enumerate().map(..).collect()`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| match items.get(i) {
            Some(item) => f(i, item),
            // Unreachable: run() only hands out i < items.len().
            None => f(i, &items[items.len() - 1]),
        })
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_index_order_for_every_width() {
        let expect: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = Pool::new(threads).run(97, |i| i * 3);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_passes_stable_indices_and_items() {
        let items: Vec<u64> = (0..40).map(|i| i * 7).collect();
        for threads in [1, 4] {
            let got = Pool::new(threads).map(&items, |i, &v| (i, v));
            for (i, (idx, v)) in got.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*v, items[i]);
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs_stay_inline() {
        let pool = Pool::new(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 5), vec![5]);
        assert_eq!(pool.map::<u8, u8, _>(&[], |_, &v| v), Vec::<u8>::new());
    }

    #[test]
    fn split_seed_is_stable_and_spreads() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        // Neighbouring indices must not collide or correlate trivially.
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a ^ b, split_seed(42, 2) ^ split_seed(42, 3));
    }

    #[test]
    fn thread_count_never_changes_seeded_results() {
        // The contract in one test: per-task RNG streams derived by index
        // produce identical output on every pool width.
        let work = |i: usize| {
            let mut state = split_seed(0xDEAD_BEEF, i as u64);
            let mut acc = 0u64;
            for _ in 0..100 {
                state = split_seed(state, 1);
                acc = acc.wrapping_add(state);
            }
            acc
        };
        let serial = Pool::new(1).run(64, work);
        for threads in [2, 4, 8] {
            assert_eq!(Pool::new(threads).run(64, work), serial);
        }
    }

    #[test]
    fn clamps_thread_counts() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(10_000).threads(), 64);
    }

    #[test]
    fn env_override_is_read_per_call() {
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(configured_threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        let fallback = configured_threads();
        assert!(fallback >= 1);
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn panics_propagate_like_serial() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).run(16, |i| {
                assert!(i != 7, "task 7 exploded");
                i
            })
        });
        assert!(caught.is_err());
    }
}
