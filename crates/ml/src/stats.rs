//! Small statistics helpers shared across the workspace: percentiles, summary bands
//! for convergence plots, seeded normal deviates (Box–Muller), and total-order float
//! comparison helpers, avoiding any dependency beyond `rand`.
//!
//! Float ordering goes through [`total_cmp_f64`] / [`nan_safe_min_by`] /
//! [`nan_safe_max_by`] so NaN can never panic a comparator or win a selection;
//! aggregations over possibly-empty inputs return `Option` instead of NaN.

use std::cmp::Ordering;

use rand::{Rng, RngExt};

/// Total-order comparison for `f64`, suitable for `sort_by`/`min_by`/`max_by`
/// closures: `xs.sort_by(|a, b| total_cmp_f64(a, b))`. Unlike
/// `partial_cmp(..).unwrap()`, never panics; NaN sorts after every number.
pub(crate) fn total_cmp_f64(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// Index of the item whose key is smallest, ignoring NaN keys entirely.
/// `None` when `items` is empty or every key is NaN.
pub fn nan_safe_min_by<T>(items: &[T], key: impl Fn(&T) -> f64) -> Option<usize> {
    nan_safe_select(items, key, Ordering::Less)
}

/// Index of the item whose key is largest, ignoring NaN keys entirely.
/// `None` when `items` is empty or every key is NaN.
// rhlint:allow(dead-pub): kept for symmetry with nan_safe_min_by
pub fn nan_safe_max_by<T>(items: &[T], key: impl Fn(&T) -> f64) -> Option<usize> {
    nan_safe_select(items, key, Ordering::Greater)
}

fn nan_safe_select<T>(items: &[T], key: impl Fn(&T) -> f64, want: Ordering) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        if k.is_nan() {
            continue;
        }
        match best {
            Some((_, bk)) if k.total_cmp(&bk) != want => {}
            _ => best = Some((i, k)),
        }
    }
    best.map(|(i, _)| i)
}

/// Draw a standard-normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from zero so ln() stays finite.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw a normal deviate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation percentile, `q ∈ [0, 100]`. `None` on empty input.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(total_cmp_f64);
    percentile_of_sorted(&sorted, q)
}

/// Percentile of an already-sorted (ascending) slice. `None` on empty input.
pub(crate) fn percentile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    let first = sorted.first().copied()?;
    if sorted.len() == 1 {
        return Some(first);
    }
    let q = q.clamp(0.0, 100.0);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    let lo_v = sorted.get(lo).copied()?;
    let hi_v = sorted.get(hi).copied()?;
    Some(lo_v + frac * (hi_v - lo_v))
}

/// Median (50th percentile). `None` on empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// A `(p5, median, p95)` band — the summary the paper plots for every convergence
/// figure (solid median line plus a 5th–95th percentile shaded region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// 5th percentile.
    pub p5: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Band {
    /// Compute the band from raw samples. `None` when `xs` is empty.
    pub fn from_samples(xs: &[f64]) -> Option<Band> {
        let mut sorted = xs.to_vec();
        sorted.sort_by(total_cmp_f64);
        Some(Band {
            p5: percentile_of_sorted(&sorted, 5.0)?,
            p50: percentile_of_sorted(&sorted, 50.0)?,
            p95: percentile_of_sorted(&sorted, 95.0)?,
        })
    }
}

/// Per-iteration bands across replicated runs: `runs[r][t]` is the metric of run `r`
/// at iteration `t`. Runs shorter than the longest run contribute only to the
/// iterations they cover.
pub fn bands_per_iteration(runs: &[Vec<f64>]) -> Vec<Band> {
    let horizon = runs.iter().map(Vec::len).max().unwrap_or(0);
    (0..horizon)
        .filter_map(|t| {
            let at_t: Vec<f64> = runs.iter().filter_map(|r| r.get(t).copied()).collect();
            // Non-empty for every t < horizon: the longest run covers it.
            Band::from_samples(&at_t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.1, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 2.0).abs() < 0.1, "std {}", std_dev(&xs));
    }

    #[test]
    fn percentile_endpoints() {
        let xs = vec![3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(3.0));
        assert_eq!(median(&xs), Some(2.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), Some(2.5));
        assert_eq!(percentile(&xs, 75.0), Some(7.5));
    }

    #[test]
    fn percentile_empty_is_none_singleton_is_value() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
    }

    #[test]
    fn band_ordering_holds() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let b = Band::from_samples(&xs).unwrap();
        assert!(b.p5 <= b.p50 && b.p50 <= b.p95);
        assert_eq!(b.p50, 50.0);
        assert_eq!(Band::from_samples(&[]), None);
    }

    #[test]
    fn bands_per_iteration_handles_ragged_runs() {
        let runs = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0]];
        let bands = bands_per_iteration(&runs);
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[0].p50, 1.5);
        assert_eq!(bands[2].p50, 3.0); // only the longer run reaches t=2
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn nan_safe_selection_skips_nan_keys() {
        let xs = [f64::NAN, 3.0, 1.0, 2.0];
        assert_eq!(nan_safe_min_by(&xs, |x| *x), Some(2));
        assert_eq!(nan_safe_max_by(&xs, |x| *x), Some(1));
        assert_eq!(nan_safe_min_by(&[f64::NAN; 3], |x| *x), None);
        assert_eq!(nan_safe_min_by::<f64>(&[], |x| *x), None);
    }

    #[test]
    fn nan_safe_min_prefers_first_of_equal_keys() {
        let xs = [(0, 1.0), (1, 1.0), (2, 2.0)];
        assert_eq!(nan_safe_min_by(&xs, |x| x.1), Some(0));
    }

    #[test]
    fn total_cmp_orders_nan_last() {
        let mut xs = vec![2.0, f64::NAN, 1.0];
        xs.sort_by(total_cmp_f64);
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[1], 2.0);
        assert!(xs[2].is_nan());
    }
}
