//! `cargo run -p bench --bin serve_loadgen -- [--quick | --zipf | --cold-start]
//! [--seed N] [--addr HOST:PORT] [--out PATH] [--shards N]
//! [--shard-capacity N] [--zipf-signatures N] [--skew S]`
//!
//! Drive a rockserve endpoint with a seeded open-loop fleet of concurrent
//! clients sending a mixed `Suggest`/`Report`/`Health`/`Metrics` schedule,
//! then write the `BENCH_serve.json` baseline. Without `--addr` the server is
//! spawned in-process on an ephemeral port and drain-shutdown is part of the
//! measurement; with `--addr` an already-running server is driven and left
//! running. `--zipf` switches to the multi-tenant preset (zipfian signatures
//! over a 100k space, 4 shards, a small per-shard tuner LRU, durable state in
//! a temp dir so evicted tuners restore from rockdur sidecars).
//! `--cold-start` switches to the retrieval preset: fresh zipf-tail
//! signatures served against a pre-warmed retrieval corpus, so cold
//! evaluations transfer instead of exploring (the `retrieval` block of the
//! report carries the hit counters).
//! `--zipf-signatures`/`--skew`/`--shards`/`--shard-capacity` override any
//! preset's knobs piecemeal. Exits non-zero on any protocol error or an
//! unclean drain.

use std::net::ToSocketAddrs;
use std::process::ExitCode;

use bench::serve::{self, ServeBenchConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut zipf = false;
    let mut cold_start = false;
    let mut seed = 42u64;
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut shard_capacity: Option<usize> = None;
    let mut zipf_signatures: Option<u64> = None;
    let mut skew: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--zipf" => zipf = true,
            "--cold-start" => cold_start = true,
            "--seed" => {
                let Some(v) = args.next() else {
                    return usage("--seed needs an integer");
                };
                seed = v.parse().unwrap_or(42);
            }
            "--addr" => {
                let Some(v) = args.next() else {
                    return usage("--addr needs HOST:PORT");
                };
                addr = Some(v);
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage("--out needs a path");
                };
                out = Some(v);
            }
            "--shards" => {
                let Some(v) = args.next() else {
                    return usage("--shards needs an integer");
                };
                shards = v.parse().ok();
            }
            "--shard-capacity" => {
                let Some(v) = args.next() else {
                    return usage("--shard-capacity needs an integer");
                };
                shard_capacity = v.parse().ok();
            }
            "--zipf-signatures" => {
                let Some(v) = args.next() else {
                    return usage("--zipf-signatures needs an integer");
                };
                zipf_signatures = v.parse().ok();
            }
            "--skew" => {
                let Some(v) = args.next() else {
                    return usage("--skew needs a float");
                };
                skew = v.parse().ok();
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if [quick, zipf, cold_start].iter().filter(|&&f| f).count() > 1 {
        return usage("--quick, --zipf, and --cold-start are mutually exclusive presets");
    }
    let mut cfg = if zipf {
        ServeBenchConfig::zipf(seed)
    } else if cold_start {
        ServeBenchConfig::cold_start(seed)
    } else if quick {
        ServeBenchConfig::quick(seed)
    } else {
        ServeBenchConfig::full(seed)
    };
    if let Some(n) = shards {
        cfg.shards = n;
    }
    if let Some(n) = shard_capacity {
        cfg.shard_capacity = n;
    }
    if let Some(n) = zipf_signatures {
        cfg.zipf_signatures = n;
    }
    if let Some(s) = skew {
        cfg.zipf_skew = s;
    }

    let report = match &addr {
        Some(spec) => {
            let Some(resolved) = spec
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
            else {
                return usage(&format!("cannot resolve --addr {spec}"));
            };
            serve::run_serve_bench_against(resolved, &cfg)
        }
        None if cold_start => {
            // The cold-start preset needs a pre-warmed retrieval corpus on
            // disk; build it in a throwaway dir and serve against it.
            let dir = std::env::temp_dir().join(format!(
                "serve_loadgen-corpus-{seed}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let result = std::fs::create_dir_all(&dir)
                .and_then(|()| serve::run_serve_bench_coldstart(&cfg, &dir));
            let _ = std::fs::remove_dir_all(&dir);
            result
        }
        None if zipf => {
            // The zipf preset's whole point is LRU pressure + sidecar
            // restore, which needs a durable state dir; use a throwaway one.
            let dir = std::env::temp_dir()
                .join(format!("serve_loadgen-zipf-{seed}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let result = std::fs::create_dir_all(&dir)
                .and_then(|()| serve::run_serve_bench_durable(&cfg, &dir));
            let _ = std::fs::remove_dir_all(&dir);
            result
        }
        None => serve::run_serve_bench(&cfg),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_loadgen: bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} lanes x {} frames = {} requests in {:.1}ms ({:.0} rps)",
        report.clients,
        cfg.requests_per_client,
        report.requests_total,
        report.wall_ms,
        report.throughput_rps
    );
    println!(
        "latency p50/p95/p99: {}/{}/{} us | batch_max {} | {} backend evals for {} suggests ({} coalesced)",
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.batch_max,
        report.backend_evals,
        report.sent.0,
        report.coalesced_hits
    );
    println!(
        "overloaded: {} | protocol errors: {} | clean drain: {} | fingerprint {:016x}",
        report.overloaded, report.protocol_errors, report.clean_drain, report.suggest_fingerprint
    );
    if report.corpus_entries > 0 || report.cold_hits > 0 || report.transfer_served > 0 {
        println!(
            "retrieval: {} corpus entries | cold hits {} / misses {} | transfer served {} | seeded {}",
            report.corpus_entries,
            report.cold_hits,
            report.cold_misses,
            report.transfer_served,
            report.transfer_seeded
        );
    }
    if report.shards > 1 || report.shard_capacity > 0 || report.zipf_signatures > 0 {
        println!(
            "sharding: {} shard(s), capacity {} | resident {} | evictions {} | restored {}",
            report.shards,
            report.shard_capacity,
            report.resident_tuners,
            report.tuner_evictions,
            report.evicted_restored
        );
    }

    let path = out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(serve::serve_out_path);
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if report.protocol_errors > 0 {
        eprintln!(
            "FAIL: {} protocol error(s) under load",
            report.protocol_errors
        );
        return ExitCode::FAILURE;
    }
    if !report.clean_drain {
        eprintln!("FAIL: the server did not drain cleanly");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("serve_loadgen: {problem}");
    eprintln!(
        "usage: serve_loadgen [--quick | --zipf | --cold-start] [--seed N] [--addr HOST:PORT] \
         [--out PATH] [--shards N] [--shard-capacity N] [--zipf-signatures N] [--skew S]"
    );
    ExitCode::from(2)
}
