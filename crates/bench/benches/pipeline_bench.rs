//! Pipeline throughput: event-log serialization, ETL extraction, storage put/get,
//! and tuner-state checkpointing — the paths the backend exercises per application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pipeline::etl::extract_rows_from_jsonl;
use pipeline::storage::Storage;
use sparksim::config::SparkConf;
use sparksim::event::to_jsonl;
use sparksim::noise::NoiseSpec;
use sparksim::simulator::Simulator;

/// One application's event log: 20 query executions of TPC-H Q3.
fn sample_log() -> String {
    let sim = Simulator::default_pool(NoiseSpec::low());
    let plan = workloads::tpch::query(3, 1.0);
    let conf = SparkConf::default();
    let mut events = Vec::new();
    for i in 0..20 {
        let run = sim.execute(&plan, &conf, i);
        events.extend(sim.events_for_run("app", "art", 7, &plan, &conf, vec![1.0; 10], &run));
    }
    to_jsonl(&events)
}

fn bench_etl(c: &mut Criterion) {
    let log = sample_log();
    c.bench_function("etl_extract_20_runs", |b| {
        b.iter(|| extract_rows_from_jsonl(black_box(&log)))
    });
}

fn bench_storage(c: &mut Criterion) {
    let log = sample_log().into_bytes();
    let storage = Storage::new();
    let token = storage.issue_token("", true, u64::MAX);
    let mut i = 0u64;
    c.bench_function("storage_put_event_file", |b| {
        b.iter_batched(
            || {
                i += 1;
                format!("events/app-{i}/events.jsonl")
            },
            |path| storage.put(&token, &path, log.clone()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    storage.put(&token, "events/hot/events.jsonl", log).unwrap();
    c.bench_function("storage_get_event_file", |b| {
        b.iter(|| {
            storage
                .get(&token, black_box("events/hot/events.jsonl"))
                .unwrap()
        })
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    use optimizers::space::ConfigSpace;
    use optimizers::tuner::{Outcome, Tuner};
    use rockhopper::RockhopperTuner;

    let space = ConfigSpace::query_level();
    let mut tuner = RockhopperTuner::builder(space.clone()).seed(1).build();
    let ctx = optimizers::tuner::TuningContext {
        embedding: vec![0.0; 10],
        expected_data_size: 1e6,
        iteration: 0,
    };
    for i in 0..60 {
        let p = tuner.suggest(&ctx);
        tuner.observe(
            &p,
            &Outcome {
                elapsed_ms: 100.0 + (i % 9) as f64,
                data_size: 1e6,
                kind: optimizers::tuner::ObservationKind::Measured,
            },
        );
    }
    c.bench_function("tuner_snapshot_to_json_60_obs", |b| {
        b.iter(|| serde_json::to_vec(&tuner.snapshot()).unwrap())
    });
    let bytes = serde_json::to_vec(&tuner.snapshot()).unwrap();
    c.bench_function("tuner_restore_from_json", |b| {
        b.iter(|| {
            let state: rockhopper::tuner::TunerState =
                serde_json::from_slice(black_box(&bytes)).unwrap();
            RockhopperTuner::restore(space.clone(), state, None)
        })
    });
}

criterion_group!(benches, bench_etl, bench_storage, bench_checkpoint);
criterion_main!(benches);
