#![forbid(unsafe_code)]

//! Tuning infrastructure and baseline optimizers.
//!
//! This crate owns the pieces every tuner (including Rockhopper's Centroid Learning,
//! built on top in the `rockhopper` crate) shares:
//!
//! - [`space::ConfigSpace`] — typed, bounded, log-scale-aware configuration space over
//!   the Spark knobs, with normalization, clipping, neighborhoods and grids,
//! - [`tuner::Tuner`] — the suggest/observe interface of an online tuner,
//! - [`env`] — executable environments: [`env::QueryEnv`] (a plan on the Spark
//!   simulator) and [`env::SyntheticEnv`] (the paper's §6.1 convex function),
//! - the baselines the paper compares against: [`bo::BayesOpt`] (GP + Expected
//!   Improvement), [`cbo::ContextualBO`] (embedding context + warm start, §6.2),
//!   [`flow2::Flow2`] (FLAML's frugal direct search), [`hillclimb::HillClimb`],
//!   [`random::RandomSearch`], [`sampling`] (random/grid/Latin-hypercube generation
//!   for the flighting pipeline) and [`expert::SimulatedExpert`] (the §2.2 manual
//!   tuning study).

pub mod acquisition;
pub mod bandit;
pub mod batch;
pub mod bo;
pub mod categorical;
pub mod cbo;
pub mod env;
pub mod expert;
pub mod flow2;
pub mod hillclimb;
pub mod objective;
pub mod random;
pub mod sampling;
pub mod space;
pub mod tuner;

pub use env::{CachedEnv, QueryEnv, SyntheticEnv};
pub use space::{ConfigSpace, Dim};
pub use tuner::{Outcome, Tuner, TuningContext};
