#![forbid(unsafe_code)]

//! Workload embeddings (paper §4.1).
//!
//! An embedding turns a compile-time execution plan into a fixed-length vector that
//! serves as the *context* of the contextual surrogate model
//! `f([workload embedding, configs]) = perf`, enabling transfer learning from
//! benchmark workloads to unseen customer queries. Each embedding comprises:
//!
//! 1. the estimated cardinality of the root operator,
//! 2. the total input cardinality over all leaf operators,
//! 3. operator-occurrence counts — either *plain* per-type counts (the prior-work
//!    baseline the paper compares against, from Phoebe \[53\]) or *virtual-operator*
//!    counts (the paper's contribution, Figure 4), where each physical operator type
//!    is subdivided by bucketed input size and output/input ratio.
//!
//! [`signature`] provides the stable per-plan hash ("query signature", §4.2) that
//! keys per-query models: it covers plan *structure*, not cardinalities, so the same
//! recurrent query keeps its signature as its data grows.

pub mod featurize;
pub mod signature;
pub mod virtual_ops;

pub use featurize::{EmbeddingScheme, WorkloadEmbedder};
pub use signature::query_signature;
pub use virtual_ops::VirtualOpScheme;
