//! Regenerates the paper's `fig09_pseudo_surrogates` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig09_pseudo_surrogates::run(scale).print();
}
