//! Calibration tests: the cost model must obey the scaling laws real Spark obeys.
//! These pin the simulator's *shape* — the only thing the reproduction's conclusions
//! rest on (DESIGN.md §1).

use sparksim::cluster::ClusterSpec;
use sparksim::config::{SparkConf, MIB};
use sparksim::cost::CostParams;
use sparksim::noise::NoiseSpec;
use sparksim::physical::plan_physical;
use sparksim::plan::PlanNode;
use sparksim::scheduler::schedule;
use sparksim::simulator::Simulator;

fn time(plan: &PlanNode, conf: &SparkConf) -> f64 {
    let phys = plan_physical(plan, conf);
    schedule(&phys, conf, &ClusterSpec::medium(), &CostParams::default()).total_ms
}

/// Scan-dominated work saturated past the cluster's parallelism scales ~linearly in
/// input size.
#[test]
fn saturated_scans_scale_linearly() {
    let conf = SparkConf::default();
    // Big enough that tasks ≫ slots at both sizes.
    let t1 = time(&PlanNode::scan("t", 2e8, 100.0), &conf); // 20 GB
    let t4 = time(&PlanNode::scan("t", 8e8, 100.0), &conf); // 80 GB
    let ratio = t4 / t1;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4x data should be ~4x time when saturated: {ratio:.2}"
    );
}

/// Below saturation, extra data is absorbed by idle slots: sub-linear scaling.
#[test]
fn unsaturated_scans_scale_sublinearly() {
    let conf = SparkConf::default(); // 128 MiB splits, 32 slots granted
    let t1 = time(&PlanNode::scan("t", 1e6, 100.0), &conf); // 100 MB → 1 task
    let t8 = time(&PlanNode::scan("t", 8e6, 100.0), &conf); // 800 MB → 7 tasks, 1 wave
    assert!(t8 / t1 < 4.0, "one wave either way: ratio {:.2}", t8 / t1);
}

/// Sorting costs super-linearly in rows (the n·log n term) — measured on the sort
/// stage itself, where fixed overheads can't mask the log factor.
#[test]
fn sort_stage_cost_grows_superlinearly_per_row() {
    let cluster = ClusterSpec::medium();
    let cost = CostParams::default();
    let sort_stage_ms = |rows: f64| {
        let mut c = SparkConf::default();
        c.shuffle_partitions = 8.0; // pinned: per-task row counts scale with input
        let plan = PlanNode::scan("t", rows, 50.0).sort();
        let phys = plan_physical(&plan, &c);
        let timing = schedule(&phys, &c, &cluster, &cost);
        // The sort happens in the (last) shuffle stage.
        timing.stages.last().expect("sort stage exists").stage_ms
    };
    let per_row_small = sort_stage_ms(1e7) / 1e7;
    let per_row_big = sort_stage_ms(3.2e8) / 3.2e8;
    assert!(
        per_row_big > per_row_small,
        "per-row sort-stage cost must grow with scale: {per_row_small:.3e} vs {per_row_big:.3e}"
    );
}

/// Broadcast joins beat sort-merge when the build side is small.
#[test]
fn broadcast_beats_smj_for_small_dimensions() {
    let fact = PlanNode::scan("fact", 1e8, 100.0);
    let dim = PlanNode::scan("dim", 5e4, 100.0); // 5 MB — broadcastable
    let plan = fact.fk_join(dim, 1.0).hash_aggregate(0.001);
    let mut bc = SparkConf::default(); // 10 MB threshold: broadcasts
    let mut smj = SparkConf::default();
    smj.auto_broadcast_join_threshold = -1.0;
    bc.auto_broadcast_join_threshold = 10.0 * MIB;
    assert!(
        time(&plan, &bc) < time(&plan, &smj),
        "broadcast {} should beat SMJ {}",
        time(&plan, &bc),
        time(&plan, &smj)
    );
}

/// Broadcasting a huge build side backfires (distribution + memory pressure).
#[test]
fn broadcasting_huge_tables_backfires() {
    let fact = PlanNode::scan("fact", 1e8, 100.0);
    let big_dim = PlanNode::scan("dim", 3e7, 200.0); // 6 GB build side
    let plan = fact.fk_join(big_dim, 1.0).hash_aggregate(0.001);
    let mut force_bc = SparkConf::default();
    force_bc.auto_broadcast_join_threshold = 8000.0 * MIB;
    let mut smj = SparkConf::default();
    smj.auto_broadcast_join_threshold = -1.0;
    assert!(
        time(&plan, &smj) < time(&plan, &force_bc),
        "SMJ {} should beat forced broadcast {}",
        time(&plan, &smj),
        time(&plan, &force_bc)
    );
}

/// Doubling executors on an embarrassingly parallel saturated stage roughly halves it.
#[test]
fn executor_scaling_near_linear_when_saturated() {
    let plan = PlanNode::scan("t", 1e9, 100.0); // 100 GB, hundreds of tasks
    let cluster = ClusterSpec::large();
    let cost = CostParams::default();
    let t = |execs: f64| {
        let mut c = SparkConf::default();
        c.executor_instances = execs;
        let phys = plan_physical(&plan, &c);
        schedule(&phys, &c, &cluster, &cost).total_ms
    };
    let ratio = t(8.0) / t(32.0);
    assert!(
        (2.0..5.5).contains(&ratio),
        "4x executors should give ~4x speedup on saturated scans: {ratio:.2}"
    );
}

/// The noise-free simulator is monotone in data size for a fixed configuration.
#[test]
fn runtime_is_monotone_in_data_size() {
    let sim = Simulator::default_pool(NoiseSpec::none());
    let conf = SparkConf::default();
    let plan = PlanNode::scan("t", 1e7, 100.0)
        .filter(0.3)
        .hash_aggregate(0.01);
    let mut prev = 0.0;
    for scale in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let t = sim.true_time_ms(&plan.scaled(scale), &conf);
        assert!(
            t >= prev,
            "time dropped when data grew: {prev} -> {t} at {scale}x"
        );
        prev = t;
    }
}

/// Fixed overheads dominate tiny inputs: r/p falls as p grows — the §4.3 observation
/// motivating FIND_BEST v3.
#[test]
fn per_row_cost_amortizes_with_scale() {
    let sim = Simulator::default_pool(NoiseSpec::none());
    let conf = SparkConf::default();
    let plan = PlanNode::scan("t", 1e5, 100.0).hash_aggregate(0.01);
    let small = sim.true_time_ms(&plan, &conf) / 1e5;
    let large = sim.true_time_ms(&plan.scaled(100.0), &conf) / 1e7;
    assert!(
        large < small / 2.0,
        "per-row cost should amortize: {small:.2e} vs {large:.2e}"
    );
}
