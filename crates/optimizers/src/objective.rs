//! Tuning objectives beyond latency (§2.1: "all customers valued execution time, but
//! some teams with particularly large resource utilization or fixed budgets also
//! noted the importance of cost"). The paper lists multi-objective tuning as related
//! work (UDAO, AutoExecutor) and a direction; this module provides the scalarization
//! layer so any tuner in this workspace can optimize cost or a latency/cost blend
//! without modification — the objective maps an outcome to the scalar the tuner
//! minimizes.

use serde::{Deserialize, Serialize};
use sparksim::config::SparkConf;

use crate::tuner::Outcome;

/// What the tuner minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Wall-clock latency (the paper's production objective).
    Latency,
    /// Dollar cost: executor-hours × hourly price. Slower-but-smaller wins.
    Cost {
        /// Price per executor-hour (arbitrary currency units).
        price_per_executor_hour: f64,
    },
    /// Weighted blend: `w · normalized latency + (1 − w) · normalized cost`.
    /// Normalizers put both terms on comparable scales.
    Weighted {
        /// Latency weight in `[0, 1]`.
        latency_weight: f64,
        /// Latency that scores 1.0 (e.g. the default config's typical time), ms.
        latency_norm_ms: f64,
        /// Cost that scores 1.0.
        cost_norm: f64,
        /// Price per executor-hour.
        price_per_executor_hour: f64,
    },
}

impl Objective {
    /// Dollar cost of one run under a configuration.
    pub fn run_cost(conf: &SparkConf, elapsed_ms: f64, price_per_executor_hour: f64) -> f64 {
        let hours = elapsed_ms / 3_600_000.0;
        conf.executor_count() as f64 * hours * price_per_executor_hour
    }

    /// The scalar score of an outcome (lower is better).
    pub fn score(&self, conf: &SparkConf, outcome: &Outcome) -> f64 {
        match *self {
            Objective::Latency => outcome.elapsed_ms,
            Objective::Cost {
                price_per_executor_hour,
            } => Objective::run_cost(conf, outcome.elapsed_ms, price_per_executor_hour),
            Objective::Weighted {
                latency_weight,
                latency_norm_ms,
                cost_norm,
                price_per_executor_hour,
            } => {
                let w = latency_weight.clamp(0.0, 1.0);
                let lat = outcome.elapsed_ms / latency_norm_ms.max(1e-9);
                let cost = Objective::run_cost(conf, outcome.elapsed_ms, price_per_executor_hour)
                    / cost_norm.max(1e-12);
                w * lat + (1.0 - w) * cost
            }
        }
    }

    /// Rewrite an outcome so its `elapsed_ms` carries the objective score — the
    /// adapter that lets every existing [`crate::tuner::Tuner`] optimize this
    /// objective unchanged.
    pub fn scored_outcome(&self, conf: &SparkConf, outcome: &Outcome) -> Outcome {
        Outcome {
            elapsed_ms: self.score(conf, outcome),
            data_size: outcome.data_size,
            kind: outcome.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ms: f64) -> Outcome {
        Outcome::measured(ms, 1.0)
    }

    #[test]
    fn latency_objective_is_identity() {
        let conf = SparkConf::default();
        assert_eq!(Objective::Latency.score(&conf, &outcome(1234.0)), 1234.0);
    }

    #[test]
    fn cost_objective_prefers_fewer_executors_at_equal_time() {
        let obj = Objective::Cost {
            price_per_executor_hour: 2.0,
        };
        let mut small = SparkConf::default();
        small.executor_instances = 2.0;
        let mut big = SparkConf::default();
        big.executor_instances = 16.0;
        let o = outcome(3_600_000.0); // one hour
        assert_eq!(obj.score(&small, &o), 4.0); // 2 executors × 1 h × $2
        assert_eq!(obj.score(&big, &o), 32.0); // 16 executors × 1 h × $2
        assert!(obj.score(&small, &o) < obj.score(&big, &o));
    }

    #[test]
    fn cost_objective_can_prefer_slower_cheaper_runs() {
        // 2 executors for 2 h beats 16 executors for 0.5 h on cost, loses on latency.
        let obj = Objective::Cost {
            price_per_executor_hour: 1.0,
        };
        let mut small = SparkConf::default();
        small.executor_instances = 2.0;
        let mut big = SparkConf::default();
        big.executor_instances = 16.0;
        let slow = outcome(2.0 * 3_600_000.0);
        let fast = outcome(0.5 * 3_600_000.0);
        assert!(obj.score(&small, &slow) < obj.score(&big, &fast));
        assert!(Objective::Latency.score(&small, &slow) > Objective::Latency.score(&big, &fast));
    }

    #[test]
    fn weighted_blends_between_extremes() {
        let mk = |w: f64| Objective::Weighted {
            latency_weight: w,
            latency_norm_ms: 1000.0,
            cost_norm: 1.0,
            price_per_executor_hour: 3600.0 * 1000.0, // 1 unit per executor-ms
        };
        let mut conf = SparkConf::default();
        conf.executor_instances = 4.0;
        let o = outcome(1000.0);
        // w=1: pure normalized latency = 1.0; w=0: pure normalized cost = 4000.
        assert!((mk(1.0).score(&conf, &o) - 1.0).abs() < 1e-9);
        assert!((mk(0.0).score(&conf, &o) - 4000.0).abs() < 1e-6);
        let mid = mk(0.5).score(&conf, &o);
        assert!(mid > 1.0 && mid < 4000.0);
    }

    #[test]
    fn weight_is_clamped() {
        let obj = Objective::Weighted {
            latency_weight: 7.0,
            latency_norm_ms: 1.0,
            cost_norm: 1.0,
            price_per_executor_hour: 1.0,
        };
        let conf = SparkConf::default();
        // Clamped to w=1: pure latency / norm.
        assert!((obj.score(&conf, &outcome(5.0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scored_outcome_preserves_data_size() {
        let obj = Objective::Cost {
            price_per_executor_hour: 1.0,
        };
        let conf = SparkConf::default();
        let o = Outcome::measured(3_600_000.0, 42.0);
        let s = obj.scored_outcome(&conf, &o);
        assert_eq!(s.data_size, 42.0);
        assert_eq!(s.elapsed_ms, conf.executor_count() as f64);
    }
}
