//! A forward dataflow framework over [`Cfg`]s.
//!
//! Facts are elements of a powerset lattice (`BTreeSet<F>`, join = union —
//! a *may* analysis: a fact holds at a point if it holds on **some** path to
//! it). A [`Transfer`] maps one [`Event`] over a fact set in place: the
//! gen/kill of classic dataflow, e.g. `Acquire` gens a held-guard fact and
//! `Release` kills it.
//!
//! [`forward`] runs the standard worklist algorithm to a fixpoint. Fact sets
//! only grow at joins and transfer functions are monotone in practice, so the
//! fixpoint is reached in `O(blocks × facts)` rounds; a fuel bound caps the
//! iteration anyway so a pathological (non-monotone) transfer degrades into
//! an under-approximation instead of a hang — the same tolerance stance as
//! the parser.

use std::collections::BTreeSet;

use crate::cfg::{BlockId, Cfg, Event};

/// One event's effect on a fact set (gen/kill, applied in program order).
pub trait Transfer {
    /// Ordered fact type; sets of these form the lattice.
    type Fact: Clone + Ord;

    /// Apply `event` to `facts` in place.
    fn apply(&self, event: &Event, facts: &mut BTreeSet<Self::Fact>);
}

/// The fixpoint solution: the fact set *entering* each block.
pub struct Solution<F: Clone + Ord> {
    pub block_in: Vec<BTreeSet<F>>,
}

impl<F: Clone + Ord> Solution<F> {
    /// Replay one block's events from its in-set, calling `at_event` with the
    /// facts holding *immediately before* each event. This is how the lint
    /// passes localize a diagnostic to the exact line inside a block.
    pub fn walk_block<T>(
        &self,
        cfg: &Cfg,
        block: BlockId,
        transfer: &T,
        mut at_event: impl FnMut(&Event, &BTreeSet<F>),
    ) where
        T: Transfer<Fact = F>,
    {
        let Some(data) = cfg.blocks.get(block) else {
            return;
        };
        let mut facts = self.block_in.get(block).cloned().unwrap_or_default();
        for event in &data.events {
            at_event(event, &facts);
            transfer.apply(event, &mut facts);
        }
    }
}

/// Run the forward worklist algorithm to a fixpoint.
///
/// `entry_facts` seeds block 0 (normally empty: no guards held on entry).
pub fn forward<T: Transfer>(
    cfg: &Cfg,
    transfer: &T,
    entry_facts: BTreeSet<T::Fact>,
) -> Solution<T::Fact> {
    let n = cfg.blocks.len();
    let mut block_in: Vec<BTreeSet<T::Fact>> = vec![BTreeSet::new(); n];
    let mut block_out: Vec<BTreeSet<T::Fact>> = vec![BTreeSet::new(); n];
    if let Some(first) = block_in.first_mut() {
        *first = entry_facts;
    }

    let mut worklist: BTreeSet<BlockId> = (0..n).collect();
    // Each block re-enters the worklist only when a predecessor's out-set
    // grew; with union joins that happens at most O(total facts) times per
    // block. The fuel bound is a belt-and-braces cap on top.
    let mut fuel = 16 * n * n + 256;
    while let Some(&b) = worklist.iter().next() {
        worklist.remove(&b);
        if fuel == 0 {
            break;
        }
        fuel -= 1;

        let mut out = block_in[b].clone();
        for event in &cfg.blocks[b].events {
            transfer.apply(event, &mut out);
        }
        let changed = out != block_out[b];
        block_out[b] = out;
        if !changed {
            continue;
        }
        for &succ in &cfg.blocks[b].succs {
            let before = block_in[succ].len();
            let merged: BTreeSet<T::Fact> = block_in[succ].union(&block_out[b]).cloned().collect();
            if merged.len() != before {
                block_in[succ] = merged;
                worklist.insert(succ);
            }
        }
    }

    Solution { block_in }
}

/// A general abstract environment — richer than a powerset: interval maps,
/// taint maps, anything with a join. Unlike [`Transfer`]'s sets, these
/// lattices may have infinite ascending chains (intervals do), so the solver
/// switches from `join` to `widen` once a block has been joined into too many
/// times.
pub trait EnvLattice {
    type Env: Clone + PartialEq;

    /// Apply `event` to `env` in place.
    fn transfer(&self, event: &Event, env: &mut Self::Env);

    /// Join `incoming` into `acc` (least upper bound, in place).
    fn join(&self, acc: &mut Self::Env, incoming: &Self::Env);

    /// Accelerated join guaranteeing termination (defaults to `join`, which
    /// suffices for finite-height lattices like taint maps).
    fn widen(&self, acc: &mut Self::Env, incoming: &Self::Env) {
        self.join(acc, incoming);
    }
}

/// Fixpoint of an [`EnvLattice`] analysis: the environment entering each
/// block.
pub struct EnvSolution<E> {
    pub block_in: Vec<E>,
}

impl<E: Clone> EnvSolution<E> {
    /// Replay one block's events from its in-environment, calling `at_event`
    /// with the environment holding *immediately before* each event.
    pub fn walk_block<L>(
        &self,
        cfg: &Cfg,
        block: BlockId,
        lattice: &L,
        mut at_event: impl FnMut(&Event, &E),
    ) where
        L: EnvLattice<Env = E>,
    {
        let Some(data) = cfg.blocks.get(block) else {
            return;
        };
        let Some(mut env) = self.block_in.get(block).cloned() else {
            return;
        };
        for event in &data.events {
            at_event(event, &env);
            lattice.transfer(event, &mut env);
        }
    }
}

/// How many joins a block absorbs before the solver widens its in-set. Small
/// enough that loop-carried intervals stabilize fast, large enough that
/// ordinary diamond joins never widen.
const WIDEN_AFTER: u32 = 8;

/// Run the forward worklist algorithm over an [`EnvLattice`] to a fixpoint.
///
/// `entry` seeds block 0; `bottom` initializes every other block (the
/// identity of `join`, e.g. an unreachable marker or the empty map).
pub fn forward_env<L: EnvLattice>(
    cfg: &Cfg,
    lattice: &L,
    entry: L::Env,
    bottom: L::Env,
) -> EnvSolution<L::Env> {
    let n = cfg.blocks.len();
    let mut block_in: Vec<L::Env> = vec![bottom.clone(); n];
    let mut block_out: Vec<L::Env> = vec![bottom; n];
    let mut joins: Vec<u32> = vec![0; n];
    if let Some(first) = block_in.first_mut() {
        *first = entry;
    }

    let mut worklist: BTreeSet<BlockId> = (0..n).collect();
    // Same belt-and-braces stance as `forward`: widening makes the chain
    // finite, fuel caps a pathological transfer into under-approximation.
    let mut fuel = 16 * n * n + 256;
    while let Some(&b) = worklist.iter().next() {
        worklist.remove(&b);
        if fuel == 0 {
            break;
        }
        fuel -= 1;

        let mut out = block_in[b].clone();
        for event in &cfg.blocks[b].events {
            lattice.transfer(event, &mut out);
        }
        let changed = out != block_out[b];
        block_out[b] = out;
        if !changed {
            continue;
        }
        for &succ in &cfg.blocks[b].succs {
            if succ >= n {
                continue;
            }
            let mut merged = block_in[succ].clone();
            if joins[succ] >= WIDEN_AFTER {
                lattice.widen(&mut merged, &block_out[b]);
            } else {
                lattice.join(&mut merged, &block_out[b]);
            }
            if merged != block_in[succ] {
                joins[succ] += 1;
                block_in[succ] = merged;
                worklist.insert(succ);
            }
        }
    }

    EnvSolution { block_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;

    /// Held-guard toy lattice: facts are guard names.
    struct Guards;
    impl Transfer for Guards {
        type Fact = String;
        fn apply(&self, event: &Event, facts: &mut BTreeSet<String>) {
            match event {
                Event::Acquire { guard, .. } => {
                    facts.insert(guard.clone());
                }
                Event::Release { guard } => {
                    facts.remove(guard);
                }
                _ => {}
            }
        }
    }

    fn acquire(g: &str) -> Event {
        Event::Acquire {
            guard: g.into(),
            lock: format!("Lock.{g}"),
            line: 1,
        }
    }

    #[test]
    fn facts_flow_through_straight_line() {
        let mut b = CfgBuilder::new();
        b.push(acquire("g"));
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[cfg.exit].contains("g"));
    }

    #[test]
    fn release_kills_the_fact() {
        let mut b = CfgBuilder::new();
        b.push(acquire("g"));
        b.push(Event::Release { guard: "g".into() });
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[cfg.exit].is_empty());
    }

    #[test]
    fn join_is_union_may_analysis() {
        // if … { acquire g } — g may be held after the join.
        let mut b = CfgBuilder::new();
        let then_b = b.new_block();
        let join = b.new_block();
        b.edge(b.current(), then_b);
        b.edge(b.current(), join);
        b.set_current(then_b);
        b.push(acquire("g"));
        b.edge(then_b, join);
        b.set_current(join);
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[join].contains("g"));
    }

    #[test]
    fn loop_back_edge_reaches_fixpoint() {
        // loop { acquire g } — head sees g from the back edge.
        let mut b = CfgBuilder::new();
        let head = b.new_block();
        let after = b.new_block();
        b.edge(b.current(), head);
        b.set_current(head);
        b.push(acquire("g"));
        b.edge(head, head);
        b.edge(head, after);
        b.set_current(after);
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[head].contains("g"));
        assert!(sol.block_in[after].contains("g"));
    }

    /// Counting toy lattice with an infinite ascending chain: each `Acquire`
    /// increments, join is max. Without widening a loop never stabilizes;
    /// with it the solver saturates and terminates.
    struct Counter;
    impl EnvLattice for Counter {
        type Env = u64;
        fn transfer(&self, event: &Event, env: &mut u64) {
            if let Event::Acquire { .. } = event {
                *env = env.saturating_add(1);
            }
        }
        fn join(&self, acc: &mut u64, incoming: &u64) {
            *acc = (*acc).max(*incoming);
        }
        fn widen(&self, acc: &mut u64, incoming: &u64) {
            if *incoming > *acc {
                *acc = u64::MAX;
            }
        }
    }

    #[test]
    fn env_solver_widens_loop_carried_chains() {
        // loop { acquire } — the count grows every round until widening.
        let mut b = CfgBuilder::new();
        let head = b.new_block();
        let after = b.new_block();
        b.edge(b.current(), head);
        b.set_current(head);
        b.push(acquire("g"));
        b.edge(head, head);
        b.edge(head, after);
        b.set_current(after);
        let cfg = b.finish();
        let sol = forward_env(&cfg, &Counter, 0, 0);
        assert_eq!(sol.block_in[after], u64::MAX);
    }

    #[test]
    fn env_solver_joins_diamonds_without_widening() {
        // if … { acquire } — join of 1 and 0 is 1, no widening involved.
        let mut b = CfgBuilder::new();
        let then_b = b.new_block();
        let join = b.new_block();
        b.edge(b.current(), then_b);
        b.edge(b.current(), join);
        b.set_current(then_b);
        b.push(acquire("g"));
        b.edge(then_b, join);
        b.set_current(join);
        let cfg = b.finish();
        let sol = forward_env(&cfg, &Counter, 0, 0);
        assert_eq!(sol.block_in[join], 1);
    }

    #[test]
    fn walk_block_reports_facts_before_each_event() {
        let mut b = CfgBuilder::new();
        b.push(acquire("g"));
        b.push(Event::Blocking {
            what: "recv".into(),
            line: 2,
        });
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        let mut seen = Vec::new();
        sol.walk_block(&cfg, 0, &Guards, |event, facts| {
            if let Event::Blocking { .. } = event {
                seen.push(facts.clone());
            }
        });
        assert_eq!(seen.len(), 1);
        assert!(seen[0].contains("g"));
    }
}
