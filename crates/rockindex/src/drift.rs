//! Concept-drift detection over workload embeddings.
//!
//! A transferred neighbor set is only as good as the embedding it was
//! ranked against. When a workload's data scale shifts mid-stream (the
//! sparksim `DataSchedule` scenario), its plan-derived embedding moves and
//! the cached neighbors are stale. The detector tracks the last embedding
//! seen per signature and flags a relative L2 displacement above the
//! threshold, at which point the caller must re-rank against the index
//! with the fresh embedding.

use std::collections::BTreeMap;

/// Bound on tracked signatures; admitting a new signature at the bound
/// evicts the smallest tracked signature (deterministic, content-only).
const MAX_TRACKED_SIGNATURES: usize = 4096;

/// What one embedding observation means for a signature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DriftSignal {
    /// First embedding seen for the signature: nothing to compare against.
    Baseline,
    /// Displacement at or below the threshold — the neighbor set holds.
    Stable {
        /// Relative L2 displacement against the tracked embedding.
        relative_change: f64,
    },
    /// Displacement above the threshold — re-rank the neighbor set.
    Drifted {
        /// Relative L2 displacement against the tracked embedding.
        relative_change: f64,
    },
}

impl DriftSignal {
    /// Whether the caller should re-rank against the index.
    pub fn drifted(&self) -> bool {
        matches!(self, DriftSignal::Drifted { .. })
    }
}

/// Per-signature embedding tracker with a relative-displacement threshold.
pub struct DriftDetector {
    threshold: f64,
    last: BTreeMap<u64, Vec<f64>>,
}

impl DriftDetector {
    /// A detector firing when the embedding moves by more than `threshold`
    /// (relative L2 displacement; 0.2 means "a fifth of its own length").
    pub fn new(threshold: f64) -> DriftDetector {
        DriftDetector {
            threshold: threshold.max(0.0),
            last: BTreeMap::new(),
        }
    }

    /// Observe `signature`'s current embedding. On drift the tracked
    /// embedding is replaced, so the next observation compares against the
    /// post-shift baseline instead of re-firing forever.
    pub fn observe(&mut self, signature: u64, embedding: &[f64]) -> DriftSignal {
        match self.last.get(&signature) {
            None => {
                if self.last.len() >= MAX_TRACKED_SIGNATURES {
                    let evict = self.last.keys().next().copied();
                    if let Some(evict) = evict {
                        self.last.remove(&evict);
                    }
                }
                self.last.insert(signature, embedding.to_vec());
                DriftSignal::Baseline
            }
            Some(prev) => {
                let relative_change = relative_displacement(prev, embedding);
                if relative_change > self.threshold {
                    self.last.insert(signature, embedding.to_vec());
                    DriftSignal::Drifted { relative_change }
                } else {
                    DriftSignal::Stable { relative_change }
                }
            }
        }
    }

    /// Signatures currently tracked.
    pub fn tracked(&self) -> usize {
        self.last.len()
    }
}

/// `|a - b| / max(|a|, |b|)`, zero-padding the shorter vector; 0 when both
/// vectors are zero.
fn relative_displacement(a: &[f64], b: &[f64]) -> f64 {
    let dims = a.len().max(b.len());
    let mut diff_sq = 0.0;
    let mut a_sq = 0.0;
    let mut b_sq = 0.0;
    for i in 0..dims {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        diff_sq += (x - y) * (x - y);
        a_sq += x * x;
        b_sq += y * y;
    }
    let scale = a_sq.max(b_sq).sqrt();
    if scale <= 0.0 {
        return 0.0;
    }
    diff_sq.sqrt() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_then_stable_then_drift() {
        let mut detector = DriftDetector::new(0.2);
        assert_eq!(detector.observe(7, &[1.0, 0.0]), DriftSignal::Baseline);
        assert!(!detector.observe(7, &[1.0, 0.01]).drifted());
        assert!(detector.observe(7, &[0.0, 1.0]).drifted());
    }

    #[test]
    fn drift_rebaselines_instead_of_refiring() {
        let mut detector = DriftDetector::new(0.2);
        detector.observe(7, &[1.0, 0.0]);
        assert!(detector.observe(7, &[0.0, 1.0]).drifted());
        assert!(
            !detector.observe(7, &[0.0, 1.0]).drifted(),
            "the post-shift embedding is the new baseline"
        );
    }

    #[test]
    fn signatures_are_tracked_independently() {
        let mut detector = DriftDetector::new(0.2);
        detector.observe(1, &[1.0, 0.0]);
        assert_eq!(detector.observe(2, &[0.0, 1.0]), DriftSignal::Baseline);
        assert!(!detector.observe(1, &[1.0, 0.0]).drifted());
    }

    #[test]
    fn the_tracker_is_bounded() {
        let mut detector = DriftDetector::new(0.2);
        for sig in 0..(MAX_TRACKED_SIGNATURES as u64 + 10) {
            detector.observe(sig, &[1.0]);
        }
        assert!(detector.tracked() <= MAX_TRACKED_SIGNATURES);
    }
}
