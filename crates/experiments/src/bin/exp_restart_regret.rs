//! Regenerates the `exp_restart_regret` extension experiment (warm vs cold
//! backend restart over the post-restart request window). Pass `--quick`
//! for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_restart_regret::run(scale).print();
}
