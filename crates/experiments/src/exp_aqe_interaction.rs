//! **Extension: AQE × tuning interaction.** Production Fabric runs Spark with
//! Adaptive Query Execution enabled, which coalesces over-partitioned shuffles at
//! runtime. This experiment quantifies how AQE reshapes the `shuffle.partitions`
//! response curve (flattening the over-partitioning penalty while leaving
//! under-partitioning intact) and how much headroom is left for Rockhopper to tune
//! with AQE on vs off.

use optimizers::env::{Environment, QueryEnv};
use optimizers::space::ConfigSpace;
use optimizers::tuner::Tuner;
use rockhopper::RockhopperTuner;
use sparksim::noise::NoiseSpec;
use workloads::dynamic::DataSchedule;

use crate::harness::{write_csv, Scale, Summary};

/// Queries swept.
pub const QUERIES: [usize; 3] = [1, 5, 13];

/// Environment wrapper; AQE itself is applied per-execution below (the conf is
/// patched after the space materializes it, since the tuning space does not expose
/// the AQE knobs).
fn make_env(q: usize, sf: f64, seed: u64) -> QueryEnv {
    QueryEnv::new(
        workloads::tpcds::query(q, sf),
        NoiseSpec {
            fluctuation: 0.3,
            spike: 0.3,
        },
        DataSchedule::Constant { size: 1.0 },
        seed,
    )
}

/// Run the sweep + tuning comparison.
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 20.0,
        Scale::Quick => 2.0,
    };
    let iters = scale.pick(40, 8);
    let levels = [32.0, 128.0, 512.0, 2048.0, 8192.0];
    let space = ConfigSpace::query_level();

    let mut summary = Summary::new("exp_aqe_interaction");
    let mut csv = Vec::new();

    // Part 1: the response-curve reshaping (noise-free sweep).
    let mut penalty_with = 0.0;
    let mut penalty_without = 0.0;
    for (qi, &q) in QUERIES.iter().enumerate() {
        let env = make_env(q, sf, 1);
        let sweep = |aqe: bool, partitions: f64| -> f64 {
            let mut point = space.default_point();
            point[2] = partitions.min(space.dims[2].hi);
            let mut conf = space.to_conf(&point);
            conf.adaptive_enabled = aqe;
            env.sim.true_time_ms(&env.plan, &conf)
        };
        let mut best_off = f64::INFINITY;
        let mut best_on = f64::INFINITY;
        for &p in &levels {
            let off = sweep(false, p);
            let on = sweep(true, p);
            best_off = best_off.min(off);
            best_on = best_on.min(on);
            csv.push(vec![qi as f64, p, off, on]);
        }
        // Over-partitioning penalty: worst high-partition point / best point.
        let hi_off = sweep(false, 8192.0f64.min(space.dims[2].hi));
        let hi_on = sweep(true, 8192.0f64.min(space.dims[2].hi));
        penalty_without += hi_off / best_off / QUERIES.len() as f64;
        penalty_with += hi_on / best_on / QUERIES.len() as f64;
    }
    summary.row(
        "over-partitioning penalty (AQE off)",
        format!("{penalty_without:.2}x over best"),
    );
    summary.row(
        "over-partitioning penalty (AQE on)",
        format!("{penalty_with:.2}x over best"),
    );

    // Part 2: tuning headroom with AQE on vs off.
    let mut gain_off = 0.0;
    let mut gain_on = 0.0;
    for (qi, &q) in QUERIES.iter().enumerate() {
        for aqe in [false, true] {
            let env = make_env(q, sf, 100 + qi as u64);
            let space = space.clone();
            let mut tuner = RockhopperTuner::builder(space.clone())
                .guardrail(None)
                .seed(200 + qi as u64)
                .build();
            let mut default_conf = space.to_conf(&space.default_point());
            default_conf.adaptive_enabled = aqe;
            let default_ms = env.sim.true_time_ms(&env.plan, &default_conf);
            let mut last = Vec::new();
            for t in 0..iters {
                let ctx = env.context();
                let point = tuner.suggest(&ctx);
                let mut conf = space.to_conf(&point);
                conf.adaptive_enabled = aqe;
                let run = env
                    .sim
                    .execute(&env.plan, &conf, (t as u64) << 3 | qi as u64);
                if t + 5 >= iters {
                    last.push(env.sim.true_time_ms(&env.plan, &conf));
                }
                tuner.observe(
                    &point,
                    &optimizers::tuner::Outcome {
                        elapsed_ms: run.metrics.elapsed_ms,
                        data_size: run.metrics.input_rows,
                        kind: optimizers::tuner::ObservationKind::Measured,
                    },
                );
            }
            let tuned = ml::stats::mean(&last);
            let gain = 100.0 * (default_ms - tuned) / default_ms;
            if aqe {
                gain_on += gain / QUERIES.len() as f64;
            } else {
                gain_off += gain / QUERIES.len() as f64;
            }
        }
    }
    summary.row("mean tuning gain, AQE off", format!("{gain_off:.1}%"));
    summary.row("mean tuning gain, AQE on", format!("{gain_on:.1}%"));
    summary.row(
        "expectation",
        "AQE flattens the over-partitioning penalty; tuning still helps but the \
         headroom from the partition knob shrinks",
    );
    summary.files.push(write_csv(
        "exp_aqe_interaction",
        "query_idx,partitions,true_ms_aqe_off,true_ms_aqe_on",
        &csv,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aqe_softens_overpartitioning_in_the_sweep() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        let get = |key: &str| -> f64 {
            s.rows
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.split('x').next())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let off = get("over-partitioning penalty (AQE off)");
        let on = get("over-partitioning penalty (AQE on)");
        assert!(on <= off, "AQE should soften the penalty: {on} vs {off}");
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
