//! **Extension: fault injection.** The paper's production story (§4.3, §5) is
//! about surviving an environment that *fails*, not just fluctuates: OOM kills,
//! executor churn, lost telemetry. This experiment injects those faults into the
//! tuning loop and compares three failure policies:
//!
//! - **censor** (failure-aware, what Rockhopper's pipeline does): a failed run
//!   enters the history as a censored high-cost observation, pushing the
//!   centroid away from the failing region without poisoning model fits;
//! - **ignore** (fault-oblivious): failed runs are silently dropped, so the
//!   tuner never learns which configurations kill jobs;
//! - **trust-partial** (fault-oblivious, worst case): the partial time of the
//!   aborted run is recorded as if it were a measurement — OOM-killed configs
//!   look *fast* and FIND_BEST chases them.
//!
//! Every failed run is charged its partial time plus a rerun under the default
//! configuration (what production actually pays for an aborted job). The
//! failure-aware policy must end with strictly lower final cost than the
//! fault-oblivious baselines — bounded regret under injected failures.
//!
//! A second part drives the full client/backend pipeline under
//! [`FaultSpec::chaos`] telemetry: event logs are mangled in flight, the ETL
//! quarantines garbage lines, unmatched starts become censored observations and
//! repeated failures flip signatures into degraded mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use optimizers::env::{Environment, QueryEnv};
use optimizers::tuner::{History, Outcome, Tuner};
use pipeline::{AutotuneBackend, Storage};
use rockhopper::RockhopperTuner;
use sparksim::fault::{mangle_jsonl, FaultSpec, RunOutcome};
use sparksim::noise::NoiseSpec;

use crate::harness::{band_rows, replicate_raw, write_csv, Scale, Summary};

/// TPC-H query driven through the faulty loop (join-heavy: real shuffle memory
/// pressure, so aggressive partition tuning can genuinely OOM).
const QUERY: usize = 5;

/// Scale factor for the faulty loop — large enough that shuffle working sets
/// are a real fraction of the task budget around the default partition count.
const SCALE_FACTOR: f64 = 20.0;

/// Executor memory the faulty pool runs with — tight enough that
/// below-default shuffle-partition configurations push per-task working sets
/// into OOM territory under the injected hard ceiling (at sf 20 the big join
/// stage sits at ~0.9× the task budget with the default 200 partitions and
/// blows through 1.2× below ~150).
const TIGHT_MEMORY_MB: f64 = 1024.0;

/// How a tuning loop reacts to a failed or unobserved run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailurePolicy {
    /// Record a censored high-cost observation (failure-aware Rockhopper).
    Censor,
    /// Drop the run entirely (fault-oblivious).
    Ignore,
    /// Record the aborted run's partial time as a measurement (poisoning).
    TrustPartial,
}

/// The fault regime for part 1: a firm OOM ceiling plus background executor
/// churn and mild telemetry loss.
fn fault_spec() -> FaultSpec {
    FaultSpec {
        oom_ceiling: 1.2,
        executor_loss_per_min: 0.005,
        max_executor_losses: 2,
        telemetry_loss: 0.02,
        telemetry_corruption: 0.01,
    }
}

/// Penalty recorded for a censored run: well above the worst time this tuner
/// has measured (the same scaling the pipeline backend applies).
fn censor_penalty(history: &History) -> f64 {
    let worst = history
        .all
        .iter()
        .filter(|o| !o.is_censored())
        .map(|o| o.elapsed_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    if worst.is_finite() {
        2.0 * worst
    } else {
        600_000.0
    }
}

/// One replication of the faulty tuning loop. Returns the per-iteration cost
/// trace (true time of the suggested config; failed runs pay their partial time
/// plus a default-config rerun) and counts failures into `failure_tally`.
fn arm_trace(
    policy: FailurePolicy,
    iters: usize,
    seed: u64,
    spec: &FaultSpec,
    failure_tally: &AtomicU64,
) -> Vec<f64> {
    let mut env = QueryEnv::tpch(
        QUERY,
        SCALE_FACTOR,
        NoiseSpec {
            fluctuation: 0.1,
            spike: 0.1,
        },
        seed,
    );
    let space = env.space().clone();
    let mut tuner = RockhopperTuner::builder(space.clone())
        .guardrail(None)
        .seed(seed.wrapping_mul(31).wrapping_add(7))
        .build();
    let tighten = |point: &[f64]| {
        let mut conf = space.to_conf(point);
        conf.executor_memory_mb = TIGHT_MEMORY_MB;
        conf
    };
    let default_rerun_ms = env
        .sim
        .true_time_ms(&env.plan, &tighten(&space.default_point()));
    let mut trace = Vec::with_capacity(iters);
    for t in 0..iters {
        let ctx = env.context();
        let point = tuner.suggest(&ctx);
        let conf = tighten(&point);
        let run_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t as u64);
        let outcome = env.sim.execute_outcome(&env.plan, &conf, run_seed, spec);
        let true_ms = env.sim.true_time_ms(&env.plan, &conf);
        match outcome {
            RunOutcome::Success(run) => {
                trace.push(true_ms);
                tuner.observe(
                    &point,
                    &Outcome::measured(run.metrics.elapsed_ms, run.metrics.input_rows),
                );
            }
            RunOutcome::Failed {
                reason: _,
                partial_time_ms,
            } => {
                failure_tally.fetch_add(1, Ordering::Relaxed);
                // The aborted attempt burned `partial_time_ms`, then the job
                // reran under the default configuration.
                trace.push(partial_time_ms + default_rerun_ms);
                match policy {
                    FailurePolicy::Censor => {
                        let penalty = censor_penalty(&tuner.history);
                        tuner.observe(&point, &Outcome::censored(penalty, ctx.expected_data_size));
                    }
                    FailurePolicy::TrustPartial => {
                        tuner.observe(
                            &point,
                            &Outcome::measured(partial_time_ms, ctx.expected_data_size),
                        );
                    }
                    FailurePolicy::Ignore => {}
                }
            }
            RunOutcome::Censored => {
                // The run finished but its completion record was lost.
                trace.push(true_ms);
                if policy == FailurePolicy::Censor {
                    let penalty = censor_penalty(&tuner.history);
                    tuner.observe(&point, &Outcome::censored(penalty, ctx.expected_data_size));
                }
            }
        }
        let _ = env.run(&point); // advance the environment's iteration clock
    }
    trace
}

/// Mean cost over the last quarter of each replication, averaged across
/// replications — the "final cost" a policy settles at.
fn final_cost(traces: &[Vec<f64>]) -> f64 {
    let per_rep: Vec<f64> = traces
        .iter()
        .map(|t| {
            let tail = &t[t.len() - t.len() / 4..];
            ml::stats::mean(tail)
        })
        .collect();
    ml::stats::mean(&per_rep)
}

/// Run the fault-injection comparison plus the chaos-telemetry pipeline drive.
pub fn run(scale: Scale) -> Summary {
    let iters = scale.pick(60, 18);
    let reps = scale.pick(20, 6);
    let spec = fault_spec();

    let mut summary = Summary::new("exp_fault_injection");
    let mut finals = Vec::new();
    for (label, policy) in [
        ("censor (failure-aware)", FailurePolicy::Censor),
        ("ignore (fault-oblivious)", FailurePolicy::Ignore),
        ("trust-partial (poisoned)", FailurePolicy::TrustPartial),
    ] {
        let tally = AtomicU64::new(0);
        let traces = replicate_raw(reps, |seed| {
            arm_trace(policy, iters, seed.wrapping_add(100), &spec, &tally)
        });
        let fc = final_cost(&traces);
        let failures = tally.load(Ordering::Relaxed);
        finals.push((label, fc));
        summary.row(
            format!("final cost, {label}").as_str(),
            format!(
                "{fc:.0} ms ({failures} failed runs / {} total)",
                reps * iters
            ),
        );
        let bands = ml::stats::bands_per_iteration(&traces);
        summary.files.push(write_csv(
            &format!(
                "exp_fault_injection_{}",
                match policy {
                    FailurePolicy::Censor => "censor",
                    FailurePolicy::Ignore => "ignore",
                    FailurePolicy::TrustPartial => "trust_partial",
                }
            ),
            "iteration,p5,p50,p95",
            &band_rows(&bands),
        ));
    }
    let aware = finals[0].1;
    let worst_oblivious = finals[1].1.max(finals[2].1);
    summary.row(
        "failure-aware vs worst oblivious",
        format!(
            "{:.1}% lower final cost",
            100.0 * (1.0 - aware / worst_oblivious)
        ),
    );

    // Part 2: the full pipeline under chaos telemetry.
    let chaos = chaos_pipeline(scale.pick(40, 12));
    summary.row("chaos pipeline: quarantined lines", chaos.quarantined);
    summary.row("chaos pipeline: failed runs seen", chaos.failed_runs);
    summary.row("chaos pipeline: observations learned", chaos.observations);
    summary.row(
        "chaos pipeline: degraded at end",
        if chaos.degraded { "yes" } else { "no" },
    );
    summary
}

/// What the chaos-telemetry pipeline drive observed.
struct ChaosReport {
    quarantined: usize,
    failed_runs: usize,
    observations: usize,
    degraded: bool,
}

/// Drive the client/backend pipeline under [`FaultSpec::chaos`]: every event
/// file is mangled in flight before ingest.
fn chaos_pipeline(iters: usize) -> ChaosReport {
    let spec = FaultSpec::chaos();
    let storage = Arc::new(Storage::new());
    let mut backend =
        AutotuneBackend::new(Arc::clone(&storage), None, 7).with_degraded_policy(3, 4);
    let mut env = QueryEnv::tpch(
        QUERY,
        1.0,
        NoiseSpec {
            fluctuation: 0.1,
            spike: 0.1,
        },
        11,
    );
    let sig = env.signature();
    let space = env.space().clone();
    for t in 0..iters {
        let ctx = env.context();
        let point = backend.suggest("prod", sig, &ctx);
        let mut conf = space.to_conf(&point);
        conf.executor_memory_mb = TIGHT_MEMORY_MB;
        let run_seed = 0xC0FF_EE00 + t as u64;
        let app_id = format!("app-{t}");
        let (_outcome, events) = env.sim.run_and_events(
            &app_id,
            "artifact-chaos",
            sig,
            &env.plan,
            &conf,
            ctx.embedding.clone(),
            run_seed,
            &spec,
        );
        let doc = sparksim::event::to_jsonl(&events);
        let mut wire_rng = FaultSpec::rng_for(run_seed ^ 0x7E1E_CA57);
        let (mangled, _dropped, _corrupted) = mangle_jsonl(&doc, &spec, &mut wire_rng);
        backend.ingest_jsonl("prod", &app_id, &mangled);
        let _ = env.run(&point);
    }
    let counters = backend.dashboard().counters();
    ChaosReport {
        quarantined: usize::try_from(counters.quarantined_lines).unwrap_or(usize::MAX),
        failed_runs: usize::try_from(counters.failed_runs).unwrap_or(usize::MAX),
        observations: backend.observation_count("prod", sig),
        degraded: backend.is_degraded("prod", sig),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_aware_loop_beats_fault_oblivious_baselines() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        let cost = |needle: &str| -> f64 {
            s.rows
                .iter()
                .find(|(k, _)| k.contains(needle))
                .and_then(|(_, v)| v.split(" ms").next())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let aware = cost("censor");
        let ignore = cost("ignore");
        let poisoned = cost("trust-partial");
        assert!(
            aware < ignore.max(poisoned),
            "failure-aware final cost {aware} must beat the worst oblivious \
             baseline (ignore {ignore}, trust-partial {poisoned})"
        );
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }

    #[test]
    fn faults_actually_fire_in_the_injected_regime() {
        let tally = AtomicU64::new(0);
        let spec = fault_spec();
        let _ = arm_trace(FailurePolicy::Ignore, 20, 3, &spec, &tally);
        // The regime must actually exercise the failure path; otherwise the
        // comparison above is vacuous.
        assert!(
            tally.load(Ordering::Relaxed) > 0,
            "no faults fired in 20 iterations — regime too benign"
        );
    }

    #[test]
    fn chaos_pipeline_quarantines_and_still_learns() {
        let report = chaos_pipeline(12);
        assert!(
            report.quarantined > 0,
            "chaos corruption must quarantine lines"
        );
        assert!(
            report.observations > 0,
            "the tuner must still learn from surviving telemetry"
        );
    }
}
