//! The rockserve wire protocol: length-prefixed, versioned JSON frames.
//!
//! Every frame is `[u32 LE payload length][u16 LE protocol version][payload]`,
//! where the payload is the JSON rendering of one [`Request`] or [`Response`].
//! The length is bounded by [`MAX_PAYLOAD_BYTES`] and checked *before* any
//! allocation, so a hostile length prefix cannot balloon memory; a version
//! other than [`PROTOCOL_VERSION`] is rejected before the payload is parsed.
//! Decoding never panics: truncated, oversized, and garbage frames all come
//! back as typed [`WireError`]s, which the server answers with
//! `Response::Error` frames (see [`codes`]) instead of dropping the socket
//! silently.

use std::io::{ErrorKind, Read, Write};

use pipeline::DashboardCounters;
use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard payload bound; larger length prefixes are rejected before allocation.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 20;

/// Frame header: 4 length bytes + 2 version bytes.
pub const HEADER_BYTES: usize = 6;

/// Error codes carried in `Response::Error` frames.
pub mod codes {
    /// The client spoke a protocol version this server does not.
    pub const VERSION_MISMATCH: &str = "version-mismatch";
    /// The payload was not a well-formed request.
    pub const MALFORMED_FRAME: &str = "malformed-frame";
    /// The length prefix exceeded [`super::MAX_PAYLOAD_BYTES`].
    pub const OVERSIZED_FRAME: &str = "oversized-frame";
    /// The connection closed mid-frame.
    pub const TRUNCATED_FRAME: &str = "truncated-frame";
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer closed the connection mid-frame.
    Truncated {
        /// Bytes the frame section needed.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized {
        /// The claimed payload length.
        len: u32,
        /// The enforced bound.
        max: u32,
    },
    /// The frame's version field does not match [`PROTOCOL_VERSION`].
    VersionMismatch {
        /// The version the peer sent.
        got: u16,
        /// The version this build speaks.
        want: u16,
    },
    /// The payload parsed as neither a request nor a response.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer spoke v{got}, this build speaks v{want}"
                )
            }
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl WireError {
    /// The `Response::Error` code this error is reported under.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Io(_) | WireError::Truncated { .. } => codes::TRUNCATED_FRAME,
            WireError::Oversized { .. } => codes::OVERSIZED_FRAME,
            WireError::VersionMismatch { .. } => codes::VERSION_MISMATCH,
            WireError::Malformed(_) => codes::MALFORMED_FRAME,
        }
    }
}

/// Client-to-server frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Ask for a query-level configuration at job-submission time. Carries the
    /// flattened [`optimizers::tuner::TuningContext`] fields so the frame is
    /// self-describing on the wire.
    Suggest {
        /// Tenant the suggestion is scoped to.
        user: String,
        /// Query signature (plan hash).
        signature: u64,
        /// Plan embedding.
        embedding: Vec<f64>,
        /// Expected input data size.
        expected_data_size: f64,
        /// Client-side iteration counter.
        iteration: u32,
    },
    /// Ship a completed application's event log (JSON lines) for ingestion.
    Report {
        /// Tenant the events belong to.
        user: String,
        /// Application id the event file is stored under.
        app_id: String,
        /// The raw JSONL event document; corrupt lines are quarantined
        /// backend-side, never fatal.
        jsonl: String,
    },
    /// Liveness probe.
    Health,
    /// Snapshot serving metrics and the pipeline dashboard counters.
    Metrics,
    /// Drain the server: stop accepting, finish queued work, join everything.
    Shutdown,
}

/// Server-to-client frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A configuration point, possibly a degraded-mode default.
    Suggestion {
        /// The suggested query-level point.
        point: Vec<f64>,
        /// `Some(reason)` when the backend fell back to the default
        /// configuration (dead or wedged backend) instead of tuning.
        fallback: Option<String>,
        /// Where the point came from: `"transferred"` when it was served
        /// from the retrieval corpus on a cold signature, `"explored"` when
        /// the tuner's own loop produced it. `None` on frames from builds
        /// predating the retrieval subsystem — absent decodes as `None`, so
        /// v3 clients and servers interoperate unchanged
        /// (see [`rockindex::Provenance::from_wire`]).
        provenance: Option<String>,
    },
    /// The report was accepted for ingestion (fire-and-forget backend-side).
    Reported,
    /// Liveness reply.
    Healthy {
        /// Whether the server is draining (no new connections).
        draining: bool,
        /// The protocol version this server speaks.
        protocol_version: u16,
    },
    /// Serving metrics plus the pipeline dashboard counters, both as the
    /// structured structs and as a rendered `/metrics`-style text page.
    MetricsReport {
        /// Rendered text exposition (one `name value` pair per line).
        text: String,
        /// Serving-layer counters and latency percentiles.
        serving: MetricsSnapshot,
        /// The `pipeline::monitor` dashboard counters, exported verbatim.
        dashboard: DashboardCounters,
    },
    /// Admission control shed this request; retry later or elsewhere.
    Overloaded {
        /// Requests in flight (or connections queued) when the cap was hit.
        inflight: u64,
        /// The configured cap that was exceeded.
        capacity: u64,
    },
    /// The server acknowledged a shutdown request and is draining.
    ShuttingDown,
    /// The request could not be served; `code` is one of [`codes`].
    Error {
        /// Machine-readable error class.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Read exactly `buf.len()` bytes, stopping early only on EOF; returns the
/// byte count actually read. An idle-poll timeout (`WouldBlock`/`TimedOut`)
/// with nothing read yet surfaces as `Io` so callers can keep polling; once a
/// frame has started arriving, timeouts retry until the frame completes.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e)
                if got > 0 && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one frame's payload. `Ok(None)` on a clean close (EOF before any
/// header byte); all other short reads are [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; HEADER_BYTES];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_BYTES {
        return Err(WireError::Truncated {
            expected: HEADER_BYTES,
            got,
        });
    }
    let [l0, l1, l2, l3, v0, v1] = header;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    let version = u16::from_le_bytes([v0, v1]);
    if len > MAX_PAYLOAD_BYTES {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got < payload.len() {
        return Err(WireError::Truncated {
            expected: payload.len(),
            got,
        });
    }
    Ok(Some(payload))
}

/// Write one frame under [`PROTOCOL_VERSION`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    write_frame_versioned(w, PROTOCOL_VERSION, payload)
}

/// Write one frame under an explicit version — how the version-mismatch tests
/// speak a deliberately wrong dialect.
// rhlint:hot — header encode on every frame; stack bytes only, no alloc
pub fn write_frame_versioned<W: Write>(
    w: &mut W,
    version: u16,
    payload: &[u8],
) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_PAYLOAD_BYTES {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Encode a request payload.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    serde_json::to_vec(req).map_err(|e| WireError::Malformed(format!("{e:?}")))
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    serde_json::from_slice(payload).map_err(|e| WireError::Malformed(format!("{e:?}")))
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    serde_json::to_vec(resp).map_err(|e| WireError::Malformed(format!("{e:?}")))
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    serde_json::from_slice(payload).map_err(|e| WireError::Malformed(format!("{e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let req = Request::Suggest {
            user: "alice".into(),
            signature: 7,
            embedding: vec![0.5, 1.5],
            expected_data_size: 2.0,
            iteration: 3,
        };
        let payload = encode_request(&req).expect("encodes");
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("writes");
        let back = read_frame(&mut wire.as_slice())
            .expect("reads")
            .expect("non-empty");
        assert_eq!(decode_request(&back).expect("decodes"), req);
    }

    #[test]
    fn clean_eof_is_none_and_partial_header_is_truncated() {
        assert!(matches!(read_frame(&mut [].as_slice()), Ok(None)));
        let half_header = [1u8, 0, 0];
        assert!(matches!(
            read_frame(&mut half_header.as_slice()),
            Err(WireError::Truncated {
                expected: 6,
                got: 3
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(WireError::Oversized { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected_before_payload_parse() {
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, 99, b"{}").expect("writes");
        match read_frame(&mut wire.as_slice()) {
            Err(WireError::VersionMismatch { got: 99, want }) => {
                assert_eq!(want, PROTOCOL_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn error_codes_map_one_to_one() {
        assert_eq!(
            WireError::Oversized { len: 9, max: 1 }.code(),
            codes::OVERSIZED_FRAME
        );
        assert_eq!(
            WireError::VersionMismatch { got: 0, want: 1 }.code(),
            codes::VERSION_MISMATCH
        );
        assert_eq!(
            WireError::Malformed("x".into()).code(),
            codes::MALFORMED_FRAME
        );
        assert_eq!(
            WireError::Truncated {
                expected: 1,
                got: 0
            }
            .code(),
            codes::TRUNCATED_FRAME
        );
    }
}
