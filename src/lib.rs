#![forbid(unsafe_code)]

//! # Rockhopper (reproduction)
//!
//! Facade crate re-exporting the full Rockhopper reproduction workspace: a robust
//! optimizer for Spark configuration tuning (Zhu et al., SIGMOD-Companion 2025),
//! rebuilt from scratch in Rust together with every substrate it depends on — a Spark
//! cluster simulator, TPC-H/TPC-DS-style workloads, an ML substrate, baseline tuners,
//! and the offline/online autotuning pipeline.
//!
//! ## Quick start
//!
//! ```
//! use rockhopper_repro::prelude::*;
//!
//! // A simulated Spark environment running TPC-H Q6 at scale factor 10.
//! let mut env = QueryEnv::tpch(6, 10.0, NoiseSpec::low(), 1);
//!
//! // Tune the three production knobs with Centroid Learning.
//! let mut tuner = RockhopperTuner::builder(ConfigSpace::query_level())
//!     .seed(7)
//!     .build();
//! for _ in 0..20 {
//!     let candidate = tuner.suggest(&env.context());
//!     let outcome = env.run(&candidate);
//!     tuner.observe(&candidate, &outcome);
//! }
//! let best = tuner.best_observed().expect("observed at least one run");
//! assert!(best.elapsed_ms > 0.0);
//! ```

pub use embedding;
pub use ml;
pub use optimizers;
pub use pipeline;
pub use rockhopper;
pub use sparksim;
pub use workloads;

/// Convenience re-exports for the examples and downstream users.
pub mod prelude {
    pub use optimizers::env::Environment;
    pub use optimizers::space::ConfigSpace;
    pub use optimizers::tuner::{Outcome, Tuner, TuningContext};
    pub use optimizers::{QueryEnv, SyntheticEnv};
    pub use rockhopper::{Guardrail, RockhopperTuner};
    pub use sparksim::noise::NoiseSpec;
    pub use sparksim::SparkConf;
    pub use workloads::dynamic::DataSchedule;
}
