//! Regenerates the paper's `fig03_manual_vs_bo` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig03_manual_vs_bo::run(scale).print();
}
