//! RH028 fixture: config writes and `Dim` defaults versus declared bounds.
//!
//! Two positives — a `Dim` whose default sits outside its own `[lo, hi]`,
//! and a `conf.set(..)` whose derived interval escapes the declared
//! search-space bounds — and two negatives: an in-bounds default, and a
//! suggested value clamped into the declared range before the write.

pub mod space;

use space::{app_level, query_level, Dim};
use sparksim::config::{Knob, SparkConf};

fn dims() -> usize {
    query_level().len() + app_level().len()
}

fn bad_dim() -> Dim {
    Dim { knob: Knob::ExecutorInstances, lo: 1.0, hi: 64.0, default: 96.0 }
}

fn good_dim() -> Dim {
    Dim { knob: Knob::ExecutorCores, lo: 1.0, hi: 8.0, default: 4.0 }
}

fn suggest_out_of_range(conf: &mut SparkConf) {
    conf.set(Knob::ShufflePartitions, 8192.0);
}

fn suggest_clamped(conf: &mut SparkConf, raw: f64) {
    let v = raw.clamp(8.0, 1024.0);
    conf.set(Knob::ShufflePartitions, v);
}
