//! Virtual operators (paper Figure 4).
//!
//! "Each physical operator is subdivided into multiple virtual operators according to
//! the optimizer's estimates of input and output row counts." A `Filter` shrinking
//! 10⁹ rows to 10³ behaves nothing like one passing 99% of a small input; bucketing by
//! input magnitude and output/input ratio lets the surrogate tell them apart.

use serde::{Deserialize, Serialize};
use sparksim::plan::{Operator, PlanNode};

/// Bucketing thresholds for virtual operators. The paper "fine-tunes the clustering
/// thresholds for input and output sizes based on end-to-end performance"; these
/// defaults are the tuned values used by the experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualOpScheme {
    /// Upper edges (exclusive) of the input-row buckets; rows above the last edge
    /// fall into one final bucket. Log-spaced by default.
    pub input_edges: Vec<f64>,
    /// Upper edges (exclusive) of the output/input-ratio buckets.
    pub ratio_edges: Vec<f64>,
}

impl Default for VirtualOpScheme {
    fn default() -> Self {
        VirtualOpScheme {
            // micro / small / medium / large / huge inputs
            input_edges: vec![1e4, 1e6, 1e8, 1e10],
            // reducing hard / reducing / preserving
            ratio_edges: vec![0.01, 0.5],
        }
    }
}

impl VirtualOpScheme {
    /// Number of input buckets.
    pub(crate) fn input_buckets(&self) -> usize {
        self.input_edges.len() + 1
    }

    /// Number of ratio buckets.
    pub(crate) fn ratio_buckets(&self) -> usize {
        self.ratio_edges.len() + 1
    }

    /// Virtual variants per physical operator type.
    pub(crate) fn variants_per_type(&self) -> usize {
        self.input_buckets() * self.ratio_buckets()
    }

    /// Index of the input bucket for `rows`.
    pub(crate) fn input_bucket(&self, rows: f64) -> usize {
        self.input_edges
            .iter()
            .position(|&e| rows < e)
            .unwrap_or(self.input_edges.len())
    }

    /// Index of the ratio bucket for output/input ratio `r`.
    pub(crate) fn ratio_bucket(&self, r: f64) -> usize {
        self.ratio_edges
            .iter()
            .position(|&e| r < e)
            .unwrap_or(self.ratio_edges.len())
    }

    /// The virtual-operator index (within its physical type) of a plan node.
    pub(crate) fn variant_of(&self, node: &PlanNode) -> usize {
        let input_rows = node_input_rows(node);
        let ratio = if input_rows > 0.0 {
            node.est_rows / input_rows
        } else {
            1.0
        };
        self.input_bucket(input_rows) * self.ratio_buckets() + self.ratio_bucket(ratio)
    }
}

/// Input rows of a node: sum of children estimates, or the scan's own rows.
pub(crate) fn node_input_rows(node: &PlanNode) -> f64 {
    if node.children.is_empty() {
        match &node.op {
            Operator::TableScan { rows, .. } => *rows,
            _ => 0.0,
        }
    } else {
        node.children.iter().map(|c| c.est_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_counts_match_edges() {
        let s = VirtualOpScheme::default();
        assert_eq!(s.input_buckets(), 5);
        assert_eq!(s.ratio_buckets(), 3);
        assert_eq!(s.variants_per_type(), 15);
    }

    #[test]
    fn input_bucketing_is_monotone() {
        let s = VirtualOpScheme::default();
        assert_eq!(s.input_bucket(10.0), 0);
        assert_eq!(s.input_bucket(1e5), 1);
        assert_eq!(s.input_bucket(1e7), 2);
        assert_eq!(s.input_bucket(1e9), 3);
        assert_eq!(s.input_bucket(1e12), 4);
    }

    #[test]
    fn ratio_bucketing_separates_selective_from_passthrough() {
        let s = VirtualOpScheme::default();
        assert_eq!(s.ratio_bucket(0.001), 0); // hard reducer
        assert_eq!(s.ratio_bucket(0.2), 1); // reducer
        assert_eq!(s.ratio_bucket(0.99), 2); // pass-through
    }

    #[test]
    fn paper_figure4_example() {
        // Two filters over the same large input: one keeps almost nothing, one keeps
        // half. They must land in different virtual variants.
        let selective = PlanNode::scan("t", 1e7, 100.0).filter(0.001);
        let permissive = PlanNode::scan("t", 1e7, 100.0).filter(0.5);
        let s = VirtualOpScheme::default();
        assert_ne!(s.variant_of(&selective), s.variant_of(&permissive));
    }

    #[test]
    fn same_behaviour_same_variant() {
        // Filters with similar selectivity over same-magnitude inputs share a
        // virtual type (the paper's Filter1/Filter2 sharing Filter-Type-I).
        let f1 = PlanNode::scan("a", 2e7, 100.0).filter(0.002);
        let f2 = PlanNode::scan("b", 5e7, 80.0).filter(0.004);
        let s = VirtualOpScheme::default();
        assert_eq!(s.variant_of(&f1), s.variant_of(&f2));
    }

    #[test]
    fn scan_input_rows_are_its_own_rows() {
        let scan = PlanNode::scan("t", 123.0, 8.0);
        assert_eq!(node_input_rows(&scan), 123.0);
    }

    #[test]
    fn join_input_rows_sum_children() {
        let l = PlanNode::scan("l", 100.0, 8.0);
        let r = PlanNode::scan("r", 50.0, 8.0);
        let j = l.join(r, 0.01);
        assert_eq!(node_input_rows(&j), 150.0);
    }
}
