//! Regenerates the paper's `fig10_cl_learned_surrogate` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig10_cl_learned_surrogate::run(scale).print();
}
