//! Fixture optimizers crate.

pub mod space;

use space::{app_level, query_level};

fn dims() -> usize {
    query_level().len() + app_level().len()
}
