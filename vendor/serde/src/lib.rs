//! Offline shim of `serde`.
//!
//! The registry is unreachable in this environment, so the workspace vendors a
//! minimal value-tree serialization framework with the same spelling as serde:
//! `#[derive(Serialize, Deserialize)]`, `serde_json::{to_string, to_vec,
//! from_str, from_slice}`. Types serialize into a [`Value`] tree;
//! `serde_json` renders/parses that tree as real JSON text. Round-trip
//! fidelity within this workspace is the design goal, not wire compatibility
//! with upstream serde.
//!
//! Maps serialize as arrays of `[key, value]` pairs sorted by their JSON-
//! rendered key, so any `Eq + Hash` key type works and output is
//! deterministic regardless of `HashMap` iteration order.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model every serializable type lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; missing fields read as `Null` so `Option` fields
    /// deserialize to `None` and everything else reports a typed error.
    pub fn get_field(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::Int(i) => Some(i as i128),
            Value::UInt(u) => Some(u as i128),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i128),
            _ => None,
        }
    }
}

/// Deserialization error with a dotted-path breadcrumb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.type_name()))
    }

    /// Prefix the error path with a field or variant name.
    pub fn in_field(self, field: &str) -> Self {
        DeError::new(format!("{field}: {}", self.message))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let wide = value.as_i128().ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(wide).map_err(|_| DeError::new(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let wide = value.as_i128().ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(wide).map_err(|_| DeError::new(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    // JSON has no NaN/Infinity literal; they render as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => other
                        .as_f64()
                        .map(|f| f as $t)
                        .ok_or_else(|| DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().ok_or_else(|| DeError::new("empty char"))?)
            }
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::deserialize_value(value).map(VecDeque::from)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => Ok((
                        $($name::deserialize_value(&items[$idx]).map_err(|e| e.in_field(stringify!($idx)))?,)+
                    )),
                    other => Err(DeError::expected(concat!("array of length ", $len), other)),
                }
            }
        }
    };
}

impl_tuple!(A: 0; 1);
impl_tuple!(A: 0, B: 1; 2);
impl_tuple!(A: 0, B: 1, C: 2; 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3; 4);

/// Maps serialize as sorted arrays of `[key, value]` pairs — deterministic
/// output for `HashMap`, and non-string keys (tuples, integers) just work.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let key = k.serialize_value();
            (
                crate::text::render_compact(&key),
                Value::Array(vec![key, v.serialize_value()]),
            )
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(pairs.into_iter().map(|(_, pair)| pair).collect())
}

fn map_entries_from(value: &Value) -> Result<impl Iterator<Item = (&Value, &Value)>, DeError> {
    match value {
        Value::Array(items) => {
            for item in items {
                match item {
                    Value::Array(pair) if pair.len() == 2 => {}
                    other => return Err(DeError::expected("[key, value] pair", other)),
                }
            }
            Ok(items.iter().map(|item| match item {
                Value::Array(pair) => (&pair[0], &pair[1]),
                _ => unreachable!("validated above"),
            }))
        }
        other => Err(DeError::expected("array of [key, value] pairs", other)),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn serialize_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        map_entries_from(value)?
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        map_entries_from(value)?
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Eq + Hash, S: std::hash::BuildHasher> Serialize for HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        let mut rendered: Vec<(String, Value)> = self
            .iter()
            .map(|item| {
                let v = item.serialize_value();
                (crate::text::render_compact(&v), v)
            })
            .collect();
        rendered.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(rendered.into_iter().map(|(_, v)| v).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

pub mod text;
