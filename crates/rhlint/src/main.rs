//! `cargo run -p rhlint -- check [root]`
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/engine errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, root) = match args.as_slice() {
        [cmd] => (cmd.as_str(), None),
        [cmd, root] => (cmd.as_str(), Some(PathBuf::from(root))),
        _ => ("", None),
    };

    match command {
        "check" => {}
        "rules" => {
            for rule in rhlint::Rule::ALL {
                println!("{:<20} {}", rule.id(), rule.family());
            }
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("usage: rhlint check [workspace-root] | rhlint rules");
            return ExitCode::from(2);
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    match rhlint::check_workspace(&root) {
        Ok(diagnostics) => {
            print!("{}", rhlint::render_report(&diagnostics));
            if diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the first dir containing a
/// `Cargo.toml` with a `[workspace]` table (cargo sets cwd to the invoking
/// directory, so `cargo run -p rhlint` from anywhere in the tree works).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
