//! rockserve — the networked serving layer in front of the autotune pipeline.
//!
//! A Rockhopper deployment serves suggestions to many Spark drivers at once;
//! this crate reproduces that edge as a std-only TCP subsystem:
//!
//! - [`proto`]: a length-prefixed, versioned JSON wire protocol
//!   (`Suggest` / `Report` / `Health` / `Metrics` / `Shutdown` frames) with
//!   explicit error replies for truncated, oversized, malformed, and
//!   wrong-version frames — never a panic, never a hang.
//! - [`server`]: a blocking acceptor feeding a fixed-width worker pool
//!   (width from `RH_THREADS`, like the evaluation pool), with
//!   content-keyed request coalescing (concurrent identical `Suggest`s
//!   share one backend evaluation), bounded admission gates that answer
//!   `Overloaded` instead of buffering without bound, and a
//!   drain-then-shutdown lifecycle that joins every thread and hands the
//!   [`pipeline::AutotuneBackend`] back.
//! - [`metrics`]: request counters, batching gauges, and a log2 latency
//!   histogram, exported through the `Metrics` frame alongside the pipeline's
//!   `DashboardCounters` and rendered as a `/metrics`-style text page.
//! - [`client`]: a small blocking request/reply client used by the bench
//!   load generator and the e2e tests.
//!
//! This crate is the one sanctioned home for raw socket construction in the
//! workspace (rhlint RH019); everything else must go through [`ServeClient`].

#![forbid(unsafe_code)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::ServeClient;
pub use metrics::{MetricsSnapshot, ShardMetricsSnapshot};
pub use proto::{Request, Response, WireError, PROTOCOL_VERSION};
pub use server::{shard_state_dir, ServeConfig, Server};
