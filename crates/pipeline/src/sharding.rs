//! Sharded multi-tenant state engine (DESIGN.md §11).
//!
//! The backend is split into N signature-hash shards, each a full
//! [`AutotuneBackend`] running on its own worker thread with its own seed
//! stream, memory-bounded LRU over per-signature state, and (when durable)
//! its own WAL/snapshot lineage. Routing is a pure function of the query
//! signature ([`shard_of`]), so:
//!
//! - every request for a signature lands on the same shard, preserving the
//!   backend's per-signature ordering guarantee through the shard queues;
//! - tuner seed streams are derived from `(root_seed, signature)` alone
//!   ([`rockhopper::RockhopperTuner::signature_seed`]), so the *suggestions*
//!   a signature receives are bit-identical at any shard count.
//!
//! App-level work — `ApplicationStart`/`ApplicationEnd` events, unparseable
//! report lines, and the app-cache refresh path — is routed to shard 0, the
//! designated home for state that has no query signature to hash.

use std::time::Duration;

use optimizers::space::ConfigSpace;
use optimizers::tuner::TuningContext;
use rockindex::Provenance;
use sparksim::event::SparkEvent;

use crate::monitor::DashboardCounters;
use crate::service::{AutotuneBackend, AutotuneClient, AutotuneService, SuggestFallback};

/// Salt for the shard hash, distinct from every seed-derivation stream so
/// shard membership never correlates with tuner RNG draws.
const SHARD_SALT: u64 = 0x0051_1A2D_0F5E_ED09;

/// The shard a signature lives on: a pure function of `(signature, shards)`.
///
/// The signature is finalized through the same SplitMix64 mix as
/// [`rockpool::split_seed`] before the modulo, so consecutive signatures
/// (the common workload shape) spread across shards instead of striping.
pub fn shard_of(signature: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (rockpool::split_seed(SHARD_SALT, signature) % shards as u64) as usize
}

/// The shard-side handle: one [`AutotuneService`] per shard.
pub struct ShardedAutotuneService {
    services: Vec<AutotuneService>,
}

impl ShardedAutotuneService {
    /// Spawn one backend thread per shard. The backends should come from
    /// [`AutotuneBackend::split_into_shards`] (or equivalent construction):
    /// index `i` in the vector serves shard `i`.
    pub fn spawn(
        backends: Vec<AutotuneBackend>,
    ) -> (ShardedAutotuneService, ShardedAutotuneClient) {
        assert!(!backends.is_empty(), "a sharded service needs >= 1 shard");
        let mut services = Vec::with_capacity(backends.len());
        let mut clients = Vec::with_capacity(backends.len());
        for backend in backends {
            let (service, client) = AutotuneService::spawn(backend);
            services.push(service);
            clients.push(client);
        }
        (
            ShardedAutotuneService { services },
            ShardedAutotuneClient { clients },
        )
    }

    /// Split `backend` into `shards` shards (shard 0 keeps its learned state)
    /// and spawn them. `capacity` bounds each shard's tuner LRU (0 keeps the
    /// default bound).
    pub fn spawn_split(
        backend: AutotuneBackend,
        shards: usize,
        capacity: usize,
    ) -> (ShardedAutotuneService, ShardedAutotuneClient) {
        ShardedAutotuneService::spawn(backend.split_into_shards(shards, capacity))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.services.len()
    }

    /// Stop every shard thread and recover the backends, in shard order.
    /// `None` entries mark shards whose thread panicked.
    pub fn shutdown(self) -> Vec<Option<AutotuneBackend>> {
        self.services
            .into_iter()
            .map(AutotuneService::shutdown)
            .collect()
    }
}

/// Cluster-side handle fanning requests out to the right shard.
#[derive(Clone)]
pub struct ShardedAutotuneClient {
    clients: Vec<AutotuneClient>,
}

impl ShardedAutotuneClient {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.clients.len()
    }

    /// Per-shard clients, index = shard id — for callers (like `rockserve`)
    /// that do their own routing and per-shard admission control.
    pub fn clients(&self) -> &[AutotuneClient] {
        &self.clients
    }

    /// The client owning `signature`. `None` only for an empty fleet, which
    /// [`ShardedAutotuneService::spawn`] rejects at construction.
    fn client_for(&self, signature: u64) -> Option<&AutotuneClient> {
        self.clients.get(shard_of(signature, self.clients.len()))
    }

    /// Route a suggestion to the signature's shard (blocks, bounded by
    /// `timeout`).
    pub fn suggest(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
    ) -> Result<Vec<f64>, SuggestFallback> {
        self.client_for(signature)
            .ok_or(SuggestFallback::BackendDown)?
            .suggest(user, signature, ctx, timeout)
    }

    /// As [`ShardedAutotuneClient::suggest`], also returning the provenance
    /// tag from the owning shard.
    pub fn suggest_tagged(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
    ) -> Result<(Vec<f64>, Provenance), SuggestFallback> {
        self.client_for(signature)
            .ok_or(SuggestFallback::BackendDown)?
            .suggest_tagged(user, signature, ctx, timeout)
    }

    /// As [`ShardedAutotuneClient::suggest`], degrading to the default point
    /// when the owning shard is dead or wedged.
    pub fn suggest_or_default(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
        space: &ConfigSpace,
    ) -> (Vec<f64>, Option<SuggestFallback>) {
        match self.client_for(signature) {
            Some(client) => client.suggest_or_default(user, signature, ctx, timeout, space),
            None => (space.default_point(), Some(SuggestFallback::BackendDown)),
        }
    }

    /// As [`ShardedAutotuneClient::suggest_or_default`], also returning the
    /// provenance tag (a fallback default point is always
    /// [`Provenance::Explored`]).
    pub fn suggest_or_default_tagged(
        &self,
        user: &str,
        signature: u64,
        ctx: &TuningContext,
        timeout: Duration,
        space: &ConfigSpace,
    ) -> (Vec<f64>, Provenance, Option<SuggestFallback>) {
        match self.client_for(signature) {
            Some(client) => client.suggest_or_default_tagged(user, signature, ctx, timeout, space),
            None => (
                space.default_point(),
                Provenance::Explored,
                Some(SuggestFallback::BackendDown),
            ),
        }
    }

    /// Ship an event batch, partitioned so each event reaches the shard that
    /// owns its signature (app-level events go to shard 0). Relative order
    /// *within* each shard's slice matches the input order, which is all the
    /// per-signature ordering guarantee needs.
    pub fn ingest(&self, user: &str, app_id: &str, events: Vec<SparkEvent>) {
        let shards = self.clients.len();
        if shards == 1 {
            if let Some(client) = self.clients.first() {
                client.ingest(user, app_id, events);
            }
            return;
        }
        let mut per_shard: Vec<Vec<SparkEvent>> = (0..shards).map(|_| Vec::new()).collect();
        for event in events {
            let shard = event_shard(&event, shards);
            per_shard[shard].push(event);
        }
        for (shard, slice) in per_shard.into_iter().enumerate() {
            if !slice.is_empty() {
                self.clients[shard].ingest(user, app_id, slice);
            }
        }
    }

    /// Ship a raw JSON-lines report, partitioned line-by-line: lines carrying
    /// a query signature go to that signature's shard, app-level and
    /// unparseable lines go to shard 0 (which quarantines and counts the
    /// latter, keeping the fleet-wide quarantine tally exact). With one shard
    /// the document is forwarded verbatim, byte-identical to the unsharded
    /// wire path.
    pub fn report_jsonl(&self, user: &str, app_id: &str, doc: String) {
        let shards = self.clients.len();
        if shards == 1 {
            if let Some(client) = self.clients.first() {
                client.report_jsonl(user, app_id, doc);
            }
            return;
        }
        for (shard, slice) in partition_report(&doc, shards).into_iter().enumerate() {
            if !slice.is_empty() {
                self.clients[shard].report_jsonl(user, app_id, slice);
            }
        }
    }

    /// Merge dashboard counters across every shard. `None` when any shard is
    /// gone or wedged — a partial fleet total would read as a regression.
    pub fn dashboard_counters(&self, timeout: Duration) -> Option<DashboardCounters> {
        let mut merged = DashboardCounters::default();
        for client in &self.clients {
            merged = merged.merged_with(client.dashboard_counters(timeout)?);
        }
        Some(merged)
    }

    /// App-cache refresh: routed to shard 0, the home shard for app-level
    /// state. The refresh only sees query state resident on shard 0;
    /// cross-shard app-cache aggregation is out of scope (DESIGN.md §11).
    pub fn update_app_cache(
        &self,
        user: &str,
        artifact_id: &str,
        signatures: Vec<u64>,
        expected_p: f64,
    ) {
        if let Some(client) = self.clients.first() {
            client.update_app_cache(user, artifact_id, signatures, expected_p);
        }
    }

    /// Fetch an artifact's app-level configuration from shard 0.
    pub fn app_conf(&self, artifact_id: &str) -> Option<Vec<f64>> {
        self.clients.first()?.app_conf(artifact_id)
    }
}

/// The shard owning one event: its query signature's shard, or 0 for
/// app-level events.
fn event_shard(event: &SparkEvent, shards: usize) -> usize {
    match event {
        SparkEvent::QueryStart {
            query_signature, ..
        }
        | SparkEvent::QueryEnd {
            query_signature, ..
        }
        | SparkEvent::StageCompleted {
            query_signature, ..
        } => shard_of(*query_signature, shards),
        SparkEvent::ApplicationStart { .. } | SparkEvent::ApplicationEnd { .. } => 0,
    }
}

/// Split a JSONL report into per-shard documents, preserving line order
/// within each shard.
fn partition_report(doc: &str, shards: usize) -> Vec<String> {
    let mut per_shard = vec![String::new(); shards];
    for line in doc.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (events, quarantined) = sparksim::event::from_jsonl_lossy(line);
        let shard = match (events.first(), quarantined) {
            (Some(event), 0) => event_shard(event, shards),
            // Unparseable line: shard 0 quarantines and counts it.
            _ => 0,
        };
        per_shard[shard].push_str(line);
        per_shard[shard].push('\n');
    }
    per_shard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8, 16] {
            for sig in 0..1000u64 {
                let s = shard_of(sig, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(sig, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for sig in [0u64, 1, 42, u64::MAX] {
            assert_eq!(shard_of(sig, 1), 0);
            assert_eq!(shard_of(sig, 0), 0);
        }
    }

    #[test]
    fn partition_preserves_per_line_order_and_content() {
        let doc = "\
{\"type\":\"app_start\",\"app_id\":\"a\",\"user\":\"u\",\"ts\":0}\n\
not json at all\n";
        let parts = partition_report(doc, 4);
        // Both the app-level line and the garbage line land on shard 0,
        // in input order; other shards stay empty.
        assert!(parts[0].contains("app_start"));
        assert!(parts[0].contains("not json at all"));
        let app_pos = parts[0].find("app_start").unwrap_or(usize::MAX);
        let junk_pos = parts[0].find("not json").unwrap_or(0);
        assert!(app_pos < junk_pos);
        assert!(parts[1].is_empty() && parts[2].is_empty() && parts[3].is_empty());
    }
}
