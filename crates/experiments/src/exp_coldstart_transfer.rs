//! **Extension: cold-start transfer.** The paper warm-starts Contextual BO by
//! feeding baseline observations into the surrogate (Fig. 12). The rockindex
//! subsystem goes further: a cold signature whose embedding matches a warm
//! neighbour in the retrieval corpus is served the neighbour's best
//! configuration on the *very first* request — zero executions spent
//! exploring — and the donor's observations then seed the tuner's history
//! (trust-discounted) so the normal CL/BO loop takes over. This experiment
//! prices the three strategies over the same cold-start request window:
//!
//! - **retrieval transfer**: backend with a `KnnIndex` over a donor corpus —
//!   first request serves the donor's best point, later requests run the
//!   seeded CL/BO loop;
//! - **cold BO**: an empty backend learns from scratch — the floor;
//! - **warm-started CBO** (paper-style, Fig. 12): the donor's observations
//!   enter the surrogate as baseline rows, but the first suggestions still
//!   come from the acquisition loop.
//!
//! The donor ran the same query at the same scale under a different noise
//! seed, so its signature/embedding match the target exactly (cosine 1.0):
//! the best case for retrieval, and precisely the production scenario — a
//! recurring job re-appearing on a freshly-started (or resharded) backend.

use std::sync::Arc;

use optimizers::cbo::ContextualBO;
use optimizers::env::{Environment, QueryEnv};
use optimizers::tuner::Tuner;
use pipeline::{AutotuneBackend, Corpus, KnnIndex, Storage, TransferPolicy};
use sparksim::fault::FaultSpec;
use sparksim::noise::NoiseSpec;

use crate::harness::{band_rows, write_csv, Scale, Summary};

/// TPC-H query driven through the cold-start loop.
const QUERY: usize = 6;

/// Scale factor — moderate, so the donor converges within the quick budget.
const SCALE_FACTOR: f64 = 5.0;

fn fresh_env(seed: u64) -> QueryEnv {
    QueryEnv::tpch(
        QUERY,
        SCALE_FACTOR,
        NoiseSpec {
            fluctuation: 0.1,
            spike: 0.05,
        },
        seed,
    )
}

/// One request through the backend: suggest, execute, report the event file
/// back. Returns the suggested point and its *true* cost.
fn drive(
    backend: &mut AutotuneBackend,
    env: &mut QueryEnv,
    seed: u64,
    t: usize,
) -> (Vec<f64>, f64) {
    let sig = env.signature();
    let ctx = env.context();
    let point = backend.suggest("prod", sig, &ctx);
    let conf = env.space().to_conf(&point);
    let true_ms = env.sim.true_time_ms(&env.plan, &conf);
    let app_id = format!("app-{t}");
    let run_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t as u64);
    let (_outcome, events) = env.sim.run_and_events(
        &app_id,
        "artifact-coldstart",
        sig,
        &env.plan,
        &conf,
        ctx.embedding.clone(),
        run_seed,
        &FaultSpec::none(),
    );
    backend.ingest("prod", &app_id, &events);
    let _ = env.run(&point);
    (point, true_ms)
}

/// One replication's cold-window traces.
struct RepTraces {
    retrieval: Vec<f64>,
    cold: Vec<f64>,
    warm_cbo: Vec<f64>,
    /// Cold hits the retrieval arm's dashboard counted (the transfer fired).
    cold_hits: u64,
}

/// Run the three arms for one seed: `warm` donor requests build the corpus,
/// then each arm serves `post` cold-start requests.
fn one_rep(seed: u64, warm: usize, post: usize) -> RepTraces {
    // Donor phase: a warm backend tunes the same query under a different
    // noise seed, then its learned state is harvested into a corpus.
    let donor_seed = seed ^ 0xD010_0001;
    let mut donor_env = fresh_env(donor_seed);
    let mut donor = AutotuneBackend::new(Arc::new(Storage::new()), None, donor_seed);
    let mut baseline_rows: Vec<(Vec<f64>, Vec<f64>, f64)> = Vec::with_capacity(warm);
    for t in 0..warm {
        let embedding = donor_env.context().embedding;
        let (point, true_ms) = drive(&mut donor, &mut donor_env, donor_seed, t);
        baseline_rows.push((embedding, point, true_ms));
    }
    let mut corpus = Corpus::in_memory();
    for entry in donor.harvest_corpus("prod") {
        corpus.upsert(entry).expect("in-memory corpus upserts");
    }
    let index = Arc::new(KnnIndex::build(&corpus));
    assert!(!index.is_empty(), "donor phase produced no corpus entries");

    // Retrieval arm: cold backend + donor index. The first request serves
    // the donor's best point (zero-execution transfer); the handoff seeds
    // the tuner's history and CL/BO continues from there.
    let mut env_r = fresh_env(seed);
    let mut retrieval = AutotuneBackend::new(Arc::new(Storage::new()), None, seed)
        .with_retrieval(index, TransferPolicy::default());
    let mut retrieval_trace = Vec::with_capacity(post);
    for t in 0..post {
        let (_point, ms) = drive(&mut retrieval, &mut env_r, seed, t);
        retrieval_trace.push(ms);
    }
    let cold_hits = retrieval.dashboard().counters().cold_hits;

    // Cold arm: same seed, same workload, no corpus — learns from scratch.
    let mut env_c = fresh_env(seed);
    let mut cold = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    let mut cold_trace = Vec::with_capacity(post);
    for t in 0..post {
        let (_point, ms) = drive(&mut cold, &mut env_c, seed, t);
        cold_trace.push(ms);
    }

    // Paper-style arm (Fig. 12): the donor observations warm-start the CBO
    // surrogate directly; suggestions still come from the acquisition loop.
    let mut env_w = fresh_env(seed);
    let mut cbo = ContextualBO::new(env_w.space().clone(), seed);
    for (embedding, point, elapsed_ms) in &baseline_rows {
        cbo.add_baseline_row(embedding, point, *elapsed_ms);
    }
    let mut warm_trace = Vec::with_capacity(post);
    for _ in 0..post {
        let point = cbo.suggest(&env_w.context());
        let conf = env_w.space().to_conf(&point);
        warm_trace.push(env_w.sim.true_time_ms(&env_w.plan, &conf));
        let outcome = env_w.run(&point);
        cbo.observe(&point, &outcome);
    }

    RepTraces {
        retrieval: retrieval_trace,
        cold: cold_trace,
        warm_cbo: warm_trace,
        cold_hits,
    }
}

/// Run the cold-start transfer comparison.
pub fn run(scale: Scale) -> Summary {
    let warm = scale.pick(40, 12);
    let post = scale.pick(50, 10);
    let reps = scale.pick(6, 2);

    let seeds: Vec<u64> = (0..reps)
        .map(|r| 0xC01D_57A7u64.wrapping_add(r as u64 * 131))
        .collect();
    let reps_done: Vec<RepTraces> = seeds
        .iter()
        .map(|&seed| one_rep(seed, warm, post))
        .collect();

    let mut summary = Summary::new("exp_coldstart_transfer");
    summary.row(
        "cold-start window",
        format!("{post} requests (donor warmed over {warm} requests)"),
    );
    let cum_of = |pick: fn(&RepTraces) -> &Vec<f64>| -> f64 {
        let per_rep: Vec<f64> = reps_done.iter().map(|r| pick(r).iter().sum()).collect();
        ml::stats::mean(&per_rep)
    };
    let retrieval_cum = cum_of(|r| &r.retrieval);
    let cold_cum = cum_of(|r| &r.cold);
    let warm_cum = cum_of(|r| &r.warm_cbo);
    summary.row(
        "retrieval transfer cumulative cost",
        format!("{retrieval_cum:.0} ms"),
    );
    summary.row("cold BO cumulative cost", format!("{cold_cum:.0} ms"));
    summary.row(
        "warm-started CBO cumulative cost",
        format!("{warm_cum:.0} ms"),
    );
    summary.row(
        "cold-start regret avoided by retrieval",
        format!("{:.0} ms over {post} requests", cold_cum - retrieval_cum),
    );
    let first_of = |pick: fn(&RepTraces) -> &Vec<f64>| -> f64 {
        let per_rep: Vec<f64> = reps_done.iter().map(|r| pick(r)[0]).collect();
        ml::stats::mean(&per_rep)
    };
    summary.row(
        "first-request cost (retrieval / cold)",
        format!(
            "{:.0} ms / {:.0} ms",
            first_of(|r| &r.retrieval),
            first_of(|r| &r.cold)
        ),
    );
    let all_transferred = reps_done.iter().all(|r| r.cold_hits > 0);
    summary.row(
        "every replication transferred",
        if all_transferred { "yes" } else { "NO" },
    );

    let retrieval_traces: Vec<Vec<f64>> = reps_done.iter().map(|r| r.retrieval.clone()).collect();
    let cold_traces: Vec<Vec<f64>> = reps_done.iter().map(|r| r.cold.clone()).collect();
    summary.files.push(write_csv(
        "exp_coldstart_transfer_retrieval",
        "iteration,p5,p50,p95",
        &band_rows(&ml::stats::bands_per_iteration(&retrieval_traces)),
    ));
    summary.files.push(write_csv(
        "exp_coldstart_transfer_cold",
        "iteration,p5,p50,p95",
        &band_rows(&ml::stats::bands_per_iteration(&cold_traces)),
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieval_transfer_beats_cold_bo_over_the_cold_window() {
        let rep = one_rep(0xC01D_0001, 12, 10);
        assert!(
            rep.cold_hits > 0,
            "the donor corpus covers the target signature, so the first \
             request must hit the index"
        );
        let retrieval_sum: f64 = rep.retrieval.iter().sum();
        let cold_sum: f64 = rep.cold.iter().sum();
        assert!(
            retrieval_sum <= cold_sum,
            "retrieval transfer should not lose to cold BO over the cold \
             window (retrieval {retrieval_sum:.0} ms > cold {cold_sum:.0} ms)"
        );
    }
}
