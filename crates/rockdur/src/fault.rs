//! Deterministic corruption injectors for crash-recovery tests.
//!
//! Same discipline as `sparksim`'s `FaultSpec`: every injector derives its
//! decision from the *workload seed XOR a fixed salt*, so "same seed"
//! reproduces the same crash point without ever sharing an RNG stream with
//! the workload itself. These are test/CI helpers — production code never
//! calls them.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use crate::wal::to_u64;

/// Salt for [`torn_tail`]; mirrors `sparksim::fault::FAULT_SALT`'s role.
const TORN_TAIL_SALT: u64 = 0x70A4_5EED_0D15_C0DE;

/// Salt for [`flip_bit`].
const FLIP_SALT: u64 = 0xB17F_11B5_0BAD_F00D;

/// SplitMix64 — the same generator `rockpool::split_seed` uses, inlined so
/// this crate stays dependency-free.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chop a seed-derived number of bytes (1..=96, capped at the record area)
/// off the newest WAL segment, simulating a torn final write at power
/// loss. Returns bytes removed — 0 when the dir has no choppable segment.
pub fn torn_tail(dir: &Path, seed: u64) -> io::Result<u64> {
    let Some(path) = newest_segment(dir)? else {
        return Ok(0);
    };
    let len = fs::metadata(&path)?.len();
    if len <= 8 {
        return Ok(0); // magic-only segment: nothing to tear
    }
    let span = (len - 8).min(96);
    let chop = splitmix(seed ^ TORN_TAIL_SALT) % span + 1;
    let f = OpenOptions::new().write(true).open(&path)?;
    f.set_len(len - chop)?;
    f.sync_data()?;
    Ok(chop)
}

/// Flip one seed-derived bit anywhere in `path`, simulating media
/// corruption. Returns the byte offset flipped, or `None` for an empty
/// file.
pub fn flip_bit(path: &Path, seed: u64) -> io::Result<Option<u64>> {
    let mut data = fs::read(path)?;
    if data.is_empty() {
        return Ok(None);
    }
    let r = splitmix(seed ^ FLIP_SALT);
    let off = usize::try_from(r % to_u64(data.len())).unwrap_or(0);
    let bit = u32::try_from((r >> 17) & 7).unwrap_or(0);
    if let Some(b) = data.get_mut(off) {
        *b ^= 1u8 << bit;
    }
    fs::write(path, &data)?;
    Ok(Some(to_u64(off)))
}

/// Overwrite a snapshot's version word with a foreign value, simulating a
/// file written by an incompatible build.
pub fn foreign_snapshot_version(path: &Path) -> io::Result<()> {
    let mut data = fs::read(path)?;
    if let Some(bytes) = data.get_mut(8..12) {
        bytes.copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    }
    fs::write(path, &data)
}

/// Newest (highest first-seq) WAL segment in `dir`, if any.
pub fn newest_segment(dir: &Path) -> io::Result<Option<PathBuf>> {
    newest_with(dir, "wal-", ".log")
}

/// Newest (highest seq) snapshot in `dir`, if any.
pub fn newest_snapshot(dir: &Path) -> io::Result<Option<PathBuf>> {
    newest_with(dir, "snap-", ".snap")
}

fn newest_with(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Option<PathBuf>> {
    let mut best: Option<(String, PathBuf)> = None;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !(name.starts_with(prefix) && name.ends_with(suffix)) {
            continue;
        }
        // 16-hex fixed-width names sort lexicographically == numerically.
        if best
            .as_ref()
            .map(|(n, _)| name > n.as_str())
            .unwrap_or(true)
        {
            best = Some((name.to_string(), entry.path()));
        }
    }
    Ok(best.map(|(_, p)| p))
}
