//! Plan templates for all 22 TPC-H queries.
//!
//! These are *shape-faithful approximations*: the join graph, the relative table
//! sizes, filter selectivities from the spec's predicates, and the aggregation
//! fan-ins are preserved; textual expressions are not (the simulator costs operator
//! work, not expressions). Dimension filters are folded into the FK-join fanout —
//! a dimension filtered to fraction `f` keeps fraction `f` of the fact rows.

use sparksim::plan::PlanNode;

use crate::tables::tpch_scan;

/// Number of TPC-H queries.
pub const QUERY_COUNT: usize = 22;

/// Build the plan for TPC-H query `n` (1-based) at scale factor `sf`.
///
/// # Panics
/// Panics if `n` is not in `1..=22`.
pub fn query(n: usize, sf: f64) -> PlanNode {
    match n {
        1 => q1(sf),
        2 => q2(sf),
        3 => q3(sf),
        4 => q4(sf),
        5 => q5(sf),
        6 => q6(sf),
        7 => q7(sf),
        8 => q8(sf),
        9 => q9(sf),
        10 => q10(sf),
        11 => q11(sf),
        12 => q12(sf),
        13 => q13(sf),
        14 => q14(sf),
        15 => q15(sf),
        16 => q16(sf),
        17 => q17(sf),
        18 => q18(sf),
        19 => q19(sf),
        20 => q20(sf),
        21 => q21(sf),
        22 => q22(sf),
        _ => panic!("TPC-H has queries 1..=22, got {n}"),
    }
}

/// All 22 plans.
pub fn all_queries(sf: f64) -> Vec<(usize, PlanNode)> {
    (1..=QUERY_COUNT).map(|n| (n, query(n, sf))).collect()
}

/// Q1: pricing summary report — one lineitem pass, 4 output groups.
fn q1(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .filter(0.98) // l_shipdate <= date '1998-12-01' - 90 days
        .hash_aggregate(1e-6)
        .sort()
}

/// Q2: minimum-cost supplier — part/partsupp/supplier/nation/region with a min
/// subquery (modeled as a second partsupp aggregation joined back).
fn q2(sf: f64) -> PlanNode {
    let parts = tpch_scan("part", sf).filter(0.004); // size = 15 and type like '%BRASS'
    let ps = tpch_scan("partsupp", sf).fk_join(parts, 0.004);
    let supp = tpch_scan("supplier", sf); // nation/region filter keeps 1/5 of suppliers
    let ps_supp = ps.fk_join(supp, 0.2);
    let min_cost = tpch_scan("partsupp", sf).hash_aggregate(0.25); // min per part
    ps_supp.join(min_cost, 1e-6).sort().limit(100.0)
}

/// Q3: shipping priority — customer/orders/lineitem, top 10.
fn q3(sf: f64) -> PlanNode {
    let orders = tpch_scan("orders", sf)
        .filter(0.48) // o_orderdate < 1995-03-15
        .fk_join(tpch_scan("customer", sf).filter(0.2), 0.2); // BUILDING segment
    tpch_scan("lineitem", sf)
        .filter(0.54) // l_shipdate > 1995-03-15
        .fk_join(orders, 0.096)
        .hash_aggregate(0.05)
        .sort()
        .limit(10.0)
}

/// Q4: order priority checking — orders semi-join lineitem.
fn q4(sf: f64) -> PlanNode {
    let late_items = tpch_scan("lineitem", sf)
        .filter(0.63) // l_commitdate < l_receiptdate
        .hash_aggregate(0.37); // distinct orderkeys
    tpch_scan("orders", sf)
        .filter(0.038) // one quarter of 1993
        .join(late_items, 5e-7) // semi-join on orderkey
        .hash_aggregate(1e-5)
        .sort()
}

/// Q5: local supplier volume — 6-way join over a region.
fn q5(sf: f64) -> PlanNode {
    let orders = tpch_scan("orders", sf)
        .filter(0.15) // one year
        .fk_join(tpch_scan("customer", sf), 0.2); // one region of 5
    tpch_scan("lineitem", sf)
        .fk_join(orders, 0.03)
        .fk_join(tpch_scan("supplier", sf), 0.2)
        .fk_join(tpch_scan("nation", sf), 1.0)
        .hash_aggregate(1e-5)
        .sort()
}

/// Q6: revenue forecast — pure lineitem scan-filter-agg.
fn q6(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .filter(0.019) // date year × discount band × quantity
        .hash_aggregate(1e-9)
}

/// Q7: volume shipping — lineitem/supplier/orders/customer with nation pair filter.
fn q7(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .filter(0.3) // two shipping years
        .fk_join(tpch_scan("supplier", sf).filter(0.04), 0.04)
        .fk_join(tpch_scan("orders", sf), 1.0)
        .fk_join(tpch_scan("customer", sf).filter(0.04), 0.04)
        .hash_aggregate(1e-5)
        .sort()
}

/// Q8: national market share — 8-way join, two years.
fn q8(sf: f64) -> PlanNode {
    let orders = tpch_scan("orders", sf)
        .filter(0.3)
        .fk_join(tpch_scan("customer", sf).filter(0.2), 0.2);
    tpch_scan("lineitem", sf)
        .fk_join(tpch_scan("part", sf).filter(0.007), 0.007)
        .fk_join(orders, 0.06)
        .fk_join(tpch_scan("supplier", sf), 1.0)
        .fk_join(tpch_scan("nation", sf), 1.0)
        .hash_aggregate(1e-6)
        .sort()
}

/// Q9: product type profit — lineitem/part/supplier/partsupp/orders/nation.
fn q9(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .fk_join(tpch_scan("part", sf).filter(0.055), 0.055) // name like '%green%'
        .fk_join(tpch_scan("supplier", sf), 1.0)
        .fk_join(tpch_scan("partsupp", sf), 1.0)
        .fk_join(tpch_scan("orders", sf), 1.0)
        .fk_join(tpch_scan("nation", sf), 1.0)
        .hash_aggregate(1e-4)
        .sort()
}

/// Q10: returned item reporting — one quarter, top 20 customers.
fn q10(sf: f64) -> PlanNode {
    let orders = tpch_scan("orders", sf)
        .filter(0.038)
        .fk_join(tpch_scan("customer", sf), 1.0);
    tpch_scan("lineitem", sf)
        .filter(0.25) // returnflag = 'R'
        .fk_join(orders, 0.038)
        .fk_join(tpch_scan("nation", sf), 1.0)
        .hash_aggregate(0.3)
        .sort()
        .limit(20.0)
}

/// Q11: important stock identification — partsupp over one nation plus a global
/// aggregate subquery.
fn q11(sf: f64) -> PlanNode {
    let national = tpch_scan("partsupp", sf)
        .fk_join(tpch_scan("supplier", sf).filter(0.04), 0.04)
        .hash_aggregate(0.8);
    let total = tpch_scan("partsupp", sf)
        .fk_join(tpch_scan("supplier", sf).filter(0.04), 0.04)
        .hash_aggregate(1e-9);
    national.join(total, 1.0).filter(0.01).sort()
}

/// Q12: shipping modes — lineitem/orders, two ship modes, one year.
fn q12(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .filter(0.005)
        .fk_join(tpch_scan("orders", sf), 1.0)
        .hash_aggregate(1e-7)
        .sort()
}

/// Q13: customer distribution — left join customer/orders with comment filter.
fn q13(sf: f64) -> PlanNode {
    tpch_scan("orders", sf)
        .filter(0.98) // comment not like '%special%requests%'
        .fk_join(tpch_scan("customer", sf), 1.0)
        .hash_aggregate(0.1) // per customer
        .hash_aggregate(1e-4) // histogram over counts
        .sort()
}

/// Q14: promotion effect — lineitem/part, one month.
fn q14(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .filter(0.0125)
        .fk_join(tpch_scan("part", sf), 1.0)
        .hash_aggregate(1e-9)
}

/// Q15: top supplier — revenue view aggregated twice.
fn q15(sf: f64) -> PlanNode {
    let revenue = tpch_scan("lineitem", sf)
        .filter(0.038) // one quarter
        .hash_aggregate(0.01); // per supplier
    let max_rev = revenue.clone().hash_aggregate(1e-9);
    revenue
        .join(max_rev, 1.0)
        .filter(1e-4)
        .fk_join(tpch_scan("supplier", sf), 1.0)
        .sort()
}

/// Q16: parts/supplier relationship — partsupp/part anti-join supplier complaints.
fn q16(sf: f64) -> PlanNode {
    tpch_scan("partsupp", sf)
        .fk_join(tpch_scan("part", sf).filter(0.15), 0.15)
        .join(tpch_scan("supplier", sf).filter(0.0005), 1e-7) // anti-join complainers
        .hash_aggregate(0.1)
        .sort()
}

/// Q17: small-quantity-order revenue — lineitem/part with per-part avg subquery.
fn q17(sf: f64) -> PlanNode {
    let avg_qty = tpch_scan("lineitem", sf).hash_aggregate(0.033); // avg per part
    tpch_scan("lineitem", sf)
        .fk_join(tpch_scan("part", sf).filter(0.001), 0.001)
        .join(avg_qty, 5e-7)
        .filter(0.3)
        .hash_aggregate(1e-9)
}

/// Q18: large volume customer — orders with big lineitem sums, top 100.
fn q18(sf: f64) -> PlanNode {
    let big_orders = tpch_scan("lineitem", sf)
        .hash_aggregate(0.25)
        .filter(0.0004);
    tpch_scan("lineitem", sf)
        .fk_join(tpch_scan("orders", sf), 1.0)
        .join(big_orders, 4e-7)
        .fk_join(tpch_scan("customer", sf), 1.0)
        .hash_aggregate(0.1)
        .sort()
        .limit(100.0)
}

/// Q19: discounted revenue — lineitem/part with disjunctive predicates.
fn q19(sf: f64) -> PlanNode {
    tpch_scan("lineitem", sf)
        .filter(0.02)
        .fk_join(tpch_scan("part", sf).filter(0.002), 0.1)
        .hash_aggregate(1e-9)
}

/// Q20: potential part promotion — nested semi-joins into supplier.
fn q20(sf: f64) -> PlanNode {
    let qty = tpch_scan("lineitem", sf).filter(0.15).hash_aggregate(0.13); // per part+supplier
    let parts = tpch_scan("part", sf).filter(0.01); // name like 'forest%'
    let ps = tpch_scan("partsupp", sf)
        .fk_join(parts, 0.01)
        .join(qty, 1e-6);
    tpch_scan("supplier", sf).filter(0.04).join(ps, 1e-4).sort()
}

/// Q21: suppliers who kept orders waiting — triple lineitem self-join.
fn q21(sf: f64) -> PlanNode {
    let l1 = tpch_scan("lineitem", sf)
        .filter(0.63)
        .fk_join(tpch_scan("supplier", sf).filter(0.04), 0.04)
        .fk_join(tpch_scan("orders", sf).filter(0.49), 0.49);
    let l2 = tpch_scan("lineitem", sf).hash_aggregate(0.37); // other suppliers exist
    let l3 = tpch_scan("lineitem", sf).filter(0.63).hash_aggregate(0.37);
    l1.join(l2, 4e-7)
        .join(l3, 4e-7)
        .hash_aggregate(1e-4)
        .sort()
        .limit(100.0)
}

/// Q22: global sales opportunity — customer anti-join orders.
fn q22(sf: f64) -> PlanNode {
    let avg_bal = tpch_scan("customer", sf).filter(0.28).hash_aggregate(1e-9);
    tpch_scan("customer", sf)
        .filter(0.28) // 7 of 25 country codes
        .join(avg_bal, 1.0)
        .filter(0.5) // balance above average
        .join(tpch_scan("orders", sf).hash_aggregate(0.066), 1e-6) // anti-join
        .hash_aggregate(1e-5)
        .sort()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::config::SparkConf;
    use sparksim::noise::NoiseSpec;
    use sparksim::simulator::Simulator;

    #[test]
    fn all_22_queries_build_and_estimate() {
        for (n, plan) in all_queries(1.0) {
            assert!(plan.node_count() >= 3, "Q{n} too trivial");
            assert!(plan.leaf_input_rows() > 0.0, "Q{n} has no input");
            assert!(plan.root_cardinality() >= 0.0, "Q{n} negative estimate");
        }
    }

    #[test]
    fn all_queries_simulate_with_positive_runtime() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        for (n, plan) in all_queries(1.0) {
            let t = sim.true_time_ms(&plan, &conf);
            assert!(t > 0.0 && t.is_finite(), "Q{n} time {t}");
        }
    }

    #[test]
    fn queries_have_diverse_shapes() {
        let plans = all_queries(1.0);
        let counts: Vec<usize> = plans.iter().map(|(_, p)| p.node_count()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > &(min * 2), "shapes too uniform: {counts:?}");
    }

    #[test]
    fn lineitem_heavy_queries_dominate_runtime() {
        // Q1 (full lineitem) should be much heavier than Q6 (2% of lineitem).
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let t1 = sim.true_time_ms(&query(1, 10.0), &conf);
        let t6 = sim.true_time_ms(&query(6, 10.0), &conf);
        assert!(t1 > t6, "Q1 {t1} vs Q6 {t6}");
    }

    #[test]
    fn scale_factor_scales_work() {
        let small = query(3, 1.0).leaf_input_bytes();
        let large = query(3, 100.0).leaf_input_bytes();
        assert!(large > small * 50.0);
    }

    #[test]
    #[should_panic(expected = "TPC-H has queries")]
    fn query_zero_panics() {
        query(0, 1.0);
    }

    #[test]
    fn optimal_shuffle_partitions_differ_across_queries() {
        // The Figure 1 premise: each query peaks at a different setting.
        let sim = Simulator::default_pool(NoiseSpec::none());
        let grid = [8.0, 32.0, 128.0, 512.0, 2048.0];
        let mut optima = std::collections::HashSet::new();
        for n in [1, 3, 6, 9, 18] {
            let plan = query(n, 50.0);
            let best = grid
                .iter()
                .min_by(|a, b| {
                    let mut ca = SparkConf::default();
                    ca.shuffle_partitions = **a;
                    let mut cb = SparkConf::default();
                    cb.shuffle_partitions = **b;
                    sim.true_time_ms(&plan, &ca)
                        .total_cmp(&sim.true_time_ms(&plan, &cb))
                })
                .unwrap();
            optima.insert(*best as u64);
        }
        assert!(optima.len() >= 2, "all queries peaked at one setting");
    }
}
