//! The Centroid Learning state machine — Algorithm 1 without the I/O.
//!
//! [`CentroidState`] owns the centroid `e_t` (in normalized space) and implements the
//! post-observation update:
//!
//! ```text
//! c*  = FIND_BEST(Ω(t+1, N))                  // best of the latest N observations
//! Δ   = FIND_GRADIENT(Ω(t+1, N))              // ternary descent direction
//! e_{t+1} = clamp( x(c*) − α·Δ )              // overshoot past the best point
//! ```
//!
//! The overshoot (momentum, §4.3) is the point: the centroid does not sit *on* the
//! best observation, it moves *past* it in the improving direction, so the next
//! neighborhood already explores fresher ground and local minima get escaped.

use optimizers::space::ConfigSpace;
use optimizers::tuner::History;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::find_best::{find_best, FindBestMode};
use crate::gradient::{find_gradient, GradientMode};

/// Hyper-parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CentroidConfig {
    /// Centroid update step `α` (normalized units) — the momentum overshoot.
    pub alpha: f64,
    /// Candidate-generation step `β` (normalized units) — the neighborhood half-width
    /// that bounds per-iteration regression risk.
    pub beta: f64,
    /// Window length `N` ("should be sufficiently large (e.g. 10 or 20)", §4.3).
    pub window: usize,
    /// Candidates generated per iteration.
    pub n_candidates: usize,
    /// FIND_BEST refinement.
    pub find_best: FindBestMode,
    /// FIND_GRADIENT estimator.
    pub gradient: GradientMode,
}

impl Default for CentroidConfig {
    /// The production configuration: model-based FIND_BEST, ML-corner gradients,
    /// N = 20, modest overshoot.
    fn default() -> Self {
        CentroidConfig {
            alpha: 0.12,
            beta: 0.08,
            window: 20,
            n_candidates: 24,
            find_best: FindBestMode::ModelBased,
            gradient: GradientMode::MlCorners,
        }
    }
}

/// The centroid plus its update logic.
#[derive(Debug, Clone)]
pub struct CentroidState {
    /// Algorithm hyper-parameters.
    pub config: CentroidConfig,
    /// Current centroid in normalized space.
    centroid: Vec<f64>,
}

impl CentroidState {
    /// Start the centroid at a raw-unit point (usually the default configuration —
    /// "the search subspace is defined as the neighborhood around the default").
    pub fn new(space: &ConfigSpace, start: &[f64], config: CentroidConfig) -> CentroidState {
        CentroidState {
            config,
            centroid: space.normalize(start),
        }
    }

    /// Rebuild a state from a checkpointed normalized centroid (see
    /// [`crate::tuner::TunerState`]). Coordinates are clamped into the unit cube.
    pub fn from_normalized(centroid: Vec<f64>, config: CentroidConfig) -> CentroidState {
        CentroidState {
            config,
            centroid: centroid.into_iter().map(|x| x.clamp(0.0, 1.0)).collect(),
        }
    }

    /// The centroid in raw units.
    pub fn centroid(&self, space: &ConfigSpace) -> Vec<f64> {
        space.denormalize(&self.centroid)
    }

    /// The centroid in normalized units.
    pub fn centroid_normalized(&self) -> &[f64] {
        &self.centroid
    }

    /// Generate the candidate set `C(e_t)`: the neighborhood of half-width β plus the
    /// centroid itself (so standing still is always on the table).
    pub fn candidates(&self, space: &ConfigSpace, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let center = self.centroid(space);
        let mut c = space.neighborhood(&center, self.config.beta, self.config.n_candidates, rng);
        c.push(center);
        c
    }

    /// Post-observation centroid update (Steps 4–5 of Figure 5). `p_next` is the
    /// expected data size of the next run (the paper's `p_{t+1}`).
    ///
    /// No-op while the window holds fewer than 2 observations.
    pub fn update(&mut self, space: &ConfigSpace, history: &History, p_next: f64) {
        let window = history.window(self.config.window);
        let Some(best_idx) = find_best(space, window, self.config.find_best, p_next) else {
            return;
        };
        let c_star = window[best_idx].point.clone();
        let delta = find_gradient(
            space,
            window,
            &c_star,
            self.config.gradient,
            self.config.alpha,
            p_next,
        );
        let x_star = space.normalize(&c_star);
        self.centroid = x_star
            .iter()
            .zip(&delta)
            .map(|(x, d)| (x - self.config.alpha * d).clamp(0.0, 1.0))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimizers::tuner::History;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::query_level()
    }

    fn state() -> CentroidState {
        let s = space();
        CentroidState::new(&s, &s.default_point(), CentroidConfig::default())
    }

    #[test]
    fn starts_at_the_given_point() {
        let s = space();
        let st = state();
        let c = st.centroid(&s);
        for (a, b) in c.iter().zip(&s.default_point()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn candidates_include_centroid_and_respect_beta() {
        let s = space();
        let st = state();
        let mut rng = StdRng::seed_from_u64(1);
        let cands = st.candidates(&s, &mut rng);
        assert_eq!(cands.len(), st.config.n_candidates + 1);
        let c = st.centroid_normalized();
        for cand in &cands {
            for (xi, ci) in s.normalize(cand).iter().zip(c) {
                assert!((xi - ci).abs() <= st.config.beta + 1e-9);
            }
        }
    }

    #[test]
    fn update_is_noop_on_empty_history() {
        let s = space();
        let mut st = state();
        let before = st.centroid_normalized().to_vec();
        st.update(&s, &History::new(), 1.0);
        assert_eq!(st.centroid_normalized(), before.as_slice());
    }

    #[test]
    fn update_moves_toward_better_region_and_overshoots() {
        // Observations: time falls as dim-2 falls. The best observation is at
        // x₂ = 0.2; the centroid must land at or *below* it (overshoot), never above.
        let s = space();
        let mut st = state();
        let mut h = History::new();
        for i in 0..20 {
            let x = 0.2 + 0.6 * ((i % 7) as f64 / 6.0);
            let mut p = s.default_point();
            p[2] = s.dims[2].denormalize(x);
            h.push(p, 1.0, 100.0 + 400.0 * x);
        }
        st.update(&s, &h, 1.0);
        let e2 = st.centroid_normalized()[2];
        assert!(
            e2 <= 0.2 + 1e-9,
            "centroid x₂ = {e2}, expected overshoot past 0.2"
        );
    }

    #[test]
    fn centroid_stays_in_unit_cube() {
        // Best observation at the boundary: the overshoot must clamp.
        let s = space();
        let mut st = state();
        let mut h = History::new();
        for i in 0..20 {
            let x = 0.1 * ((i % 5) as f64 / 4.0); // all near 0
            let mut p = s.default_point();
            p[2] = s.dims[2].denormalize(x);
            h.push(p, 1.0, 100.0 + 400.0 * x);
        }
        st.update(&s, &h, 1.0);
        for &v in st.centroid_normalized() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn default_config_matches_paper_guidance() {
        let c = CentroidConfig::default();
        assert!(c.window >= 10, "N should be 10–20 per §4.3");
        assert!(c.alpha > 0.0 && c.beta > 0.0);
        assert_eq!(c.find_best, FindBestMode::ModelBased);
        assert_eq!(c.gradient, GradientMode::MlCorners);
    }
}
