//! Durable learned state for the Autotune Backend.
//!
//! Every state-mutating backend request is encoded as a [`WalEvent`] and
//! appended to a `rockdur` write-ahead log *before* it is applied
//! (append-before-apply). Because the backend thread serializes all
//! mutations, the WAL records the exact operation order, and replaying it
//! over the last compacted snapshot reproduces the backend bit-identically:
//! tuner RNG streams are checkpointed raw (`TunerState::rng_state`), so a
//! recovered tuner continues the *same* random sequence instead of
//! restarting it from the seed.
//!
//! Corruption is data, not an error: torn tails, bit flips and
//! foreign-version snapshots are quarantined by `rockdur` and surfaced here
//! through [`RecoveryReport`] and the dashboard's
//! `wal_records_quarantined` counter — recovery never panics and never
//! silently drops a *committed* prefix.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use optimizers::tuner::TuningContext;
use rockdur::{Recovery, Wal};
use rockhopper::applevel::AppCache;
use rockhopper::tuner::TunerState;

use crate::monitor::Dashboard;

/// Default number of WAL records between compacted snapshots.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// One state-mutating backend operation, as logged to the WAL.
///
/// The set is closed over exactly the operations that can change learned
/// state: suggestions (they advance tuner RNG streams and iteration
/// counters), report ingest (both the typed and the JSONL path log the
/// canonical JSONL form), and app-cache recomputation. Read-only requests
/// are never logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum WalEvent {
    /// A suggestion was issued for `(user, signature)` under `ctx`.
    Suggest {
        /// Tenant that asked.
        user: String,
        /// Query signature.
        signature: u64,
        /// Compile-time context the tuner saw.
        ctx: TuningContext,
    },
    /// An event-log document was ingested.
    IngestJsonl {
        /// Tenant that reported.
        user: String,
        /// Application the document belongs to.
        app_id: String,
        /// The JSONL document, verbatim.
        doc: String,
    },
    /// An app-cache recomputation was requested for one artifact.
    UpdateAppCache {
        /// Tenant that asked.
        user: String,
        /// Artifact whose cache entry is recomputed.
        artifact_id: String,
        /// Signatures participating in the joint optimization.
        signatures: Vec<u64>,
        /// Expected parallelism hint.
        expected_p: f64,
    },
}

/// One tuner's checkpoint inside a [`BackendSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TunerEntry {
    /// Tenant.
    pub(crate) user: String,
    /// Query signature.
    pub(crate) signature: u64,
    /// Full tuner state, including raw RNG words.
    pub(crate) state: TunerState,
}

/// One cached query embedding inside a [`BackendSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct EmbeddingEntry {
    /// Query signature.
    pub(crate) signature: u64,
    /// The embedding vector last seen for it.
    pub(crate) embedding: Vec<f64>,
}

/// One served suggestion inside a [`BackendSnapshot`]'s memo.
///
/// The WAL's `Suggest` records replay to bit-identical points, but records
/// *compacted into a snapshot* are pruned — so the snapshot itself must
/// carry what was served, or a restarted serving layer would re-evaluate
/// those keys on tuners that have already advanced past them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ServedEntry {
    /// Tenant.
    pub(crate) user: String,
    /// Query signature.
    pub(crate) signature: u64,
    /// The exact tuning context the suggestion was computed under.
    pub(crate) ctx: TuningContext,
    /// The configuration that was served.
    pub(crate) point: Vec<f64>,
}

/// One degradation-tracking entry inside a [`BackendSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DegradedEntry {
    /// Tenant.
    pub(crate) user: String,
    /// Query signature.
    pub(crate) signature: u64,
    /// Whether the tuner is currently degraded to the default config.
    pub(crate) degraded: bool,
    /// Suggests served while degraded (probe cadence counter).
    pub(crate) suggests_while_degraded: u32,
}

/// A compacted, self-contained image of the backend's learned state.
///
/// Hash-map contents are encoded as vectors sorted by key so the same
/// logical state always produces the same bytes — snapshots taken by two
/// deterministic replicas are comparable byte-for-byte. Configuration that
/// the operator passes at construction time (baseline model, degradation
/// policy) is deliberately *not* included: a snapshot restores what was
/// learned, not how the process was launched.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct BackendSnapshot {
    /// The backend seed; adopted on recovery so new tuners derive the same
    /// per-signature streams as before the crash.
    pub(crate) seed: u64,
    /// Transient-storage retries observed so far.
    pub(crate) ingest_retries: u64,
    /// Per-`(user, signature)` tuner checkpoints, sorted by key.
    pub(crate) tuners: Vec<TunerEntry>,
    /// Per-signature embeddings, sorted by signature.
    pub(crate) embeddings: Vec<EmbeddingEntry>,
    /// Per-`(user, signature)` degradation trackers, sorted by key.
    pub(crate) degraded: Vec<DegradedEntry>,
    /// Live served suggestions (not yet invalidated by a report), sorted by
    /// `(user, signature, ctx)` — the serving layer rebuilds its coalescing
    /// cache from these plus the replayed tail.
    pub(crate) served: Vec<ServedEntry>,
    /// The app-level configuration cache (already a sorted map).
    pub(crate) app_cache: AppCache,
    /// Monitoring state, counters included.
    pub(crate) dashboard: Dashboard,
}

/// One replayed operation, in WAL order — the serving layer uses this to
/// rebuild its coalescing cache exactly as the request stream left it.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayedOp {
    /// A suggestion was replayed; `point` is the (bit-identical) re-derived
    /// configuration.
    Suggest {
        /// Tenant.
        user: String,
        /// Query signature.
        signature: u64,
        /// Context the suggestion was computed under.
        ctx: TuningContext,
        /// The configuration the replayed tuner produced.
        point: Vec<f64>,
    },
    /// A report was replayed; any cached suggestion for these signatures is
    /// stale, exactly as it would have been invalidated live.
    Invalidate {
        /// Tenant.
        user: String,
        /// Signatures the report mentioned (sorted, deduplicated).
        signatures: Vec<u64>,
    },
}

/// What a [`crate::AutotuneBackend::recover_from`] call found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// WAL records replayed into the backend.
    pub replayed: u64,
    /// Corrupt artifacts quarantined: torn/flipped WAL suffixes, orphaned
    /// segments, unreadable or foreign-version snapshots, and records whose
    /// checksum passed but whose event encoding did not parse.
    pub quarantined: u64,
    /// Bytes set aside by quarantine.
    pub quarantined_bytes: u64,
    /// Whether a usable compacted snapshot was restored.
    pub restored_snapshot: bool,
    /// Replayed operations in WAL order, for serving-layer cache rebuild.
    pub ops: Vec<ReplayedOp>,
}

/// The backend's handle on its durable state: a `rockdur` WAL plus the
/// snapshot cadence and the replay guard.
#[derive(Debug)]
pub(crate) struct Durability {
    wal: Wal,
    snapshot_every: u64,
    records_since_snapshot: u64,
    /// While `true`, [`crate::AutotuneBackend`] mutators skip logging —
    /// replayed operations must not be re-appended.
    pub(crate) replaying: bool,
}

impl Durability {
    /// Open (or create) the WAL under `dir` and return it with whatever
    /// state survived on disk. The caller decides whether to replay the
    /// recovery or treat its own in-memory state as authoritative.
    pub(crate) fn open(dir: &Path, snapshot_every: u64) -> io::Result<(Durability, Recovery)> {
        let (wal, recovery) = Wal::open(dir)?;
        let d = Durability {
            wal,
            snapshot_every: snapshot_every.max(1),
            records_since_snapshot: 0,
            replaying: false,
        };
        Ok((d, recovery))
    }

    /// Append one event. Returns its sequence number.
    pub(crate) fn append_event(&mut self, event: &WalEvent) -> io::Result<u64> {
        let bytes = serde_json::to_vec(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let seq = self.wal.append(&bytes)?;
        self.records_since_snapshot = self.records_since_snapshot.saturating_add(1);
        Ok(seq)
    }

    /// Whether enough records accumulated since the last snapshot.
    pub(crate) fn snapshot_due(&self) -> bool {
        self.records_since_snapshot >= self.snapshot_every
    }

    /// Write a compacted snapshot and prune the log behind it.
    pub(crate) fn write_snapshot(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.wal.snapshot(payload)?;
        self.records_since_snapshot = 0;
        Ok(seq)
    }

    /// Force-sync buffered appends to disk. This is the *only* flush the
    /// drain path performs — deliberately not a snapshot, so crash tests
    /// exercise real log replay rather than a trivial snapshot load.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }
}

/// Extract the sorted, deduplicated query signatures a report's events
/// mention. Both the serving layer's live invalidation and the replayed
/// [`ReplayedOp::Invalidate`] use this one definition, so a recovered
/// coalescing cache drops exactly the entries the live server would have.
pub fn report_signatures(events: &[sparksim::event::SparkEvent]) -> Vec<u64> {
    use sparksim::event::SparkEvent;
    let mut sigs: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            SparkEvent::QueryStart {
                query_signature, ..
            }
            | SparkEvent::QueryEnd {
                query_signature, ..
            }
            | SparkEvent::StageCompleted {
                query_signature, ..
            } => Some(*query_signature),
            SparkEvent::ApplicationStart { .. } | SparkEvent::ApplicationEnd { .. } => None,
        })
        .collect();
    sigs.sort_unstable();
    sigs.dedup();
    sigs
}
