//! **§6.2 "New workload embedding"**: virtual-operator embeddings vs the plain
//! operator-count embeddings of prior work, on 18 TPC-DS-style queries. The paper:
//! "starting from iteration 5, these embeddings yield an additional 5–10%
//! improvement in performance consistently."

use embedding::WorkloadEmbedder;
use optimizers::env::{Environment, QueryEnv};
use optimizers::space::ConfigSpace;
use optimizers::tuner::Tuner;
use pipeline::flighting::{run_flight_with_embedder, Benchmark, FlightPlan, PoolId, Strategy};
use pipeline::storage::Storage;
use pipeline::trainer::train_baseline;
use rockhopper::RockhopperTuner;
use sparksim::noise::NoiseSpec;

use crate::harness::{write_csv, Scale, Summary};

/// Total true execution time across the query set per iteration, tuning with the
/// given embedder (used for both the offline baseline and the online context).
fn total_time_trace(
    embedder: &WorkloadEmbedder,
    queries: &[usize],
    sf: f64,
    iters: usize,
    runs_per_query: usize,
    seed: u64,
) -> Vec<f64> {
    let space = ConfigSpace::query_level();
    let flight = FlightPlan {
        benchmark: Benchmark::TpcDs,
        // Pinned to the original 24 templates so recorded results stay stable as the
        // workloads crate grows.
        queries: (1..=24).collect(),
        scale_factor: sf,
        runs_per_query,
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        noise: NoiseSpec::low(),
        seed,
    };
    let rows = run_flight_with_embedder(&flight, &space, &Storage::new(), embedder);
    let mut totals = vec![0.0; iters];
    for &q in queries {
        let sig = embedding::query_signature(&workloads::tpcds::query(q, sf));
        let baseline = train_baseline(
            &space,
            &rows
                .iter()
                .filter(|r| r.signature != sig)
                .cloned()
                .collect::<Vec<_>>(),
            None,
            seed,
        )
        .expect("flighting rows exist");
        let mut env = QueryEnv::tpcds(
            q,
            sf,
            NoiseSpec {
                fluctuation: 0.3,
                spike: 0.3,
            },
            seed ^ q as u64,
        )
        .with_embedder(embedder.clone());
        let mut tuner = RockhopperTuner::builder(space.clone())
            .baseline(baseline)
            .guardrail(None)
            .seed(seed ^ (q as u64) << 4)
            .build();
        for total in totals.iter_mut() {
            let p = tuner.suggest(&env.context());
            *total += env.true_time(&p);
            let o = env.run(&p);
            tuner.observe(&p, &o);
        }
    }
    totals
}

/// Run the ablation.
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 20.0,
        Scale::Quick => 1.0,
    };
    let queries: Vec<usize> = match scale {
        Scale::Full => (1..=18).collect(), // the paper's "18 TPC-DS queries"
        Scale::Quick => vec![1, 5, 13],
    };
    let iters = scale.pick(30, 8);
    let runs_per_query = scale.pick(25, 5);

    let plain = total_time_trace(
        &WorkloadEmbedder::plain(),
        &queries,
        sf,
        iters,
        runs_per_query,
        62,
    );
    let virt = total_time_trace(
        &WorkloadEmbedder::virtual_ops(),
        &queries,
        sf,
        iters,
        runs_per_query,
        62,
    );

    let mut summary = Summary::new("exp_embedding_ablation");
    // Gain from iteration 5 on, as the paper reports.
    let from = 5.min(iters - 1);
    let plain_tail = ml::stats::mean(&plain[from..]);
    let virt_tail = ml::stats::mean(&virt[from..]);
    let gain = 100.0 * (plain_tail - virt_tail) / plain_tail;
    summary.row("queries", queries.len());
    summary.row(
        "total time from iter 5 (plain vs virtual)",
        format!("{plain_tail:.0} vs {virt_tail:.0} ms"),
    );
    summary.row(
        "virtual-operator gain",
        format!("{gain:.1}% (paper: 5–10% from iteration 5)"),
    );
    let rows: Vec<Vec<f64>> = (0..iters)
        .map(|t| vec![t as f64, plain[t], virt[t]])
        .collect();
    summary.files.push(write_csv(
        "exp_embedding_ablation",
        "iteration,plain_total_ms,virtual_total_ms",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablation_runs_and_reports_gain() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        assert!(s.rows.iter().any(|(k, _)| k == "virtual-operator gain"));
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
