//! Expression- and symbol-level semantic rules: ignored `Result`/`Option`
//! returns, lossy `as` casts, and dead `pub` items.
//!
//! All three run on the parsed AST with the shared type environment from
//! [`crate::callgraph`]; they apply to non-test code of the
//! [`crate::PANIC_SCOPE`] crates.

use std::collections::BTreeSet;

use crate::callgraph::{visit_fn, TypeEnv, Visitor};
use crate::parser::{Expr, LitKind, Stmt};
use crate::symbols::{FnInfo, Target, Workspace};
use crate::{Diagnostic, Rule, PANIC_SCOPE};

/// Run every semantic rule. Returned diagnostics are unsorted; the caller
/// merges and sorts.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for fi in ws.fns() {
        if !PANIC_SCOPE.contains(&fi.krate.as_str()) || fi.cfg_test {
            continue;
        }
        let mut v = FnRules {
            ws,
            fi,
            out: &mut out,
        };
        visit_fn(ws, fi, &mut v);
    }
    out.extend(dead_pub(ws));
    out
}

struct FnRules<'a> {
    ws: &'a Workspace,
    fi: &'a FnInfo,
    out: &'a mut Vec<Diagnostic>,
}

impl Visitor for FnRules<'_> {
    fn on_stmt(&mut self, env: &TypeEnv, stmt: &Stmt) {
        // RH014: a `;`-terminated call whose value is a workspace
        // `Result`/`Option` silently discards the failure channel. `let _ =`
        // and `?` are explicit handling and never reach this pattern.
        let Stmt::Expr { expr, semi: true } = stmt else {
            return;
        };
        let (ret, line, what) = match expr {
            Expr::Call { callee, line, .. } => {
                let Expr::Path { segs, .. } = &**callee else {
                    return;
                };
                let Target::Fns(idxs) = resolve_for(self.ws, self.fi, segs) else {
                    return;
                };
                let Some(ret) = all_fallible(self.ws, &idxs) else {
                    return;
                };
                (ret, *line, segs.join("::"))
            }
            Expr::MethodCall {
                recv, method, line, ..
            } => {
                let Some(ty) = env.infer(self.ws, self.fi, recv) else {
                    return;
                };
                let idxs = self.ws.methods_of(&ty, method);
                if idxs.is_empty() {
                    return;
                }
                let Some(ret) = all_fallible(self.ws, &idxs) else {
                    return;
                };
                (ret, *line, format!("{ty}::{method}"))
            }
            _ => return,
        };
        self.out.push(Diagnostic {
            file: self.ws.files()[self.fi.file].rel.clone(),
            line: line as usize,
            rule: Rule::IgnoredResult,
            message: format!(
                "call to `{what}` discards its `{ret}` return value; \
                 handle it, propagate with `?`, or discard explicitly with `let _ =`"
            ),
        });
    }

    fn on_expr(&mut self, env: &TypeEnv, expr: &Expr) {
        // RH017: a `match` over `RunOutcome` must name `Failed` and
        // `Censored` — the failure channel is the point of the type, and a
        // wildcard arm silently swallows whatever failure mode is added next.
        if let Expr::Match { arms, line, .. } = expr {
            if let Some(problem) = outcome_match_problem(arms) {
                self.out.push(Diagnostic {
                    file: self.ws.files()[self.fi.file].rel.clone(),
                    line: *line as usize,
                    rule: Rule::OutcomeMatch,
                    message: problem,
                });
            }
            return;
        }

        // RH015: lossy `as` casts with a locally-known source type.
        let Expr::Cast {
            expr: operand,
            ty,
            line,
        } = expr
        else {
            return;
        };
        let dst = ty.head_name();
        let Some(src) = env.infer(self.ws, self.fi, operand) else {
            return;
        };
        if let Some(loss) = cast_loss(&src, dst, operand) {
            self.out.push(Diagnostic {
                file: self.ws.files()[self.fi.file].rel.clone(),
                line: *line as usize,
                rule: Rule::LossyCast,
                message: format!("cast from `{src}` to `{dst}` {loss}"),
            });
        }
    }
}

/// RH017 helper: `Some(message)` when `arms` form a `RunOutcome` match that
/// omits the failure variants or hides them behind a catch-all arm.
///
/// A match counts as a `RunOutcome` match when an arm pattern carries a
/// `RunOutcome`-qualified path, or when unqualified arms name at least two of
/// the three variants (a `use RunOutcome::*` match). An arm is a catch-all
/// when it binds or wildcards the whole scrutinee without naming any variant.
fn outcome_match_problem(arms: &[crate::parser::Arm]) -> Option<String> {
    const VARIANTS: [&str; 3] = ["Success", "Failed", "Censored"];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut qualified = false;
    let mut catch_all = false;
    for arm in arms {
        let mut arm_variants: Vec<&str> = Vec::new();
        for path in &arm.pat_paths {
            if let Some(i) = path.iter().position(|s| s == "RunOutcome") {
                qualified = true;
                if let Some(v) = path.get(i + 1) {
                    if let Some(&known) = VARIANTS.iter().find(|&&k| k == v) {
                        arm_variants.push(known);
                    }
                }
            } else if let [only] = path.as_slice() {
                if let Some(&known) = VARIANTS.iter().find(|&&k| k == only) {
                    arm_variants.push(known);
                }
            }
        }
        if arm_variants.is_empty() {
            // `Failed { reason: _, .. }` sets the arm's wildcard flag, so a
            // catch-all is only an arm that names no type or variant at all.
            let names_a_type = arm
                .pat_paths
                .iter()
                .flatten()
                .any(|s| s.chars().next().map(char::is_uppercase).unwrap_or(false));
            if !names_a_type && (arm.wildcard || !arm.pat_paths.is_empty()) {
                catch_all = true;
            }
        }
        seen.extend(arm_variants);
    }
    if seen.is_empty() || (!qualified && seen.len() < 2) {
        return None;
    }
    if catch_all {
        return Some(
            "match on `RunOutcome` hides variants behind a catch-all arm; \
             name `Failed { .. }` and `Censored` explicitly"
                .to_string(),
        );
    }
    let missing: Vec<&str> = ["Failed", "Censored"]
        .iter()
        .copied()
        .filter(|v| !seen.contains(v))
        .collect();
    if missing.is_empty() {
        None
    } else {
        Some(format!(
            "match on `RunOutcome` never handles `{}`; failed and censored \
             runs must be dealt with explicitly",
            missing.join("`/`")
        ))
    }
}

/// `Some(ret head)` when every candidate returns `Result` or `Option`.
fn all_fallible(ws: &Workspace, idxs: &[usize]) -> Option<String> {
    let mut ret = None;
    for &i in idxs {
        let head = ws.fns()[i].item.ret.as_ref()?.head_name().to_string();
        if head != "Result" && head != "Option" {
            return None;
        }
        match &ret {
            None => ret = Some(head),
            Some(r) if *r == head => {}
            Some(_) => return None,
        }
    }
    ret
}

fn resolve_for(ws: &Workspace, fi: &FnInfo, segs: &[String]) -> Target {
    if segs.first().map(String::as_str) == Some("Self") {
        if let Some(self_ty) = &fi.self_ty {
            let mut s = segs.to_vec();
            s[0] = self_ty.clone();
            return ws.resolve(&fi.krate, &fi.module, &s);
        }
        return Target::Unknown;
    }
    ws.resolve(&fi.krate, &fi.module, segs)
}

const INT_TYPES: [(&str, u32, bool); 12] = [
    ("u8", 8, false),
    ("u16", 16, false),
    ("u32", 32, false),
    ("u64", 64, false),
    ("u128", 128, false),
    ("usize", 64, false),
    ("i8", 8, true),
    ("i16", 16, true),
    ("i32", 32, true),
    ("i64", 64, true),
    ("i128", 128, true),
    ("isize", 64, true),
];

fn int_info(ty: &str) -> Option<(u32, bool)> {
    INT_TYPES
        .iter()
        .find(|(name, _, _)| *name == ty)
        .map(|&(_, bits, signed)| (bits, signed))
}

/// Why a cast `src as dst` is lossy, or `None` if it is safe / guarded.
fn cast_loss(src: &str, dst: &str, operand: &Expr) -> Option<String> {
    // Unsuffixed integer literal: check the value against the target range.
    if src == "{integer}" {
        if let Expr::Lit {
            kind: LitKind::Int,
            text,
            ..
        } = operand
        {
            let (bits, signed) = int_info(dst)?;
            let value = parse_int_literal(text)?;
            let max = if signed {
                (1u128 << (bits - 1)) - 1
            } else if bits == 128 {
                u128::MAX
            } else {
                (1u128 << bits) - 1
            };
            if value > max {
                return Some(format!(
                    "overflows `{dst}` (literal {value} > {max}); the value wraps"
                ));
            }
        }
        return None;
    }

    let src_float = src == "f32" || src == "f64";
    let dst_float = dst == "f32" || dst == "f64";

    if src_float && int_info(dst).is_some() {
        if has_rounding(operand) {
            return None;
        }
        return Some(
            "truncates toward zero and saturates at the bounds; \
             round explicitly (`.round()`, `.floor()`, `.ceil()`, `.trunc()`) first"
                .to_string(),
        );
    }
    if src == "f64" && dst == "f32" {
        return Some("loses precision (f64 → f32)".to_string());
    }
    if src_float && dst_float {
        return None;
    }

    let ((src_bits, src_signed), (dst_bits, dst_signed)) = (int_info(src)?, int_info(dst)?);
    if src_signed && !dst_signed {
        if has_nonneg_guard(operand) {
            if src_bits > dst_bits {
                return Some(format!(
                    "narrows from {src_bits} to {dst_bits} bits; out-of-range values wrap"
                ));
            }
            return None;
        }
        return Some(
            "wraps negative values to huge positive ones; \
             guard with `.max(0)` / `.unsigned_abs()` or use `try_from`"
                .to_string(),
        );
    }
    if src_bits > dst_bits {
        return Some(format!(
            "narrows from {src_bits} to {dst_bits} bits; out-of-range values wrap"
        ));
    }
    // Equal-width unsigned → signed (e.g. `usize as i64`) is tolerated: the
    // workspace's sizes are far below 2^63 and flagging `len() as i64` is
    // noise. Same-signedness widening is always safe.
    None
}

/// Does the cast operand's method chain end in an explicit rounding step?
fn has_rounding(e: &Expr) -> bool {
    match e {
        Expr::MethodCall { method, recv, .. } => {
            matches!(method.as_str(), "round" | "floor" | "ceil" | "trunc")
                || matches!(method.as_str(), "max" | "min" | "clamp" | "abs") && has_rounding(recv)
        }
        Expr::Unary { expr, .. } | Expr::Ref { expr, .. } => has_rounding(expr),
        _ => false,
    }
}

/// Does the operand guarantee a non-negative value before a signed→unsigned
/// cast? Recognizes `.max(<nonneg literal>)`, `.clamp(<nonneg literal>, ..)`,
/// `.abs()`, `.unsigned_abs()`, and `.len()`-like usize sources upstream.
fn has_nonneg_guard(e: &Expr) -> bool {
    match e {
        Expr::MethodCall {
            method, args, recv, ..
        } => match method.as_str() {
            "abs" | "unsigned_abs" => true,
            "max" | "clamp" => args.first().map(is_nonneg_literal).unwrap_or(false),
            "min" => has_nonneg_guard(recv),
            _ => false,
        },
        Expr::Ref { expr, .. } => has_nonneg_guard(expr),
        _ => false,
    }
}

fn is_nonneg_literal(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Lit {
            kind: LitKind::Int | LitKind::Float,
            ..
        }
    )
}

fn parse_int_literal(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    let t = INT_TYPES
        .iter()
        .map(|(name, _, _)| *name)
        .fold(t, |acc, suffix| {
            acc.strip_suffix(suffix).map(str::to_string).unwrap_or(acc)
        });
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// RH016: `pub` items in production crates that no file other than their own
/// ever references. Trait-associated items, `main`, test items, and
/// underscore-prefixed names are exempt; so are crate-root re-exports (the
/// re-export itself counts as a reference from `lib.rs`).
fn dead_pub(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for rec in ws.item_records() {
        if rec.vis != crate::parser::Vis::Pub
            || rec.cfg_test
            || rec.trait_associated
            || !PANIC_SCOPE.contains(&rec.krate.as_str())
            || rec.name == "main"
            || rec.name.starts_with('_')
        {
            continue;
        }
        if !seen.insert((rec.file, rec.name.clone())) {
            continue;
        }
        let rel = &ws.files()[rec.file].rel;
        // A type's values can cross files purely through inference (`let e =
        // cache.get(..)`) without its name ever appearing at the use site, so
        // for types the name, every field/variant, and every inherent method
        // must all be unreferenced before the item counts as dead.
        let mut names = vec![rec.name.clone()];
        if rec.tag != "fn" {
            if let Some(info) = ws.type_named(&rec.name) {
                names.extend(info.fields.iter().map(|(n, _)| n.clone()));
                names.extend(info.variants.iter().cloned());
            }
            names.extend(ws.method_names_of(&rec.name));
        }
        if names.iter().all(|n| ws.external_references(n, rel) == 0) {
            out.push(Diagnostic {
                file: rel.clone(),
                line: rec.line as usize,
                rule: Rule::DeadPub,
                message: format!(
                    "pub {} `{}` is never referenced outside this file; \
                     remove it or demote to `pub(crate)`",
                    rec.tag, rec.name
                ),
            });
        }
    }
    out
}
