//! JSON text rendering and parsing for the [`Value`](crate::Value) tree.
//!
//! Lives in the `serde` shim (rather than `serde_json`) so map serialization
//! can sort keys by their rendered form; `serde_json` re-exports it.

use crate::{DeError, Value};

/// Render a value as compact JSON. Non-finite floats render as `null`,
/// matching upstream `serde_json`.
pub fn render_compact(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(input: &str) -> Result<Value, DeError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn error(&self, message: &str) -> DeError {
        DeError::new(format!("{message} at byte {}", self.pos))
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = raw.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = raw.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        raw.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(&format!("invalid number '{raw}'")))
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our renderer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, render_compact};
    use crate::Value;

    #[test]
    fn round_trips_nested_structures() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("tpch_q9 \"scaled\"\n".into())),
            ("elapsed_ms".into(), Value::Float(1234.5678)),
            (
                "stages".into(),
                Value::Array(vec![Value::Int(-3), Value::UInt(u64::MAX)]),
            ),
            ("aqe".into(), Value::Bool(true)),
            ("parent".into(), Value::Null),
        ]);
        let text = render_compact(&value);
        assert_eq!(parse(&text).expect("round trip"), value);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
