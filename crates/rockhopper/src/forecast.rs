//! Data-size forecasting — the paper's §8 future-work direction ("adaptive
//! strategies for dynamic workloads") and a direct answer to its §1 observation that
//! "the size of the data is often unknown at the start of a job".
//!
//! The forecaster predicts the next run's input cardinality `p_{t+1}` from the
//! history of observed sizes, combining three candidate models chosen by in-sample
//! fit: *last value* (random-walk workloads), *linear trend in log space* (steadily
//! growing inputs), and *seasonal* (periodic `t mod K` schedules, detected by
//! autocorrelation). The prediction feeds FIND_BEST's reference size, the centroid
//! update's `p_{t+1}`, and the app-cache pre-computation.

use optimizers::tuner::History;
use serde::{Deserialize, Serialize};

/// Which model produced a forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
// rhlint:allow(RH016): public model field type of `Forecast`
pub enum ForecastModel {
    /// Repeat the most recent size.
    LastValue,
    /// Linear trend in `ln p`.
    LogTrend,
    /// Periodic repeat with the detected period.
    Seasonal {
        /// Detected period length.
        period: usize,
    },
}

/// A forecast with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Forecast {
    /// Predicted next data size.
    pub value: f64,
    /// The model that won in-sample selection.
    pub model: ForecastModel,
}

/// Maximum period length the seasonal detector considers.
const MAX_PERIOD: usize = 24;
/// Window of recent sizes the forecaster looks at.
const WINDOW: usize = 48;

/// Forecast the next run's data size from `history`. Returns `None` when no sizes
/// have been observed yet.
pub fn forecast_data_size(history: &History) -> Option<Forecast> {
    let sizes: Vec<f64> = history
        .window(WINDOW)
        .iter()
        .map(|o| o.data_size.max(1e-9))
        .collect();
    let n = sizes.len();
    if n == 0 {
        return None;
    }
    if n < 4 {
        return Some(Forecast {
            value: sizes[n - 1],
            model: ForecastModel::LastValue,
        });
    }

    // Candidate 1: last value. One-step in-sample error = |p_t − p_{t−1}| in logs.
    let last_err = one_step_error(&sizes, |hist| hist.last().copied().unwrap_or(1.0));

    // Candidate 2: log-linear trend.
    let trend_err = one_step_error(&sizes, trend_predict);

    // Candidate 3: best seasonal period by the same criterion.
    let mut best_seasonal: Option<(usize, f64)> = None;
    for period in 2..=MAX_PERIOD.min(n / 2) {
        let err = one_step_error(&sizes, move |hist| {
            if hist.len() >= period {
                hist[hist.len() - period]
            } else {
                hist.last().copied().unwrap_or(1.0)
            }
        });
        if best_seasonal.map_or(true, |(_, e)| err < e) {
            best_seasonal = Some((period, err));
        }
    }

    let mut best = (
        Forecast {
            value: sizes[n - 1],
            model: ForecastModel::LastValue,
        },
        last_err,
    );
    if trend_err < best.1 {
        best = (
            Forecast {
                value: trend_predict(&sizes),
                model: ForecastModel::LogTrend,
            },
            trend_err,
        );
    }
    if let Some((period, err)) = best_seasonal {
        // Require a clear win: seasonality claims structure, so it must beat the
        // naive model decisively or we'd hallucinate periods in random walks.
        if err < 0.8 * best.1 {
            best = (
                Forecast {
                    value: sizes[n - period],
                    model: ForecastModel::Seasonal { period },
                },
                err,
            );
        }
    }
    Some(best.0)
}

/// Mean absolute one-step-ahead error in log space of `predict` over the series.
fn one_step_error<F: Fn(&[f64]) -> f64>(sizes: &[f64], predict: F) -> f64 {
    let n = sizes.len();
    let start = n / 2; // evaluate on the second half only
    let mut total = 0.0;
    let mut count = 0;
    for t in start.max(1)..n {
        let pred = predict(&sizes[..t]).max(1e-9);
        total += (pred.ln() - sizes[t].ln()).abs();
        count += 1;
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// OLS trend in log space, extrapolated one step.
fn trend_predict(sizes: &[f64]) -> f64 {
    let n = sizes.len() as f64;
    if sizes.len() < 2 {
        return *sizes.last().unwrap_or(&1.0);
    }
    let xs_mean = (n - 1.0) / 2.0;
    let ys: Vec<f64> = sizes.iter().map(|p| p.ln()).collect();
    let ys_mean = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, y) in ys.iter().enumerate() {
        let dx = i as f64 - xs_mean;
        num += dx * (y - ys_mean);
        den += dx * dx;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    (ys_mean + slope * (n - xs_mean)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_of(sizes: &[f64]) -> History {
        let mut h = History::new();
        for &p in sizes {
            h.push(vec![0.0], p, 100.0);
        }
        h
    }

    #[test]
    fn empty_history_has_no_forecast() {
        assert!(forecast_data_size(&History::new()).is_none());
    }

    #[test]
    fn short_history_repeats_last_value() {
        let f = forecast_data_size(&history_of(&[5.0, 7.0])).unwrap();
        assert_eq!(f.model, ForecastModel::LastValue);
        assert_eq!(f.value, 7.0);
    }

    #[test]
    fn detects_steady_growth() {
        // Geometric growth is exactly linear in log space — LogTrend's home turf.
        let sizes: Vec<f64> = (0..30).map(|i| 1.08f64.powi(i)).collect();
        let f = forecast_data_size(&history_of(&sizes)).unwrap();
        assert_eq!(f.model, ForecastModel::LogTrend);
        let expected = 1.08f64.powi(30);
        assert!(
            (f.value / expected - 1.0).abs() < 0.05,
            "trend forecast {} should approach {expected}",
            f.value
        );
    }

    #[test]
    fn detects_periodicity() {
        // Period-7 sawtooth, 6 full cycles.
        let sizes: Vec<f64> = (0..42).map(|i| 1.0 + (i % 7) as f64).collect();
        let f = forecast_data_size(&history_of(&sizes)).unwrap();
        assert_eq!(f.model, ForecastModel::Seasonal { period: 7 });
        // Next value in the cycle is 1.0 (t = 42 ≡ 0 mod 7).
        assert_eq!(f.value, 1.0);
    }

    #[test]
    fn constant_series_forecasts_itself() {
        let f = forecast_data_size(&history_of(&[3.0; 20])).unwrap();
        assert!((f.value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_random_walk_does_not_hallucinate_seasonality() {
        // Deterministic pseudo-random walk.
        let mut sizes = vec![1.0];
        for i in 1..40u64 {
            let step = ((i.wrapping_mul(2654435761) >> 7) % 100) as f64 / 500.0 - 0.1;
            let prev = *sizes.last().expect("non-empty");
            sizes.push((prev * (1.0 + step)).clamp(0.3, 3.0));
        }
        let f = forecast_data_size(&history_of(&sizes)).unwrap();
        assert!(
            !matches!(f.model, ForecastModel::Seasonal { .. }),
            "random walk misdetected as {:?}",
            f.model
        );
    }

    #[test]
    fn beats_naive_forecasting_on_dynamic_schedules() {
        // End-to-end check against the workload generator's schedules.
        use workloads::dynamic::DataSchedule;
        let schedule = DataSchedule::Periodic {
            base: 1.0,
            amplitude: 2.0,
            k: 9,
        };
        let sizes = schedule.sizes(45);
        let mut model_err = 0.0;
        let mut naive_err = 0.0;
        for t in 20..45 {
            let h = history_of(&sizes[..t as usize]);
            let f = forecast_data_size(&h).unwrap();
            let truth = schedule.size_at(t);
            model_err += (f.value - truth).abs();
            naive_err += (sizes[t as usize - 1] - truth).abs();
        }
        assert!(
            model_err < naive_err * 0.5,
            "forecaster {model_err:.2} vs naive {naive_err:.2}"
        );
    }
}
