//! Integration: the full lint pass over the real workspace checkout, plus
//! end-to-end rule/suppression behavior through the public API.

use std::path::Path;

use rhlint::{check_workspace, render_report, scan_source, Rule, ScanScope};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/rhlint sits two levels under the workspace root")
}

#[test]
fn the_workspace_itself_is_clean() {
    let diagnostics = check_workspace(workspace_root()).expect("workspace scans");
    assert!(
        diagnostics.is_empty(),
        "workspace must stay rhlint-clean:\n{}",
        render_report(&diagnostics)
    );
}

#[test]
fn planted_violations_are_caught_end_to_end() {
    let source = r#"
pub fn bad(xs: &[f64]) -> f64 {
    let first = xs[0];
    let m = std::collections::HashMap::<u32, f64>::new();
    first + m.get(&0).copied().unwrap()
}
"#;
    let scope = ScanScope::for_crate("rockhopper");
    let diags = scan_source("rockhopper", Path::new("src/bad.rs"), source, scope);
    let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&Rule::SliceIndex), "{diags:?}");
    assert!(rules.contains(&Rule::HashIter), "{diags:?}");
    assert!(rules.contains(&Rule::Unwrap), "{diags:?}");
}

#[test]
fn justified_suppressions_silence_findings() {
    let source = r#"
pub fn allowed(xs: &[f64]) -> f64 {
    // rhlint:allow(slice-index): the caller guarantees at least one element
    xs[0]
}
"#;
    let scope = ScanScope::for_crate("rockhopper");
    let diags = scan_source("rockhopper", Path::new("src/ok.rs"), source, scope);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unjustified_suppressions_are_themselves_flagged() {
    let source = r#"
pub fn sneaky(xs: &[f64]) -> f64 {
    // rhlint:allow(slice-index)
    xs[0]
}
"#;
    let scope = ScanScope::for_crate("rockhopper");
    let diags = scan_source("rockhopper", Path::new("src/sneaky.rs"), source, scope);
    assert!(
        diags.iter().any(|d| d.rule == Rule::BadSuppression),
        "{diags:?}"
    );
}
