//! Quickstart: tune one recurrent TPC-H query with Rockhopper's Centroid Learning.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rockhopper_repro::prelude::*;

fn main() {
    // A recurrent workload: TPC-H Q6 at scale factor 10, with production-style
    // observational noise (fluctuations + occasional 2x spikes).
    let mut env = QueryEnv::tpch(
        6,
        10.0,
        NoiseSpec {
            fluctuation: 0.3,
            spike: 0.3,
        },
        42,
    );
    let space = env.space().clone();
    let default_ms = env.true_time(&space.default_point());
    println!("TPC-H Q6 under the default Spark configuration: {default_ms:.0} ms (true time)");

    // The production tuner: Centroid Learning with the default guardrail.
    let mut tuner = RockhopperTuner::builder(space.clone()).seed(7).build();

    for run in 0..40 {
        let candidate = tuner.suggest(&env.context());
        let outcome = env.run(&candidate);
        tuner.observe(&candidate, &outcome);
        if run % 10 == 9 {
            let tuned = env.true_time(&tuner.centroid());
            println!(
                "after {:>2} runs: centroid true time {tuned:.0} ms ({:+.1}% vs default)",
                run + 1,
                100.0 * (tuned - default_ms) / default_ms,
            );
        }
    }

    let conf = space.to_conf(&tuner.centroid());
    println!("\nrecommended configuration:");
    println!(
        "  spark.sql.files.maxPartitionBytes   = {:.0} MiB",
        conf.max_partition_bytes / (1024.0 * 1024.0)
    );
    println!(
        "  spark.sql.autoBroadcastJoinThreshold = {:.0} MiB",
        conf.auto_broadcast_join_threshold / (1024.0 * 1024.0)
    );
    println!(
        "  spark.sql.shuffle.partitions          = {}",
        conf.shuffle_partition_count()
    );
    let best = tuner.best_observed().expect("ran 40 iterations");
    println!("best observed run: {:.0} ms", best.elapsed_ms);
}
