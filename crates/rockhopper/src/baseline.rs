//! The offline **baseline model** (§4.2): a regression over
//! `[workload embedding, normalized configs, ln p] → ln elapsed_ms`, trained on
//! benchmark sweeps by the pipeline crate and used to warm-start candidate selection
//! at iteration 0, before any query-specific observations exist.

use ml::{BaggedTrees, Regressor};
use optimizers::space::ConfigSpace;
use serde::{Deserialize, Serialize};

/// One training row for the baseline model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Workload embedding of the benchmark query.
    pub embedding: Vec<f64>,
    /// Raw configuration point.
    pub point: Vec<f64>,
    /// Input data size of the run.
    pub data_size: f64,
    /// Observed elapsed time, ms.
    pub elapsed_ms: f64,
}

/// A trained baseline model bound to the space it was trained over. Serializable —
/// the backend stores baseline models as files (the paper round-trips ONNX models
/// through storage; this reproduction round-trips JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineModel {
    space: ConfigSpace,
    model: BaggedTrees,
    embedding_dim: usize,
}

impl BaselineModel {
    /// Train on benchmark rows. Rows whose embedding dimension disagrees with the
    /// first row are skipped (heterogeneous embedders must not poison the model).
    ///
    /// Returns `None` when no usable rows exist.
    pub fn train(space: &ConfigSpace, rows: &[BaselineRow], seed: u64) -> Option<BaselineModel> {
        let embedding_dim = rows.first()?.embedding.len();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for r in rows {
            if r.embedding.len() != embedding_dim {
                continue;
            }
            x.push(Self::features_in(
                space,
                &r.embedding,
                &r.point,
                r.data_size,
            ));
            y.push(r.elapsed_ms.max(1e-9).ln());
        }
        if x.is_empty() {
            return None;
        }
        let mut model = BaggedTrees::baseline_default(seed);
        model.fit(&x, &y).ok()?;
        Some(BaselineModel {
            space: space.clone(),
            model,
            embedding_dim,
        })
    }

    fn features_in(
        space: &ConfigSpace,
        embedding: &[f64],
        point: &[f64],
        data_size: f64,
    ) -> Vec<f64> {
        let mut f = embedding.to_vec();
        f.extend(space.normalize(point));
        f.push(data_size.max(1e-9).ln());
        f
    }

    /// Predicted elapsed time (ms) for a config under a workload context.
    /// An embedding of the wrong dimension is truncated/zero-padded — the baseline
    /// is advisory and must never panic in the serving path.
    pub fn predict_ms(&self, embedding: &[f64], point: &[f64], data_size: f64) -> f64 {
        let mut emb = embedding.to_vec();
        emb.resize(self.embedding_dim, 0.0);
        let f = Self::features_in(&self.space, &emb, point, data_size);
        self.model.predict(&f).exp()
    }

    /// Embedding dimensionality the model expects.
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::query_level()
    }

    fn synthetic_rows(n: usize) -> Vec<BaselineRow> {
        // True model: time = p · (100 + 300·(x₂ − 0.5)²) where x₂ is dim-2 normalized.
        let s = space();
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 / 9.0;
                let p = 1.0 + (i % 4) as f64;
                let mut point = s.default_point();
                point[2] = s.dims[2].denormalize(x);
                BaselineRow {
                    embedding: vec![1.0, 2.0],
                    point,
                    data_size: p,
                    elapsed_ms: p * (100.0 + 300.0 * (x - 0.5) * (x - 0.5)),
                }
            })
            .collect()
    }

    #[test]
    fn trains_and_ranks_configs_correctly() {
        let s = space();
        let m = BaselineModel::train(&s, &synthetic_rows(120), 1).unwrap();
        let mut good = s.default_point();
        good[2] = s.dims[2].denormalize(0.5);
        let mut bad = s.default_point();
        bad[2] = s.dims[2].denormalize(0.95);
        assert!(m.predict_ms(&[1.0, 2.0], &good, 2.0) < m.predict_ms(&[1.0, 2.0], &bad, 2.0));
    }

    #[test]
    fn predictions_scale_with_data_size() {
        let s = space();
        let m = BaselineModel::train(&s, &synthetic_rows(120), 1).unwrap();
        let p = s.default_point();
        let small = m.predict_ms(&[1.0, 2.0], &p, 1.0);
        let large = m.predict_ms(&[1.0, 2.0], &p, 4.0);
        assert!(large > small, "{small} vs {large}");
    }

    #[test]
    fn empty_rows_give_none() {
        assert!(BaselineModel::train(&space(), &[], 1).is_none());
    }

    #[test]
    fn mismatched_embedding_rows_are_skipped() {
        let mut rows = synthetic_rows(20);
        rows.push(BaselineRow {
            embedding: vec![1.0], // wrong dim
            point: space().default_point(),
            data_size: 1.0,
            elapsed_ms: 1.0,
        });
        let m = BaselineModel::train(&space(), &rows, 1).unwrap();
        assert_eq!(m.embedding_dim(), 2);
    }

    #[test]
    fn wrong_dim_embedding_at_predict_time_is_padded_not_fatal() {
        let m = BaselineModel::train(&space(), &synthetic_rows(40), 1).unwrap();
        let p = space().default_point();
        let v = m.predict_ms(&[], &p, 1.0);
        assert!(v.is_finite() && v > 0.0);
        let v = m.predict_ms(&[1.0, 2.0, 3.0, 4.0], &p, 1.0);
        assert!(v.is_finite() && v > 0.0);
    }
}
