//! Offline shim of `serde_derive`.
//!
//! Generates impls of the vendored `serde::{Serialize, Deserialize}` traits
//! (value-tree based, see `vendor/serde`) for the shapes this workspace
//! actually uses: non-generic structs (named / tuple / unit) and non-generic
//! enums (unit / newtype / tuple / struct variants), plus the
//! `#[serde(tag = "...")]` internally-tagged enum representation.
//!
//! There is deliberately no `syn`/`quote` dependency — the registry is
//! offline — so parsing is a small hand-rolled walk over `proc_macro`
//! token trees. Unsupported shapes (generics, unknown `#[serde]` attributes)
//! fail loudly with `compile_error!` rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        tag: Option<String>,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&parsed),
                Mode::Deserialize => gen_deserialize(&parsed),
            };
            code.parse().unwrap_or_else(|e| {
                error(&format!("serde_derive shim produced unparseable code: {e}"))
            })
        }
        Err(message) => error(&message),
    }
}

fn error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("literal compile_error")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut tag = None;

    // Leading attributes (doc comments arrive as #[doc] too).
    while is_attr_start(&trees, pos) {
        if let Some(serde_args) = attr_serde_args(&trees[pos + 1]) {
            for (key, value) in serde_args? {
                match key.as_str() {
                    "tag" => tag = Some(value.ok_or("serde(tag) needs a value")?),
                    other => {
                        return Err(format!(
                            "serde shim: unsupported container attribute `{other}`"
                        ))
                    }
                }
            }
        }
        pos += 2;
    }

    skip_visibility(&trees, &mut pos);

    let kind = match ident_at(&trees, pos) {
        Some(k) if k == "struct" || k == "enum" => k,
        _ => return Err("serde shim: expected `struct` or `enum`".into()),
    };
    pos += 1;

    let name = ident_at(&trees, pos).ok_or("serde shim: expected type name")?;
    pos += 1;

    if matches!(&trees.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported"
        ));
    }

    if kind == "struct" {
        let fields = match trees.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            None => Fields::Unit,
            _ => return Err("serde shim: unsupported struct body".into()),
        };
        if tag.is_some() {
            return Err("serde shim: #[serde(tag)] only applies to enums".into());
        }
        Ok(Input::Struct { name, fields })
    } else {
        let body = match trees.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err("serde shim: expected enum body".into()),
        };
        let variants = parse_variants(body)?;
        if let Some(tag_name) = &tag {
            for v in &variants {
                if matches!(v.fields, Fields::Tuple(_)) {
                    return Err(format!(
                        "serde shim: #[serde(tag = {tag_name:?})] cannot represent tuple variant `{}`",
                        v.name
                    ));
                }
            }
        }
        Ok(Input::Enum {
            name,
            tag,
            variants,
        })
    }
}

fn is_attr_start(trees: &[TokenTree], pos: usize) -> bool {
    matches!(trees.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(trees.get(pos + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
}

/// If the bracket group is `[serde(...)]`, parse `key` / `key = "value"`
/// pairs; otherwise `None`.
#[allow(clippy::type_complexity)]
fn attr_serde_args(tree: &TokenTree) -> Option<Result<Vec<(String, Option<String>)>, String>> {
    let TokenTree::Group(group) = tree else {
        return None;
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(name)) if name.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return Some(Err("serde shim: malformed #[serde] attribute".into()));
    };
    let mut out = Vec::new();
    let tokens: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            return Some(Err(
                "serde shim: expected identifier in #[serde(...)]".into()
            ));
        };
        let key = key.to_string();
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    let raw = lit.to_string();
                    value = Some(raw.trim_matches('"').to_string());
                    i += 1;
                }
                _ => return Some(Err("serde shim: expected string after `=`".into())),
            }
        }
        out.push((key, value));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Some(Ok(out))
}

fn ident_at(trees: &[TokenTree], pos: usize) -> Option<String> {
    match trees.get(pos) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn skip_visibility(trees: &[TokenTree], pos: &mut usize) {
    if ident_at(trees, *pos).as_deref() == Some("pub") {
        *pos += 1;
        if matches!(trees.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1; // pub(crate) / pub(super)
        }
    }
}

/// Split a field-list token stream on top-level commas, tracking `<...>`
/// nesting (angle brackets are puncts, not groups).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments
            .last_mut()
            .expect("non-empty by construction")
            .push(tree);
    }
    segments.retain(|seg| !seg.is_empty());
    segments
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for segment in split_top_level(stream) {
        let mut pos = 0;
        while is_attr_start(&segment, pos) {
            if let Some(args) = attr_serde_args(&segment[pos + 1]) {
                let args = args?;
                if let Some((key, _)) = args.first() {
                    return Err(format!("serde shim: unsupported field attribute `{key}`"));
                }
            }
            pos += 2;
        }
        skip_visibility(&segment, &mut pos);
        let name = ident_at(&segment, pos).ok_or("serde shim: expected field name")?;
        names.push(name);
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for segment in split_top_level(stream) {
        let mut pos = 0;
        while is_attr_start(&segment, pos) {
            if let Some(args) = attr_serde_args(&segment[pos + 1]) {
                let args = args?;
                if let Some((key, _)) = args.first() {
                    return Err(format!("serde shim: unsupported variant attribute `{key}`"));
                }
            }
            pos += 2;
        }
        let name = ident_at(&segment, pos).ok_or("serde shim: expected variant name")?;
        pos += 1;
        let fields = match segment.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim: explicit discriminant on variant `{name}` is not supported"
                ))
            }
            None => Fields::Unit,
            _ => return Err(format!("serde shim: unsupported body on variant `{name}`")),
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn obj_pairs(fields: &[String], accessor: &dyn Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::serialize_value({})),",
                accessor(f)
            )
        })
        .collect()
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    obj_pairs(names, &|f| format!("&self.{f}"))
                ),
                Fields::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{items}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum {
            name,
            tag,
            variants,
        } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match (&v.fields, tag) {
                        (Fields::Unit, None) => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),\n"
                        ),
                        (Fields::Unit, Some(tag)) => format!(
                            "{name}::{vname} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({tag:?}), ::serde::Value::Str(::std::string::String::from({vname:?})))]),\n"
                        ),
                        (Fields::Named(fields), None) => {
                            let binds = fields.join(", ");
                            let pairs = obj_pairs(fields, &|f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), ::serde::Value::Object(::std::vec![{pairs}]))]),\n"
                            )
                        }
                        (Fields::Named(fields), Some(tag)) => {
                            let binds = fields.join(", ");
                            let pairs = obj_pairs(fields, &|f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({tag:?}), ::serde::Value::Str(::std::string::String::from({vname:?}))), {pairs}]),\n"
                            )
                        }
                        (Fields::Tuple(1), None) => format!(
                            "{name}::{vname}(inner) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), ::serde::Serialize::serialize_value(inner))]),\n"
                        ),
                        (Fields::Tuple(n), None) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{items}]))]),\n",
                                binds.join(", ")
                            )
                        }
                        (Fields::Tuple(_), Some(_)) => {
                            unreachable!("rejected during parsing")
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn named_field_reads(type_path: &str, fields: &[String], source: &str) -> String {
    let reads: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value({source}.get_field({f:?}))\
                 .map_err(|e| e.in_field({f:?}))?,"
            )
        })
        .collect();
    format!("{type_path} {{ {reads} }}")
}

fn gen_deserialize(input: &Input) -> String {
    let body = match input {
        Input::Struct { name, fields } => match fields {
            Fields::Named(field_names) => {
                let construct = named_field_reads(name, field_names, "value");
                format!(
                    "match value {{\n\
                         ::serde::Value::Object(_) => ::std::result::Result::Ok({construct}),\n\
                         other => ::std::result::Result::Err(::serde::DeError::expected(\"object\", other)),\n\
                     }}"
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(value)?))"
            ),
            Fields::Tuple(n) => {
                let reads: String = (0..*n)
                    .map(|i| {
                        format!("::serde::Deserialize::deserialize_value(&items[{i}]).map_err(|e| e.in_field(\"{i}\"))?,")
                    })
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} =>\n\
                             ::std::result::Result::Ok({name}({reads})),\n\
                         other => ::std::result::Result::Err(::serde::DeError::expected(\"array of length {n}\", other)),\n\
                     }}"
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Input::Enum {
            name,
            tag: Some(tag),
            variants,
        } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n")
                        }
                        Fields::Named(fields) => {
                            let construct =
                                named_field_reads(&format!("{name}::{vname}"), fields, "value");
                            format!("{vname:?} => ::std::result::Result::Ok({construct}),\n")
                        }
                        Fields::Tuple(_) => unreachable!("rejected during parsing"),
                    }
                })
                .collect();
            format!(
                "let tag_value = value.get_field({tag:?});\n\
                 let ::serde::Value::Str(tag_name) = tag_value else {{\n\
                     return ::std::result::Result::Err(::serde::DeError::expected(\"tag string `{tag}`\", tag_value));\n\
                 }};\n\
                 match tag_name.as_str() {{\n\
                     {arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::new(\n\
                         ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}"
            )
        }
        Input::Enum {
            name,
            tag: None,
            variants,
        } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n")
                })
                .collect();
            let keyed_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Named(fields) => {
                            let construct =
                                named_field_reads(&format!("{name}::{vname}"), fields, "inner");
                            format!("{vname:?} => ::std::result::Result::Ok({construct}),\n")
                        }
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize_value(inner).map_err(|e| e.in_field({vname:?}))?)),\n"
                        ),
                        Fields::Tuple(n) => {
                            let reads: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&items[{i}]).map_err(|e| e.in_field({vname:?}))?,")
                                })
                                .collect();
                            format!(
                                "{vname:?} => match inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                                         ::std::result::Result::Ok({name}::{vname}({reads})),\n\
                                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array of length {n}\", other)),\n\
                                 }},\n"
                            )
                        }
                        Fields::Unit => unreachable!("filtered above"),
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\n\
                             ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (key, inner) = &fields[0];\n\
                         match key.as_str() {{\n\
                             {keyed_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"enum representation\", other)),\n\
                 }}"
            )
        }
    };
    let name = match input {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
