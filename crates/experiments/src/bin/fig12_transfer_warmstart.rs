//! Regenerates the paper's `fig12_transfer_warmstart` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig12_transfer_warmstart::run(scale).print();
}
