//! Physical planning: turn a logical [`PlanNode`] tree into a stage DAG under a given
//! [`SparkConf`].
//!
//! Two conf-dependent decisions happen here, mirroring Spark's planner:
//!
//! 1. **Join strategy.** A join whose smaller side is estimated below
//!    `spark.sql.autoBroadcastJoinThreshold` becomes a *broadcast hash join* (build
//!    side shipped to every executor, probe side keeps its partitioning — no shuffle);
//!    otherwise it is a *sort-merge join* (both sides exchange + sort).
//! 2. **Stage boundaries.** Every exchange closes the producing stage; scan stages are
//!    split into `ceil(bytes / maxPartitionBytes)` tasks, shuffle stages into
//!    `spark.sql.shuffle.partitions` tasks.

use serde::{Deserialize, Serialize};

use crate::config::SparkConf;
use crate::cost::CostParams;
use crate::plan::{Operator, PlanNode};

/// How a logical join was realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// Build side broadcast to every executor; probe side unshuffled.
    BroadcastHash,
    /// Both sides exchanged on the join key and sorted.
    SortMerge,
}

/// How a stage receives its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// Reads base-table splits; task count follows `maxPartitionBytes`.
    Scan,
    /// Reads shuffled data; task count follows `shuffle.partitions`.
    Shuffle,
}

/// One schedulable stage with all quantities the cost model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage id, in creation (≈ execution) order.
    pub id: usize,
    /// Input source class.
    pub kind: StageKind,
    /// Number of tasks.
    pub tasks: usize,
    /// Bytes read by this stage (table splits or shuffle blocks).
    pub input_bytes: f64,
    /// Weighted row-operations executed in this stage (operator CPU weights applied).
    pub cpu_rows: f64,
    /// Rows sorted within this stage (costed at `n·log n`).
    pub sort_rows: f64,
    /// Bytes materialized into in-task hash tables (aggregation/join build).
    pub hash_build_bytes: f64,
    /// Bytes written to shuffle for downstream stages.
    pub shuffle_write_bytes: f64,
    /// Bytes of broadcast tables this stage's tasks must hold (shared per executor).
    pub broadcast_bytes: f64,
}

/// A fully planned query: the stage list plus planning decisions for metrics/events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// Stages in dependency order (a stage only reads from earlier stages).
    pub stages: Vec<Stage>,
    /// Strategy chosen for each logical join, in plan pre-order.
    pub join_strategies: Vec<JoinStrategy>,
}

impl PhysicalPlan {
    /// Total tasks across stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Total bytes written to shuffle.
    pub fn total_shuffle_bytes(&self) -> f64 {
        self.stages.iter().map(|s| s.shuffle_write_bytes).sum()
    }

    /// Count of joins using the given strategy.
    pub fn joins_with(&self, strategy: JoinStrategy) -> usize {
        self.join_strategies
            .iter()
            .filter(|&&s| s == strategy)
            .count()
    }
}

/// Caps keeping degenerate confs from exploding the simulation.
const MAX_TASKS_PER_STAGE: usize = 100_000;

/// Plan `root` under `conf`.
pub fn plan_physical(root: &PlanNode, conf: &SparkConf) -> PhysicalPlan {
    let mut planner = Planner {
        conf: conf.clone(),
        stages: Vec::new(),
        join_strategies: Vec::new(),
    };
    let open = planner.build(root);
    // Close the final stage: its output is the query result (driver collect).
    planner.seal(open);
    PhysicalPlan {
        stages: planner.stages,
        join_strategies: planner.join_strategies,
    }
}

/// The stage currently accepting narrow (pipelined) operators, plus the cardinality
/// flowing out of the already-applied operators.
struct OpenStage {
    idx: usize,
    rows: f64,
    bytes: f64,
}

struct Planner {
    conf: SparkConf,
    stages: Vec<Stage>,
    join_strategies: Vec<JoinStrategy>,
}

impl Planner {
    fn scan_tasks(&self, bytes: f64) -> usize {
        let per = self.conf.max_partition_bytes.max(1.0);
        ((bytes / per).ceil() as usize).clamp(1, MAX_TASKS_PER_STAGE)
    }

    /// Task count of a shuffle stage reading `input_bytes`. With AQE enabled, Spark
    /// coalesces small partitions at runtime: the count shrinks toward
    /// `ceil(input_bytes / advisoryPartitionSizeInBytes)` but never *grows* beyond
    /// the configured `shuffle.partitions`.
    fn shuffle_tasks(&self, input_bytes: f64) -> usize {
        let configured = self.conf.shuffle_partition_count().min(MAX_TASKS_PER_STAGE);
        if !self.conf.adaptive_enabled {
            return configured;
        }
        let advisory = self.conf.advisory_partition_bytes.max(1.0);
        let coalesced = ((input_bytes / advisory).ceil() as usize).max(1);
        coalesced.min(configured)
    }

    fn new_stage(&mut self, kind: StageKind, tasks: usize, input_bytes: f64) -> usize {
        let id = self.stages.len();
        self.stages.push(Stage {
            id,
            kind,
            tasks,
            input_bytes,
            cpu_rows: 0.0,
            sort_rows: 0.0,
            hash_build_bytes: 0.0,
            shuffle_write_bytes: 0.0,
            broadcast_bytes: 0.0,
        });
        id
    }

    /// Close an open stage that writes its output to shuffle.
    fn close_with_shuffle(&mut self, open: OpenStage) -> (f64, f64) {
        self.stages[open.idx].shuffle_write_bytes += open.bytes;
        (open.rows, open.bytes)
    }

    /// Close the final (result) stage — no shuffle write.
    fn seal(&mut self, _open: OpenStage) {}

    /// Fallback for a malformed plan node missing its required children: an
    /// empty scan stage carrying the node's own estimates, instead of a panic.
    fn degenerate_stage(&mut self, node: &PlanNode) -> OpenStage {
        let idx = self.new_stage(StageKind::Scan, 1, node.est_bytes);
        OpenStage {
            idx,
            rows: node.est_rows,
            bytes: node.est_bytes,
        }
    }

    fn build(&mut self, node: &PlanNode) -> OpenStage {
        match &node.op {
            Operator::TableScan { .. } => {
                let tasks = self.scan_tasks(node.est_bytes);
                let idx = self.new_stage(StageKind::Scan, tasks, node.est_bytes);
                self.stages[idx].cpu_rows += node.est_rows * CostParams::op_weight("TableScan");
                OpenStage {
                    idx,
                    rows: node.est_rows,
                    bytes: node.est_bytes,
                }
            }
            Operator::Filter { .. } | Operator::Project { .. } | Operator::Limit { .. } => {
                let Some(input) = node.children.first() else {
                    return self.degenerate_stage(node);
                };
                let child = self.build(input);
                // Narrow ops pipeline into the child's stage; cost is paid on the
                // child's output rows.
                self.stages[child.idx].cpu_rows +=
                    child.rows * CostParams::op_weight(node.op.type_name());
                OpenStage {
                    idx: child.idx,
                    rows: node.est_rows,
                    bytes: node.est_bytes,
                }
            }
            Operator::HashAggregate { .. } => {
                let Some(input) = node.children.first() else {
                    return self.degenerate_stage(node);
                };
                let child = self.build(input);
                // Partial aggregation in the child's stage.
                self.stages[child.idx].cpu_rows +=
                    child.rows * CostParams::op_weight("HashAggregate");
                self.stages[child.idx].hash_build_bytes += node.est_bytes;
                let (_rows, bytes) = self.close_with_shuffle(OpenStage {
                    idx: child.idx,
                    rows: node.est_rows,
                    bytes: node.est_bytes,
                });
                // Final aggregation in a fresh shuffle stage.
                let idx = self.new_stage(StageKind::Shuffle, self.shuffle_tasks(bytes), bytes);
                self.stages[idx].cpu_rows += node.est_rows * CostParams::op_weight("HashAggregate");
                self.stages[idx].hash_build_bytes += node.est_bytes;
                OpenStage {
                    idx,
                    rows: node.est_rows,
                    bytes: node.est_bytes,
                }
            }
            Operator::Sort => {
                let Some(input) = node.children.first() else {
                    return self.degenerate_stage(node);
                };
                let child = self.build(input);
                let (rows, bytes) = self.close_with_shuffle(child);
                let idx = self.new_stage(StageKind::Shuffle, self.shuffle_tasks(bytes), bytes);
                self.stages[idx].sort_rows += rows;
                OpenStage {
                    idx,
                    rows: node.est_rows,
                    bytes: node.est_bytes,
                }
            }
            Operator::Join { .. } => {
                let [l, r] = &node.children[..] else {
                    return self.degenerate_stage(node);
                };
                let left = self.build(l);
                let right = self.build(r);
                let threshold = self.conf.auto_broadcast_join_threshold;
                let (probe, build, build_is_right) = if right.bytes <= left.bytes {
                    (left, right, true)
                } else {
                    (right, left, false)
                };
                let _ = build_is_right;
                if threshold > 0.0 && build.bytes <= threshold {
                    self.join_strategies.push(JoinStrategy::BroadcastHash);
                    // Build side is collected and broadcast; its open stage ends
                    // without a shuffle (driver collect + broadcast).
                    let build_bytes = build.bytes;
                    // Probe stage pays the probe cost and holds the broadcast table.
                    self.stages[probe.idx].cpu_rows +=
                        (probe.rows + build.rows) * CostParams::op_weight("Join");
                    self.stages[probe.idx].broadcast_bytes += build_bytes;
                    self.stages[probe.idx].hash_build_bytes += build_bytes;
                    OpenStage {
                        idx: probe.idx,
                        rows: node.est_rows,
                        bytes: node.est_bytes,
                    }
                } else {
                    self.join_strategies.push(JoinStrategy::SortMerge);
                    let (l_rows, l_bytes) = self.close_with_shuffle(probe);
                    let (r_rows, r_bytes) = self.close_with_shuffle(build);
                    let idx = self.new_stage(
                        StageKind::Shuffle,
                        self.shuffle_tasks(l_bytes + r_bytes),
                        l_bytes + r_bytes,
                    );
                    self.stages[idx].sort_rows += l_rows + r_rows;
                    self.stages[idx].cpu_rows +=
                        (l_rows + r_rows + node.est_rows) * CostParams::op_weight("Join");
                    OpenStage {
                        idx,
                        rows: node.est_rows,
                        bytes: node.est_bytes,
                    }
                }
            }
            Operator::Union => {
                // Modeled as an exchange-union: both children close into one stage.
                // (Real Spark unions without a shuffle; the cost difference is the
                // shuffle of the union inputs, small for the plans used here.)
                let [l, r] = &node.children[..] else {
                    return self.degenerate_stage(node);
                };
                let left = self.build(l);
                let right = self.build(r);
                let (l_rows, l_bytes) = self.close_with_shuffle(left);
                let (r_rows, r_bytes) = self.close_with_shuffle(right);
                let idx = self.new_stage(
                    StageKind::Shuffle,
                    self.shuffle_tasks(l_bytes + r_bytes),
                    l_bytes + r_bytes,
                );
                self.stages[idx].cpu_rows += (l_rows + r_rows) * CostParams::op_weight("Union");
                OpenStage {
                    idx,
                    rows: node.est_rows,
                    bytes: node.est_bytes,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MIB;

    fn join_plan(dim_rows: f64) -> PlanNode {
        let fact = PlanNode::scan("fact", 10_000_000.0, 100.0);
        let dim = PlanNode::scan("dim", dim_rows, 100.0);
        fact.fk_join(dim, 1.0).hash_aggregate(0.001)
    }

    #[test]
    fn small_dim_broadcasts_under_default_threshold() {
        // 10k rows × 100 B = 1 MB < 10 MB default threshold.
        let plan = join_plan(10_000.0);
        let phys = plan_physical(&plan, &SparkConf::default());
        assert_eq!(phys.joins_with(JoinStrategy::BroadcastHash), 1);
        assert_eq!(phys.joins_with(JoinStrategy::SortMerge), 0);
    }

    #[test]
    fn large_dim_sort_merges() {
        // 1M rows × 100 B = 100 MB > 10 MB threshold.
        let plan = join_plan(1_000_000.0);
        let phys = plan_physical(&plan, &SparkConf::default());
        assert_eq!(phys.joins_with(JoinStrategy::SortMerge), 1);
    }

    #[test]
    fn raising_threshold_flips_strategy() {
        let plan = join_plan(1_000_000.0);
        let mut conf = SparkConf::default();
        conf.auto_broadcast_join_threshold = 200.0 * MIB;
        let phys = plan_physical(&plan, &conf);
        assert_eq!(phys.joins_with(JoinStrategy::BroadcastHash), 1);
    }

    #[test]
    fn disabled_threshold_never_broadcasts() {
        let plan = join_plan(10.0);
        let mut conf = SparkConf::default();
        conf.auto_broadcast_join_threshold = -1.0;
        let phys = plan_physical(&plan, &conf);
        assert_eq!(phys.joins_with(JoinStrategy::SortMerge), 1);
    }

    #[test]
    fn broadcast_join_produces_fewer_stages() {
        let plan = join_plan(10_000.0);
        let bc = plan_physical(&plan, &SparkConf::default());
        let mut conf = SparkConf::default();
        conf.auto_broadcast_join_threshold = -1.0;
        let smj = plan_physical(&plan, &conf);
        assert!(bc.stages.len() < smj.stages.len());
        assert!(bc.total_shuffle_bytes() < smj.total_shuffle_bytes());
    }

    #[test]
    fn scan_tasks_follow_max_partition_bytes() {
        let plan = PlanNode::scan("t", 10_000_000.0, 100.0); // 1 GB
        let mut conf = SparkConf::default();
        conf.max_partition_bytes = 128.0 * MIB;
        let coarse = plan_physical(&plan, &conf);
        conf.max_partition_bytes = 16.0 * MIB;
        let fine = plan_physical(&plan, &conf);
        assert!(fine.stages[0].tasks > coarse.stages[0].tasks);
        assert_eq!(
            coarse.stages[0].tasks,
            (1e9 / (128.0 * MIB)).ceil() as usize
        );
    }

    #[test]
    fn shuffle_stage_tasks_follow_shuffle_partitions() {
        let plan = PlanNode::scan("t", 1_000_000.0, 100.0).hash_aggregate(0.01);
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 77.0;
        let phys = plan_physical(&plan, &conf);
        let shuffle = phys
            .stages
            .iter()
            .find(|s| s.kind == StageKind::Shuffle)
            .expect("aggregate forces a shuffle stage");
        assert_eq!(shuffle.tasks, 77);
    }

    #[test]
    fn aggregate_creates_two_stage_pipeline() {
        let plan = PlanNode::scan("t", 1_000_000.0, 100.0).hash_aggregate(0.01);
        let phys = plan_physical(&plan, &SparkConf::default());
        assert_eq!(phys.stages.len(), 2);
        assert!(phys.stages[0].shuffle_write_bytes > 0.0);
        assert_eq!(phys.stages[1].kind, StageKind::Shuffle);
    }

    #[test]
    fn sort_merge_join_sorts_both_inputs() {
        let plan = join_plan(1_000_000.0);
        let phys = plan_physical(&plan, &SparkConf::default());
        let join_stage = phys
            .stages
            .iter()
            .find(|s| s.sort_rows > 0.0)
            .expect("SMJ must sort");
        // fact 10M + dim 1M rows sorted.
        assert!((join_stage.sort_rows - 11_000_000.0).abs() < 1.0);
    }

    #[test]
    fn union_merges_children_into_one_stage() {
        let a = PlanNode::scan("a", 1000.0, 10.0);
        let b = PlanNode::scan("b", 2000.0, 10.0);
        let phys = plan_physical(&a.union(b), &SparkConf::default());
        assert_eq!(phys.stages.len(), 3); // two scans + union stage
    }

    #[test]
    fn aqe_coalesces_overpartitioned_shuffles() {
        // 1 GB aggregated down to ~100 MB of shuffle data; 4096 configured
        // partitions would leave ~25 KB tasks — AQE merges them to the advisory.
        let plan = PlanNode::scan("t", 1e7, 100.0).hash_aggregate(0.1);
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 4096.0;
        let without = plan_physical(&plan, &conf);
        conf.adaptive_enabled = true;
        conf.advisory_partition_bytes = 64.0 * MIB;
        let with = plan_physical(&plan, &conf);
        let shuffle_without = without
            .stages
            .iter()
            .find(|s| s.kind == StageKind::Shuffle)
            .unwrap();
        let shuffle_with = with
            .stages
            .iter()
            .find(|s| s.kind == StageKind::Shuffle)
            .unwrap();
        assert_eq!(shuffle_without.tasks, 4096);
        assert!(
            shuffle_with.tasks < 100,
            "AQE should coalesce: {} tasks",
            shuffle_with.tasks
        );
    }

    #[test]
    fn aqe_never_exceeds_configured_partitions() {
        // Huge shuffle input with a tiny advisory size: AQE would want thousands of
        // partitions but must not split beyond the configured count.
        let plan = PlanNode::scan("t", 1e9, 100.0).hash_aggregate(0.9);
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 50.0;
        conf.adaptive_enabled = true;
        conf.advisory_partition_bytes = MIB;
        let phys = plan_physical(&plan, &conf);
        let shuffle = phys
            .stages
            .iter()
            .find(|s| s.kind == StageKind::Shuffle)
            .unwrap();
        assert_eq!(shuffle.tasks, 50);
    }

    #[test]
    fn aqe_flattens_the_overpartitioning_penalty() {
        // The interaction the exp_aqe experiment demonstrates: with AQE on, absurd
        // partition counts stop hurting because the runtime coalesces them.
        use crate::cluster::ClusterSpec;
        use crate::cost::CostParams;
        use crate::scheduler::schedule;
        let plan = PlanNode::scan("t", 5e7, 100.0).hash_aggregate(0.05);
        let time = |partitions: f64, aqe: bool| {
            let mut conf = SparkConf::default();
            conf.shuffle_partitions = partitions;
            conf.adaptive_enabled = aqe;
            let phys = plan_physical(&plan, &conf);
            schedule(&phys, &conf, &ClusterSpec::medium(), &CostParams::default()).total_ms
        };
        let penalty_without = time(8192.0, false) / time(128.0, false);
        let penalty_with = time(8192.0, true) / time(128.0, true);
        assert!(
            penalty_with < penalty_without,
            "AQE should soften over-partitioning: {penalty_with} vs {penalty_without}"
        );
    }

    #[test]
    fn task_counts_are_capped() {
        let plan = PlanNode::scan("t", 1e12, 1000.0); // petabyte scan
        let mut conf = SparkConf::default();
        conf.max_partition_bytes = MIB;
        let phys = plan_physical(&plan, &conf);
        assert!(phys.stages[0].tasks <= MAX_TASKS_PER_STAGE);
    }
}
