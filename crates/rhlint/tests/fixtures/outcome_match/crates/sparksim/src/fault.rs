//! Fixture fault module: one `RunOutcome` match hides the failure variants
//! behind a wildcard, one handles them explicitly.

/// What one simulated submission produced.
pub enum RunOutcome {
    Success(f64),
    Failed { partial_time_ms: f64 },
    Censored,
}

/// Handles every variant explicitly — no finding.
pub fn observed_time(outcome: &RunOutcome) -> Option<f64> {
    match outcome {
        RunOutcome::Success(ms) => Some(*ms),
        RunOutcome::Failed { partial_time_ms } => Some(*partial_time_ms),
        RunOutcome::Censored => None,
    }
}

/// The wildcard swallows `Failed` and `Censored` — RH017 fires here.
pub fn completed_time(outcome: &RunOutcome) -> Option<f64> {
    match outcome {
        RunOutcome::Success(ms) => Some(*ms),
        _ => None,
    }
}
