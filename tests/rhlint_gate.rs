//! Tier-1 gate: `cargo test` fails if the workspace stops being rhlint-clean.
//!
//! This runs the same pass as `cargo run -p rhlint -- check` — panic-freedom,
//! determinism, float-safety and config-space invariants — so a violation cannot
//! land without either fixing it or adding a justified `rhlint:allow` suppression.

use std::path::Path;

#[test]
fn workspace_is_rhlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diagnostics = rhlint::check_workspace(root).expect("lint pass runs");
    assert!(
        diagnostics.is_empty(),
        "rhlint found {} violation(s):\n{}",
        diagnostics.len(),
        rhlint::render_report(&diagnostics)
    );
}
