//! CART-style regression tree (variance-reduction splits). Together with
//! [`crate::forest::BaggedTrees`] this provides the offline *baseline model* — the
//! paper trains its baseline on hundreds of benchmark configurations where a
//! non-parametric, interaction-capturing model is a better fit than a kernel machine.

use serde::{Deserialize, Serialize};

use crate::{validate_xy, MlError, Regressor};

/// A node in the tree, stored in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `< threshold` child.
        left: usize,
        /// Arena index of the `>= threshold` child.
        right: usize,
    },
}

/// Regression tree with depth and leaf-size controls.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RegressionTree {
    max_depth: usize,
    min_leaf: usize,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Create an unfitted tree. `max_depth = 0` means a single leaf (the mean).
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        RegressionTree {
            max_depth,
            min_leaf: min_leaf.max(1),
            nodes: Vec::new(),
        }
    }

    /// Whether `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes in the fitted tree.
    // rhlint:allow(dead-pub): model introspection API
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Fit on a subset of rows given by `idx` (used by bagging). `feature_subset`
    /// restricts the features considered at every split (`None` = all).
    pub(crate) fn fit_indices(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        feature_subset: Option<&[usize]>,
    ) -> Result<(), MlError> {
        validate_xy(x, y)?;
        if idx.is_empty() {
            return Err(MlError::EmptyOrMismatched {
                rows: 0,
                targets: 0,
            });
        }
        self.nodes.clear();
        let mut idx = idx.to_vec();
        self.build(x, y, &mut idx, 0, feature_subset);
        Ok(())
    }

    /// Recursively grow the tree; returns the arena index of the created node.
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &mut [usize],
        depth: usize,
        feature_subset: Option<&[usize]>,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        if depth >= self.max_depth || idx.len() < 2 * self.min_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        let dim = x.first().map(Vec::len).unwrap_or(0);
        let all_features: Vec<usize> = (0..dim).collect();
        let features = feature_subset.unwrap_or(&all_features);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in features {
            if let Some((thr, score)) = best_split_on(x, y, idx, f, self.min_leaf) {
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, thr, score));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };

        // Partition idx in place around the threshold.
        let split_at = partition(idx, |&i| x[i][feature] < threshold);
        if split_at == 0 || split_at == idx.len() {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        // Reserve a slot for this split node before recursing.
        self.nodes.push(Node::Leaf { value: mean });
        let me = self.nodes.len() - 1;
        let (left_idx, right_idx) = idx.split_at_mut(split_at);
        let left = self.build(x, y, left_idx, depth + 1, feature_subset);
        let right = self.build(x, y, right_idx, depth + 1, feature_subset);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

/// Find the best variance-reducing split of `idx` on feature `f`.
/// Returns `(threshold, weighted_sse)` or `None` when no legal split exists.
fn best_split_on(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    f: usize,
    min_leaf: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));

    let n = order.len();
    // Prefix sums of y and y² along the sorted order enable O(1) SSE per split point.
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    let prefix: Vec<(f64, f64)> = order
        .iter()
        .map(|&i| {
            sum += y[i];
            sum2 += y[i] * y[i];
            (sum, sum2)
        })
        .collect();
    let (total, total2) = prefix[n - 1];

    let mut best: Option<(f64, f64)> = None;
    for k in min_leaf..=(n - min_leaf) {
        if k == n {
            break;
        }
        let lo = x[order[k - 1]][f];
        let hi = x[order[k]][f];
        if hi <= lo {
            continue; // equal feature values cannot be separated
        }
        let (ls, ls2) = prefix[k - 1];
        let rs = total - ls;
        let rs2 = total2 - ls2;
        let sse_left = ls2 - ls * ls / k as f64;
        let sse_right = rs2 - rs * rs / (n - k) as f64;
        let score = sse_left + sse_right;
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((0.5 * (lo + hi), score));
        }
    }
    best
}

/// Stable-ish in-place partition; returns the number of elements satisfying `pred`.
fn partition<F: Fn(&usize) -> bool>(idx: &mut [usize], pred: F) -> usize {
    idx.sort_by_key(|i| !pred(i)); // `false < true`, so matching elements come first
    idx.iter().filter(|i| pred(i)).count()
}

impl Regressor for RegressionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let idx: Vec<usize> = (0..x.len()).collect();
        self.fit_indices(x, y, &idx, None)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 10.0 { 1.0 } else { 5.0 })
            .collect();
        let mut t = RegressionTree::new(3, 1);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[2.0]), 1.0);
        assert_eq!(t.predict(&[15.0]), 5.0);
    }

    #[test]
    fn depth_zero_predicts_mean() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let mut t = RegressionTree::new(0, 1);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[0.0]), 3.0);
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn respects_min_leaf() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut t = RegressionTree::new(10, 4);
        t.fit(&x, &y).unwrap();
        // min_leaf = 4 with 8 points permits exactly one split.
        assert!(t.n_nodes() <= 3, "nodes: {}", t.n_nodes());
    }

    #[test]
    fn constant_feature_yields_single_leaf() {
        let x = vec![vec![1.0]; 6];
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut t = RegressionTree::new(5, 1);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[1.0]), 3.5);
    }

    #[test]
    fn captures_interaction_with_enough_depth() {
        // XOR-like target requires depth 2.
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0.0, 1.0, 1.0, 0.0];
        let mut t = RegressionTree::new(2, 1);
        t.fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), *yi);
        }
    }

    #[test]
    fn empty_fit_errors() {
        let mut t = RegressionTree::new(3, 1);
        assert!(t.fit(&[], &[]).is_err());
        assert_eq!(t.predict(&[0.0]), 0.0);
    }
}
