//! Fixture rockserve crate: the sanctioned socket home — RH019 must stay
//! silent on listener and stream construction here, and RH018 on the worker
//! threads the serving edge spawns and joins.

fn bind_edge() -> bool {
    match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(listener) => listener.local_addr().is_ok(),
        Err(_) => false,
    }
}

fn wake_self() -> bool {
    let worker = std::thread::spawn(bind_edge);
    worker.join().unwrap_or(false)
}
