//! Fixture pipeline service: the sanctioned `thread::spawn` site — the one
//! long-lived backend worker the service handle joins on shutdown. RH018
//! must stay silent here.

fn spawn_backend() -> u64 {
    let handle = std::thread::spawn(|| 7u64);
    handle.join().unwrap_or(0)
}
