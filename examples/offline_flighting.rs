//! The offline phase end-to-end: fly a benchmark sweep, ETL the event logs, train
//! the baseline model, then warm-start tuning of a query the baseline never saw.
//!
//! ```sh
//! cargo run --release --example offline_flighting
//! ```

use std::sync::Arc;

use rockhopper_repro::pipeline::flighting::{Benchmark, FlightPlan, PoolId, Strategy};
use rockhopper_repro::pipeline::storage::Storage;
use rockhopper_repro::pipeline::trainer::train_baseline;
use rockhopper_repro::prelude::*;
use rockhopper_repro::rockhopper::RockhopperTuner as Tuner_;

fn main() {
    let storage = Arc::new(Storage::new());
    let space = ConfigSpace::query_level();

    // 1. Flighting: run TPC-DS under random configurations (the paper's offline
    //    experiment platform, driven by a config file just like this struct).
    let plan = FlightPlan {
        benchmark: Benchmark::TpcDs,
        queries: Vec::new(), // full benchmark
        scale_factor: 2.0,
        runs_per_query: 15,
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        noise: NoiseSpec::low(),
        seed: 99,
    };
    let rows = rockhopper_repro::pipeline::flighting::run_flight(&plan, &space, &storage);
    println!(
        "flighting: {} training rows from {} event files",
        rows.len(),
        storage.object_count()
    );

    // 2. Train the baseline model (the ML training pipeline).
    let baseline = train_baseline(&space, &rows, None, 99).expect("rows exist");
    println!(
        "baseline model trained (embedding dim {})",
        baseline.embedding_dim()
    );

    // 3. Online: a *TPC-H* query the TPC-DS baseline never saw, warm-started.
    let mut env = QueryEnv::tpch(3, 2.0, NoiseSpec::low(), 3);
    let default_ms = env.true_time(&space.default_point());
    let mut tuner = Tuner_::builder(space.clone())
        .baseline(baseline)
        .seed(5)
        .build();
    for _ in 0..25 {
        let p = tuner.suggest(&env.context());
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    let tuned_ms = env.true_time(&tuner.centroid());
    println!(
        "TPC-H Q3 after 25 warm-started runs: {tuned_ms:.0} ms vs default {default_ms:.0} ms \
         ({:+.1}%)",
        100.0 * (tuned_ms - default_ms) / default_ms
    );
}
