#![forbid(unsafe_code)]

//! The Rockhopper tuner — the paper's primary contribution.
//!
//! # Centroid Learning in one paragraph
//!
//! Classic Bayesian Optimization proposes candidates *anywhere* in the space, so one
//! noisy spike can teleport the search into a terrible region; greedy methods (FLOW2,
//! hill climbing) compare *two raw observations* and flip direction on every spike.
//! Centroid Learning (Algorithm 1) keeps a **centroid** and only ever proposes
//! candidates in a small neighborhood around it (step β) — bounding regression risk —
//! while updating the centroid from **statistics of the last N observations**: the
//! best candidate `c*` under a data-size-controlled model (FIND_BEST, Eqs 3–5) plus a
//! descent direction Δ learned by regression over the window (FIND_GRADIENT, Eqs 6–7),
//! deliberately overshot by momentum factor α to escape local minima:
//! `e_{t+1} = c* − α·Δ`.
//!
//! # Module map
//!
//! - [`find_best`] — the three FIND_BEST refinements the paper describes,
//! - [`gradient`] — linear-sign and ML-corner FIND_GRADIENT,
//! - [`selector`] — pluggable candidate selection (window surrogate, offline baseline
//!   warm start, the §6.1 Level-X pseudo-surrogates, random),
//! - [`centroid`] — the Algorithm 1 state machine,
//! - [`guardrail`] — the iteration-30 regression detector that disables autotuning,
//! - [`baseline`] — the offline baseline model (trained by the pipeline crate),
//! - [`tuner`] — [`RockhopperTuner`], wiring it all behind the
//!   [`optimizers::tuner::Tuner`] interface,
//! - [`applevel`] — Algorithm 2 joint app/query-level optimization and the
//!   `app_cache`.

pub mod applevel;
pub mod baseline;
pub mod centroid;
pub mod find_best;
pub mod forecast;
pub mod gradient;
pub mod guardrail;
pub mod selector;
pub mod tuner;

pub use baseline::BaselineModel;
pub use centroid::{CentroidConfig, CentroidState};
pub use guardrail::{Guardrail, GuardrailDecision};
pub use tuner::{RockhopperBuilder, RockhopperTuner};

/// Re-exports of the space types for downstream convenience.
pub mod space {
    pub use optimizers::space::{ConfigSpace, Dim};
}
