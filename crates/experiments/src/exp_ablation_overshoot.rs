//! **Ablation: momentum overshoot α** (§4.3). α = 0 pins the centroid to the best
//! observation (prone to stalling); moderate α escapes local regions faster;
//! excessive α overshoots past the optimum and oscillates.

use optimizers::env::{Environment, SyntheticEnv};
use optimizers::tuner::Tuner;
use rockhopper::centroid::CentroidConfig;
use rockhopper::RockhopperTuner;

use crate::harness::{write_csv, Scale, Summary};

/// Overshoot factors swept (the production default is 0.12).
pub const ALPHAS: [f64; 5] = [0.0, 0.06, 0.12, 0.24, 0.40];

/// Final median normed performance of CL with overshoot `alpha` under high noise.
pub fn final_perf(alpha: f64, runs: usize, iters: usize) -> f64 {
    let finals: Vec<f64> = (0..runs as u64)
        .map(|seed| {
            let mut env = SyntheticEnv::high_noise_constant(seed);
            let mut tuner = RockhopperTuner::builder(env.space().clone())
                .config(CentroidConfig {
                    alpha,
                    ..CentroidConfig::default()
                })
                .guardrail(None)
                .seed(seed)
                .build();
            let mut last = Vec::new();
            for t in 0..iters {
                let p = tuner.suggest(&env.context());
                if t + 10 >= iters {
                    last.push(env.normed_performance(&p));
                }
                let o = env.run(&p);
                tuner.observe(&p, &o);
            }
            ml::stats::mean(&last)
        })
        .collect();
    ml::stats::median(&finals).expect("at least one run")
}

/// Run the ablation.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(40, 4);
    let iters = scale.pick(250, 30);
    let mut summary = Summary::new("exp_ablation_overshoot");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &a in &ALPHAS {
        let perf = final_perf(a, runs, iters);
        summary.row(
            &format!("alpha = {a:<4} final median normed perf"),
            format!("{perf:.3}"),
        );
        rows.push(vec![a, perf]);
        results.push((a, perf));
    }
    let best = results
        .iter()
        .min_by(|x, y| x.1.total_cmp(&y.1))
        .expect("non-empty");
    summary.row("best alpha", best.0);
    summary.row(
        "paper expectation",
        "moderate overshoot (momentum) beats alpha = 0 and extreme alpha",
    );
    summary.files.push(write_csv(
        "exp_ablation_overshoot",
        "alpha,final_median_perf",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_finite_values() {
        for &a in &ALPHAS[..2] {
            let p = final_perf(a, 3, 25);
            assert!(p.is_finite() && p >= 1.0, "alpha {a}: {p}");
        }
    }
}
