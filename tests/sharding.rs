//! Shard routing + bounded-memory invariants (tier 1, ISSUE 9):
//!
//! 1. **Routing purity** — `pipeline::shard_of` is a pure function of the
//!    signature: same signature ⇒ same shard across calls, shard widths are
//!    respected, and a pinned golden vector guards the hash/salt against
//!    accidental change (a silent change would reshuffle every deployment's
//!    `shard-NNNN/` WAL lineages).
//! 2. **Balance** — a seeded corpus of 10k random signatures spreads across
//!    2/4/8/16 shards within a deterministic [mean/2, 2·mean] bound.
//! 3. **Ordering** — per-signature request order survives the shard queues:
//!    concurrent clients on disjoint signatures get exactly the point
//!    sequences a serial unsharded backend produces, because each
//!    signature's requests flow through one shard worker in arrival order
//!    and tuner seed streams derive from `(root_seed, signature)`, never
//!    from shard membership or interleaving.
//! 4. **Bounded memory** — a per-shard LRU capacity below the working set
//!    evicts (counters prove it) yet never changes a served suggestion:
//!    evicted tuners restore bit-identically from their rockdur sidecars.

use std::sync::Arc;

use optimizers::tuner::TuningContext;
use pipeline::{shard_of, AutotuneBackend, ShardedAutotuneService, Storage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rockserve::proto::Response;
use rockserve::{ServeClient, ServeConfig, Server};

fn ctx(iteration: u32) -> TuningContext {
    TuningContext {
        embedding: vec![0.25, 0.75],
        expected_data_size: 2.0,
        iteration,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same signature ⇒ same shard, every time, at every width; the result
    /// is always a valid shard index.
    #[test]
    fn routing_is_a_pure_function_of_signature(
        signature: u64,
        widths in prop::collection::vec(1usize..64, 1..8),
    ) {
        for shards in widths {
            let first = shard_of(signature, shards);
            prop_assert!(first < shards, "shard {first} out of range 0..{shards}");
            prop_assert_eq!(first, shard_of(signature, shards));
        }
    }

    /// Degenerate widths collapse to shard 0 instead of dividing by zero.
    #[test]
    fn zero_and_one_wide_routing_is_always_shard_zero(signature: u64) {
        prop_assert_eq!(shard_of(signature, 0), 0);
        prop_assert_eq!(shard_of(signature, 1), 0);
    }
}

/// Golden routing vector: these values are part of the on-disk contract.
/// A restarted (or rebuilt) server must map every signature to the same
/// `shard-NNNN/` directory it logged to before, or recovery silently loses
/// per-signature state.
#[test]
fn routing_is_pinned_across_restarts_and_releases() {
    let golden: [(u64, [usize; 4]); 6] = [
        (0, [1, 1, 1, 49]),
        (1, [0, 4, 4, 52]),
        (42, [1, 5, 5, 37]),
        (0xC0FFEE, [0, 2, 10, 58]),
        (1_000_000, [1, 3, 11, 27]),
        (u64::MAX, [1, 7, 15, 15]),
    ];
    for (signature, expected) in golden {
        for (width, want) in [2usize, 8, 16, 64].into_iter().zip(expected) {
            assert_eq!(
                shard_of(signature, width),
                want,
                "shard_of({signature}, {width}) moved — the routing hash or \
                 salt changed, which orphans existing shard directories"
            );
        }
    }
}

/// 10k seeded random signatures spread across the shards within a
/// deterministic balance bound: every shard holds between half and twice
/// the mean. (SplitMix64 mixes far better than this; the loose bound keeps
/// the gate meaningful without chasing binomial tails.)
#[test]
fn ten_thousand_signatures_spread_within_the_balance_bound() {
    let mut rng = StdRng::seed_from_u64(0x5A17);
    let signatures: Vec<u64> = (0..10_000).map(|_| rng.random_range(0..u64::MAX)).collect();
    for shards in [2usize, 4, 8, 16] {
        let mut counts = vec![0u64; shards];
        for &sig in &signatures {
            if let Some(c) = counts.get_mut(shard_of(sig, shards)) {
                *c += 1;
            }
        }
        let mean = 10_000u64 / shards as u64;
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                count >= mean / 2 && count <= mean * 2,
                "shard {i}/{shards} holds {count} of 10000 signatures \
                 (mean {mean}): routing is unbalanced"
            );
        }
    }
}

/// Concurrent clients on disjoint signatures, served by a 4-shard server,
/// must see exactly the per-signature point sequences a serial unsharded
/// backend produces at the same seed. Any reordering inside a shard queue
/// would evolve the per-signature tuner state differently and change the
/// points; any seed dependence on shard membership would shift whole
/// streams. Each request carries a distinct iteration so nothing coalesces.
#[test]
fn per_signature_order_is_preserved_under_concurrent_clients() {
    const SEED: u64 = 0x04D3;
    const LANES: usize = 8;
    const ITERS: u32 = 5;

    let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);
    let server = Server::spawn(
        backend,
        "127.0.0.1:0",
        ServeConfig {
            workers: 8,
            shards: 4,
            ..ServeConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr();

    let served: Vec<Vec<Vec<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..LANES)
            .map(|lane| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("client connects");
                    let signature = 0xC0FFEE + lane as u64;
                    (0..ITERS)
                        .map(|i| match client.suggest("tenant", signature, &ctx(i)) {
                            Ok(Response::Suggestion { point, .. }) => point,
                            other => {
                                panic!("lane {lane} iter {i}: expected a point, got {other:?}")
                            }
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client lane panicked"))
            .collect()
    });
    assert!(server.shutdown().iter().all(Option::is_some));

    // The serial, unsharded ground truth at the same seed.
    let mut witness = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);
    for (lane, points) in served.iter().enumerate() {
        let signature = 0xC0FFEE + lane as u64;
        for (i, served_point) in points.iter().enumerate() {
            let expected = witness.suggest("tenant", signature, &ctx(i as u32));
            assert_eq!(
                served_point, &expected,
                "signature {signature} diverged at request {i}: per-signature \
                 order or seed derivation broke under sharding"
            );
        }
    }
}

/// In-process sharded fan-out (no TCP in the way): `spawn_split` splits one
/// backend into 4 shard services, and the sharded client routes every
/// suggestion to its owning shard — matching a serial unsharded witness
/// point-for-point, because tuner streams derive from `(root_seed,
/// signature)` alone.
#[test]
fn spawn_split_fans_out_and_matches_the_unsharded_witness() {
    use std::time::Duration;
    const SEED: u64 = 0x5B11;

    let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);
    let (service, client) = ShardedAutotuneService::spawn_split(backend, 4, 0);
    assert_eq!(service.shards(), 4);
    assert_eq!(client.shards(), 4);

    let mut witness = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);
    for iteration in 0..3u32 {
        for sig in [0u64, 1, 42, 0xC0FFEE, u64::MAX] {
            let got = client
                .suggest("tenant", sig, &ctx(iteration), Duration::from_secs(10))
                .expect("the owning shard answers");
            assert_eq!(
                got,
                witness.suggest("tenant", sig, &ctx(iteration)),
                "signature {sig} iteration {iteration} diverged through the \
                 sharded client"
            );
        }
    }

    let backends = service.shutdown();
    assert_eq!(backends.len(), 4);
    assert!(backends.iter().all(Option::is_some), "a shard thread died");
}

/// The memory bound must not buy determinism away: a durable backend capped
/// at 2 resident tuners, churned across 5 signatures for 3 rounds, serves
/// every suggestion bit-identically to an unbounded twin — because each
/// eviction checkpoints the tuner to a rockdur sidecar and the next touch
/// restores it exactly. The counters prove evictions and restores happened.
#[test]
fn evicted_signatures_recover_their_state_bit_identically_via_rockdur() {
    const SEED: u64 = 0xE71C;
    let dir = std::env::temp_dir().join(format!("rockhopper-shard-lru-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir creates");

    let mut capped =
        AutotuneBackend::new(Arc::new(Storage::new()), None, SEED).with_tuner_capacity(2);
    assert_eq!(capped.tuner_capacity(), 2, "the builder must set the bound");
    capped.persist_to(&dir).expect("durability attaches");
    let mut unbounded = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);

    for round in 0..3u32 {
        for sig in 0..5u64 {
            let got = capped.suggest("tenant", sig, &ctx(round));
            let want = unbounded.suggest("tenant", sig, &ctx(round));
            assert_eq!(
                got, want,
                "signature {sig} round {round}: suggestion changed after \
                 eviction — sidecar restore is not bit-exact"
            );
            assert!(
                capped.tuner_count() <= 2,
                "capacity exceeded: {} resident tuners",
                capped.tuner_count()
            );
        }
    }

    assert!(
        capped.tuner_evictions() > 0,
        "5 signatures through a 2-slot LRU must evict"
    );
    let counters = capped.dashboard().counters();
    assert_eq!(
        counters.tuner_evictions,
        capped.tuner_evictions(),
        "dashboard eviction counter disagrees with the map's"
    );
    assert!(
        counters.evicted_restored > 0,
        "rounds 2+ re-touch evicted signatures, so sidecar restores must \
         be counted: {counters:?}"
    );
    assert_eq!(unbounded.tuner_evictions(), 0, "the twin must not evict");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve-bench fingerprint is invariant to the shard count *and* to a
/// capacity bound far below the working set (8 shards × 2 slots under a
/// 4-signature suggest band + report band churn): sharding and eviction are
/// operational choices, not semantic ones.
#[test]
fn serve_fingerprint_is_invariant_to_shards_and_capacity() {
    use bench::serve::{run_serve_bench, ServeBenchConfig};

    let base_cfg = ServeBenchConfig::quick(0x5AFE);
    let base = run_serve_bench(&base_cfg).expect("unsharded bench runs");
    assert_eq!(base.protocol_errors, 0);

    for (shards, capacity) in [(2usize, 0usize), (8, 0), (8, 2)] {
        let mut cfg = base_cfg;
        cfg.shards = shards;
        cfg.shard_capacity = capacity;
        let run = run_serve_bench(&cfg).expect("sharded bench runs");
        assert_eq!(run.protocol_errors, 0);
        assert!(run.clean_drain);
        assert_eq!(
            run.suggest_fingerprint, base.suggest_fingerprint,
            "fingerprint moved at shards={shards} capacity={capacity}"
        );
        assert_eq!(run.per_shard.len(), shards, "per-shard metrics missing");
        let shard_suggests: u64 = run.per_shard.iter().map(|s| s.suggests).sum();
        assert_eq!(
            shard_suggests, run.sent.0,
            "per-shard suggest counters must partition the total"
        );
    }
}
