//! Training-set container shared by the flighting pipeline, the baseline-model trainer
//! and the online surrogate updates.

use serde::{Deserialize, Serialize};

use crate::MlError;

/// A feature matrix plus target vector, with convenience constructors for the
/// incremental appends the online tuning loop performs.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Dataset {
    /// Feature rows; all rows share one dimensionality.
    pub x: Vec<Vec<f64>>,
    /// Targets, one per feature row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Build from parallel feature/target vectors, validating shape.
    // rhlint:allow(dead-pub): dataset construction API for future training harnesses
    pub fn from_xy(x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, MlError> {
        crate::validate_xy(&x, &y)?;
        Ok(Dataset { x, y })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality, or `None` when empty.
    pub fn dim(&self) -> Option<usize> {
        self.x.first().map(Vec::len)
    }

    /// Append one observation.
    ///
    /// Returns [`MlError::RaggedFeatures`] if `features` disagrees with the existing
    /// dimensionality.
    pub fn push(&mut self, features: Vec<f64>, target: f64) -> Result<(), MlError> {
        if let Some(dim) = self.dim() {
            if features.len() != dim {
                return Err(MlError::RaggedFeatures {
                    expected: dim,
                    found: features.len(),
                });
            }
        }
        self.x.push(features);
        self.y.push(target);
        Ok(())
    }

    /// The most recent `n` observations (all of them if fewer exist) — the paper's
    /// `Ω(t, N)` sliding window of Algorithm 1.
    pub fn tail(&self, n: usize) -> Dataset {
        let start = self.len().saturating_sub(n);
        Dataset {
            x: self.x[start..].to_vec(),
            y: self.y[start..].to_vec(),
        }
    }

    /// Concatenate two datasets (e.g. baseline benchmark data + query-specific traces).
    // rhlint:allow(dead-pub): dataset construction API for future training harnesses
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, MlError> {
        if let (Some(a), Some(b)) = (self.dim(), other.dim()) {
            if a != b {
                return Err(MlError::RaggedFeatures {
                    expected: a,
                    found: b,
                });
            }
        }
        let mut out = self.clone();
        out.x.extend_from_slice(&other.x);
        out.y.extend_from_slice(&other.y);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_dimension() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 3.0).unwrap();
        assert!(d.push(vec![1.0], 0.0).is_err());
        assert_eq!(d.len(), 1);
        assert_eq!(d.dim(), Some(2));
    }

    #[test]
    fn tail_returns_latest_window() {
        let mut d = Dataset::new();
        for i in 0..5 {
            d.push(vec![i as f64], i as f64).unwrap();
        }
        let t = d.tail(2);
        assert_eq!(t.y, vec![3.0, 4.0]);
        let all = d.tail(100);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn concat_validates_and_merges() {
        let a = Dataset::from_xy(vec![vec![1.0]], vec![1.0]).unwrap();
        let b = Dataset::from_xy(vec![vec![2.0]], vec![2.0]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.y, vec![1.0, 2.0]);
        let bad = Dataset::from_xy(vec![vec![1.0, 2.0]], vec![1.0]).unwrap();
        assert!(a.concat(&bad).is_err());
    }

    #[test]
    fn from_xy_rejects_mismatch() {
        assert!(Dataset::from_xy(vec![vec![1.0]], vec![]).is_err());
    }
}
