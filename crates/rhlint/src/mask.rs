//! Source masking: blank out comments and string/char literals so the rule
//! matchers never fire on text inside them, while preserving byte offsets and
//! line structure. Also locates `#[cfg(test)]` regions so test modules inside
//! library files are exempt.

/// A source file with comments/literals blanked and test regions marked.
pub struct MaskedSource {
    /// Original lines (suppression comments are read from these).
    pub raw_lines: Vec<String>,
    /// Masked lines: comments and literal bodies replaced by spaces.
    pub masked_lines: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl MaskedSource {
    pub fn new(text: &str) -> MaskedSource {
        let masked = mask_text(text);
        let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let in_test = test_regions(&masked_lines);
        MaskedSource {
            raw_lines,
            masked_lines,
            in_test,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
}

/// Replace comment and literal contents with spaces (newlines preserved).
fn mask_text(text: &str) -> String {
    let bytes: Vec<char> = text.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(bytes.len());
    let mut state = State::Normal;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' | 'b' if starts_raw_string(&bytes, i) => {
                    let (hashes, consumed) = raw_string_open(&bytes, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        out.push(' ');
                    }
                    i += consumed;
                    continue;
                }
                '\'' => {
                    if let Some(len) = char_literal_len(&bytes, i) {
                        for j in 0..len {
                            out.push(if bytes[i + j] == '\n' { '\n' } else { ' ' });
                        }
                        i += len;
                        continue;
                    }
                    out.push(c); // a lifetime tick, keep it
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Normal;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&bytes, i, hashes) {
                    for _ in 0..(1 + hashes as usize) {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Normal;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
        }
        i += 1;
    }
    out.into_iter().collect()
}

/// Does `r`/`b` at `i` begin a raw or byte string literal?
fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&'"');
    }
    // b"..." byte string (non-raw)
    bytes[i] == 'b' && bytes.get(i + 1) == Some(&'"')
}

/// Length of the opening delimiter and its hash count.
fn raw_string_open(bytes: &[char], i: usize) -> (u8, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
    } else {
        // plain b"..." — treat as a normal string with zero hashes
        return (0, j - i + 1);
    }
    let mut hashes = 0u8;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i + 1) // includes the opening quote
}

fn closes_raw_string(bytes: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// If position `i` (a `'`) starts a char literal, return its total length.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        '\\' => {
            // escaped char: find the closing quote within a small window
            let mut j = i + 2;
            while j < bytes.len() && j - i < 12 {
                if bytes[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        _ => {
            if bytes.get(i + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // lifetime like 'a or 'static
            }
        }
    }
}

/// Mark every line belonging to a `#[cfg(test)]`-gated item (by brace span).
fn test_regions(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    let mut line = 0;
    while line < masked_lines.len() {
        if masked_lines[line].trim_start().starts_with("#[cfg(test)]") {
            let end = item_end(masked_lines, line);
            for flag in in_test.iter_mut().take(end + 1).skip(line) {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    in_test
}

/// Last line of the item starting at `start`: scan to the first `{`, then to
/// its matching `}` (or to a bare `;` before any brace).
fn item_end(masked_lines: &[String], start: usize) -> usize {
    let mut depth = 0i64;
    let mut seen_brace = false;
    for (line_idx, line) in masked_lines.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_brace && depth == 0 {
                        return line_idx;
                    }
                }
                ';' if !seen_brace && line_idx > start => return line_idx,
                _ => {}
            }
        }
    }
    masked_lines.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::MaskedSource;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let x = \"unwrap() inside\"; // .unwrap() in comment\nlet y = 1;\n";
        let m = MaskedSource::new(src);
        assert!(!m.masked_lines[0].contains("unwrap"));
        assert!(m.raw_lines[0].contains("unwrap"));
        assert_eq!(m.masked_lines[1], "let y = 1;");
    }

    #[test]
    fn lifetimes_survive_char_literals_dont() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let m = MaskedSource::new(src);
        assert!(m.masked_lines[0].contains("'a"));
        assert!(!m.masked_lines[0].contains("'x'"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "let s = r#\"panic!(\"no\")\"#; let t = 2;\n";
        let m = MaskedSource::new(src);
        assert!(!m.masked_lines[0].contains("panic"));
        assert!(m.masked_lines[0].contains("let t = 2;"));
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn more_lib() {}
";
        let m = MaskedSource::new(src);
        assert_eq!(m.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let m = MaskedSource::new(src);
        assert!(m.masked_lines[0].ends_with("let x = 1;"));
        assert!(!m.masked_lines[0].contains("outer"));
    }
}
