//! Coordinate hill climbing — the classic greedy baseline the paper groups with FLOW2
//! and OPPerTune ("rely solely on the last two rounds of observations", §4.3).
//!
//! Cycles through dimensions, trying ±step in normalized space; keeps any move whose
//! single observation beats the incumbent's single observation.

use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    EvalIncumbent,
    TryUp,
    TryDown,
}

/// Deterministic coordinate-descent hill climber.
#[derive(Debug)]
pub struct HillClimb {
    space: ConfigSpace,
    /// Step size in normalized units.
    pub step: f64,
    incumbent: Vec<f64>, // normalized
    incumbent_cost: Option<f64>,
    dim: usize,
    phase: Phase,
    /// Step shrink factor applied after a full unsuccessful sweep.
    pub shrink: f64,
    fails_this_sweep: usize,
    /// Recorded observations.
    pub history: History,
}

impl HillClimb {
    /// Start from the default configuration.
    pub fn new(space: ConfigSpace, step: f64) -> HillClimb {
        let incumbent = space.normalize(&space.default_point());
        HillClimb {
            space,
            step,
            incumbent,
            incumbent_cost: None,
            dim: 0,
            phase: Phase::EvalIncumbent,
            shrink: 0.5,
            fails_this_sweep: 0,
            history: History::new(),
        }
    }

    /// Current incumbent in raw units.
    pub fn incumbent(&self) -> Vec<f64> {
        self.space.denormalize(&self.incumbent)
    }

    fn moved(&self, delta: f64) -> Vec<f64> {
        let mut x = self.incumbent.clone();
        x[self.dim] = (x[self.dim] + delta).clamp(0.0, 1.0);
        self.space.denormalize(&x)
    }

    fn advance_dim(&mut self) {
        self.dim = (self.dim + 1) % self.space.len();
        if self.dim == 0 && self.fails_this_sweep >= self.space.len() {
            self.step *= self.shrink;
            self.fails_this_sweep = 0;
        } else if self.dim == 0 {
            self.fails_this_sweep = 0;
        }
    }
}

impl Tuner for HillClimb {
    fn suggest(&mut self, _ctx: &TuningContext) -> Vec<f64> {
        match self.phase {
            Phase::EvalIncumbent => self.space.denormalize(&self.incumbent),
            Phase::TryUp => self.moved(self.step),
            Phase::TryDown => self.moved(-self.step),
        }
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
        let cost = outcome.elapsed_ms;
        match self.phase {
            Phase::EvalIncumbent => {
                self.incumbent_cost = Some(cost);
                self.phase = Phase::TryUp;
            }
            Phase::TryUp => {
                if cost < self.incumbent_cost.unwrap_or(f64::INFINITY) {
                    self.incumbent = self.space.normalize(point);
                    self.incumbent_cost = Some(cost);
                    self.advance_dim();
                    self.phase = Phase::TryUp;
                } else {
                    self.phase = Phase::TryDown;
                }
            }
            Phase::TryDown => {
                if cost < self.incumbent_cost.unwrap_or(f64::INFINITY) {
                    self.incumbent = self.space.normalize(point);
                    self.incumbent_cost = Some(cost);
                } else {
                    self.fails_this_sweep += 1;
                }
                self.advance_dim();
                self.phase = Phase::TryUp;
            }
        }
    }

    fn name(&self) -> &'static str {
        "hillclimb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Environment, SyntheticEnv};
    use sparksim::noise::NoiseSpec;
    use workloads::dynamic::DataSchedule;

    #[test]
    fn descends_a_noiseless_bowl() {
        let mut env = SyntheticEnv::new(NoiseSpec::none(), DataSchedule::Constant { size: 1.0 }, 3);
        let mut hc = HillClimb::new(env.space().clone(), 0.1);
        let start_perf = env.normed_performance(&hc.incumbent());
        for _ in 0..120 {
            let p = hc.suggest(&env.context());
            let o = env.run(&p);
            hc.observe(&p, &o);
        }
        let end_perf = env.normed_performance(&hc.incumbent());
        assert!(end_perf < start_perf, "{start_perf} -> {end_perf}");
        assert!(end_perf < 1.2, "should converge near optimum: {end_perf}");
    }

    #[test]
    fn cycles_through_dimensions() {
        let space = ConfigSpace::query_level();
        let mut hc = HillClimb::new(space, 0.1);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        // Fail everything: dims should advance after each up/down pair.
        let p0 = hc.suggest(&ctx);
        hc.observe(
            &p0,
            &Outcome {
                elapsed_ms: 1.0,
                data_size: 1.0,
                kind: crate::tuner::ObservationKind::Measured,
            },
        );
        let mut dims_seen = std::collections::HashSet::new();
        for _ in 0..12 {
            let p = hc.suggest(&ctx);
            dims_seen.insert(hc.dim);
            hc.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert_eq!(dims_seen.len(), 3);
    }

    #[test]
    fn step_shrinks_after_unsuccessful_sweep() {
        let space = ConfigSpace::query_level();
        let mut hc = HillClimb::new(space, 0.2);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let p0 = hc.suggest(&ctx);
        hc.observe(
            &p0,
            &Outcome {
                elapsed_ms: 1.0,
                data_size: 1.0,
                kind: crate::tuner::ObservationKind::Measured,
            },
        );
        for _ in 0..30 {
            let p = hc.suggest(&ctx);
            hc.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(hc.step < 0.2);
    }
}
