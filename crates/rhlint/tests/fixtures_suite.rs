//! Fixture-workspace tests for the semantic (AST/call-graph) rules.
//!
//! Each fixture under `tests/fixtures/` overlays one deliberate violation
//! family onto the shared `_common/` crates (see `tests/common/mod.rs`);
//! `clean/` overlays nothing. The fixtures are never compiled by cargo —
//! rhlint parses them with its own lexer/parser — and the `fixtures` path
//! component keeps them out of the real workspace's reference counting.

mod common;

use std::path::Path;

use rhlint::{
    check_workspace, render_json, render_sarif, scan_source, Diagnostic, Rule, ScanScope,
};

fn fixture_check(name: &str) -> Vec<Diagnostic> {
    let scaffold = common::scaffold(name);
    check_workspace(&scaffold.root).expect("fixture workspace should load")
}

#[test]
fn clean_fixture_has_no_findings() {
    let diags = fixture_check("clean");
    assert!(
        diags.is_empty(),
        "clean fixture should be spotless, got:\n{}",
        render(&diags)
    );
}

/// The tentpole demo: an unseeded-RNG call reached through one level of
/// helper indirection, with `use ... as` aliases on both hops. The optimizers
/// file contains no banned token, and the helper lives in a crate the lexical
/// pass never scans — only the call-graph taint walk can find it.
#[test]
fn taint_catches_aliased_rng_through_helper() {
    let diags = fixture_check("taint_alias");
    assert_eq!(
        diags.len(),
        1,
        "expected exactly the taint finding:\n{}",
        render(&diags)
    );
    let d = &diags[0];
    assert_eq!(d.rule, Rule::DeterminismTaint);
    assert!(
        d.file.to_string_lossy().contains("util"),
        "sink is in the helper crate"
    );
    assert!(
        d.message.contains("fresh_seed"),
        "names the tainted fn: {}",
        d.message
    );
    assert!(
        d.message.contains("thread_rng"),
        "names the sink: {}",
        d.message
    );
    assert!(
        d.message.contains("reseed"),
        "shows the call path from the entry point: {}",
        d.message
    );
}

/// The same fixture proves the PR-1 token scanner misses the violation:
/// the optimizers file (the only one the lexical pass would scan — `util`
/// is outside every lexical scope) contains no banned token even under the
/// strictest possible scope.
#[test]
fn lexical_scan_provably_misses_the_aliased_rng() {
    // The helper crate is exempt from every lexical rule family, so the
    // token scanner never reads the one file that names `thread_rng`.
    assert_eq!(ScanScope::for_crate("util"), ScanScope::default());

    let rel = "crates/optimizers/src/lib.rs";
    let text = std::fs::read_to_string(common::fixture_dir("taint_alias").join(rel))
        .expect("fixture file");
    // Scan with FULL scope — stricter than the real pass ever would.
    let scope = ScanScope {
        panic_freedom: true,
        determinism: true,
        float_safety: true,
    };
    let diags = scan_source("optimizers", Path::new(rel), &text, scope);
    assert!(
        diags.is_empty(),
        "token scanner should see nothing in {rel}:\n{}",
        render(&diags)
    );
}

#[test]
fn ignored_result_fires_on_discarded_result() {
    let diags = fixture_check("ignored_result");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::IgnoredResult);
    assert!(d.file.to_string_lossy().contains("sparksim"));
    assert!(d.message.contains("parse_knob"), "{}", d.message);
    assert!(d.message.contains("Result"), "{}", d.message);
}

/// Two identical lossy casts; one carries `rhlint:allow(RH015)`. Exactly one
/// diagnostic proves both the cast detection and that the central suppression
/// filter covers semantic rules (including the RH-code alias form).
#[test]
fn lossy_cast_fires_and_respects_suppressions() {
    let diags = fixture_check("lossy_cast");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::LossyCast);
    assert!(d.message.contains("usize"), "{}", d.message);
    assert!(d.message.contains("u32"), "{}", d.message);
}

#[test]
fn dead_pub_fires_on_orphaned_item() {
    let diags = fixture_check("dead_pub");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::DeadPub);
    assert!(d.message.contains("orphan_metric"), "{}", d.message);
}

/// Two `RunOutcome` matches: one names every variant (clean), one hides
/// `Failed`/`Censored` behind `_`. Exactly one RH017 finding, on the bad one.
#[test]
fn outcome_match_fires_on_wildcard_arm_only() {
    let diags = fixture_check("outcome_match");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::OutcomeMatch);
    assert!(d.file.to_string_lossy().contains("fault"), "{}", d.message);
    assert!(d.message.contains("catch-all"), "{}", d.message);
}

/// Two `thread::spawn` calls: one in a scoped crate (flagged), one in the
/// sanctioned `pipeline/src/service.rs` worker (exempt). Exactly one RH018.
#[test]
fn thread_spawn_fires_outside_sanctioned_sites() {
    let diags = fixture_check("thread_spawn");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::ThreadSpawn);
    assert!(
        d.file.to_string_lossy().contains("optimizers"),
        "the flagged spawn is the optimizers one: {}",
        d.file.display()
    );
    assert!(d.message.contains("rockpool"), "{}", d.message);
}

/// Raw sockets in two crates: a `TcpStream::connect` in scoped `optimizers`
/// (flagged) and listener + stream construction in the sanctioned `rockserve`
/// crate (exempt, along with its joined worker threads). Exactly one RH019.
#[test]
fn raw_socket_fires_outside_rockserve() {
    let diags = fixture_check("raw_socket");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::RawSocket);
    assert!(
        d.file.to_string_lossy().contains("optimizers"),
        "the flagged socket is the optimizers one: {}",
        d.file.display()
    );
    assert!(d.message.contains("TcpStream"), "{}", d.message);
    assert!(d.message.contains("rockserve"), "{}", d.message);
}

#[test]
fn config_space_fires_on_missing_dimension() {
    let diags = fixture_check("config_space");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::ConfigSpace);
    assert!(d.message.contains("BroadcastThreshold"), "{}", d.message);
    assert!(
        d.message.contains("no search-space dimension"),
        "{}",
        d.message
    );
}

/// AB/BA lock ordering across two paths. One finding per cyclic edge — one
/// at each acquisition site — while the drop-before-reacquire path stays
/// silent because it never holds both locks at once.
#[test]
fn lock_order_cycle_fires_on_both_edges() {
    let diags = fixture_check("lock_order");
    assert_eq!(diags.len(), 2, "got:\n{}", render(&diags));
    for d in &diags {
        assert_eq!(d.rule, Rule::LockOrderCycle);
        assert!(d.message.contains("Pool.intake"), "{}", d.message);
        assert!(d.message.contains("Pool.done"), "{}", d.message);
        assert!(d.message.contains("lock-order cycle"), "{}", d.message);
    }
    assert_ne!(diags[0].line, diags[1].line, "one finding per edge site");
}

/// The blocking `recv` lives in a helper one call away from the guard: only
/// the interprocedural summary can connect them. The sibling that drops the
/// guard before calling the same helper stays silent.
#[test]
fn blocking_under_lock_fires_through_a_helper_call() {
    let diags = fixture_check("blocking_lock");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::BlockingUnderLock);
    assert!(d.message.contains("next_item"), "{}", d.message);
    assert!(d.message.contains("recv"), "{}", d.message);
    assert!(d.message.contains("Worker.queue"), "{}", d.message);
}

/// `seen` grows forever on a JoinHandle-holding registry; `recent` grows too
/// but is length-checked and evicted, so only `seen` is flagged.
#[test]
fn unbounded_growth_fires_on_unevicted_field_only() {
    let diags = fixture_check("unbounded_growth");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::UnboundedGrowth);
    assert!(d.message.contains("Registry.seen"), "{}", d.message);
    assert!(d.message.contains("push"), "{}", d.message);
}

/// `.unwrap()` inside the critical section poisons the lock on panic; the
/// sibling that parses before locking stays silent.
#[test]
fn panic_under_lock_fires_inside_critical_section_only() {
    let diags = fixture_check("panic_lock");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::PanicUnderLock);
    assert!(d.message.contains("unwrap"), "{}", d.message);
    assert!(d.message.contains("Counter.total"), "{}", d.message);
    assert!(d.message.contains("poisons"), "{}", d.message);
}

/// A `rhlint:hot` fn that allocates is flagged; an untagged allocator and a
/// tagged-but-clean kernel both stay silent.
#[test]
fn hot_path_alloc_fires_on_tagged_fn_only() {
    let diags = fixture_check("hot_alloc");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::HotPathAlloc);
    assert!(d.message.contains("Vec::with_capacity"), "{}", d.message);
    assert!(d.message.contains("`score`"), "{}", d.message);
}

/// An allow with no matching finding on its line or the next is stale; the
/// allow that really suppresses a lossy cast survives (and keeps the cast
/// finding suppressed).
#[test]
fn stale_allow_fires_on_orphaned_suppression_only() {
    let diags = fixture_check("stale_allow");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::StaleAllow);
    assert!(d.message.contains("unwrap"), "{}", d.message);
    assert!(d.message.contains("stale"), "{}", d.message);
}

/// `--format json` must be byte-identical across runs: same sorted order,
/// no timestamps or environment data.
#[test]
fn json_output_is_byte_stable_across_runs() {
    let a = render_json(&fixture_check("taint_alias"));
    let b = render_json(&fixture_check("taint_alias"));
    assert_eq!(a, b);
    assert!(a.contains("\"code\":\"RH013\""), "{a}");
    assert!(a.contains("\"line\":"), "{a}");
}

/// The new input-validation and config-range codes render byte-stably in
/// both machine formats, and SARIF results carry the new rule ids.
#[test]
fn new_rule_codes_are_byte_stable_in_json_and_sarif() {
    for (fixture, code) in [
        ("unvalidated_alloc", "RH026"),
        ("tainted_index", "RH027"),
        ("config_range", "RH028"),
        ("unchecked_arith", "RH029"),
        ("zero_div", "RH030"),
    ] {
        let diags = fixture_check(fixture);
        let a = render_json(&diags);
        let b = render_json(&fixture_check(fixture));
        assert_eq!(a, b, "{fixture} JSON must be byte-stable");
        assert!(
            a.contains(&format!("\"code\":\"{code}\"")),
            "{fixture}: {a}"
        );
        let s1 = render_sarif(&diags);
        let s2 = render_sarif(&diags);
        assert_eq!(s1, s2, "{fixture} SARIF must be byte-stable");
        assert!(
            s1.contains(&format!("\"ruleId\":\"{code}\"")),
            "{fixture}: {s1}"
        );
    }
}

/// `--format sarif` is byte-stable too, and carries the full rule catalog
/// plus one result per finding with a physical location.
#[test]
fn sarif_output_is_byte_stable_and_well_formed() {
    let diags = fixture_check("lock_order");
    let a = render_sarif(&diags);
    let b = render_sarif(&diags);
    assert_eq!(a, b);
    assert!(a.contains("\"version\": \"2.1.0\""), "{a}");
    assert!(a.contains("\"name\": \"rhlint\""), "{a}");
    // Every rule in the catalog, even ones with no findings here.
    for rule in Rule::ALL {
        assert!(a.contains(&format!("\"id\":\"{}\"", rule.code())), "{a}");
    }
    assert!(a.contains("\"ruleId\":\"RH020\""), "{a}");
    assert!(a.contains("\"startLine\":"), "{a}");
    assert!(
        a.contains("crates/rockpool/src/lib.rs"),
        "uri uses forward slashes: {a}"
    );
}

/// Three RH026 positives — a direct `Vec::with_capacity(len)` on an
/// unchecked wire length, the same length handed to an allocating helper
/// (caught by the parameter-sink summary), and the `vec![0u8; len]` macro
/// form that mirrors the real `proto.rs` read path minus its bound check —
/// while the `MAX_PAYLOAD_BYTES`-checked sibling stays silent.
#[test]
fn unvalidated_alloc_fires_direct_and_through_helper() {
    let diags = fixture_check("unvalidated_alloc");
    assert_eq!(diags.len(), 3, "got:\n{}", render(&diags));
    for d in &diags {
        assert_eq!(d.rule, Rule::UnvalidatedLengthAlloc);
        assert!(d.message.contains("wire bytes"), "{}", d.message);
    }
    assert!(
        diags.iter().any(|d| d.message.contains("alloc_buf")),
        "one finding is the interprocedural one:\n{}",
        render(&diags)
    );
    assert!(
        diags.iter().any(|d| d.message.contains("vec![_; n]")),
        "the vec! macro form is caught too:\n{}",
        render(&diags)
    );
}

/// `dims[idx]` with a wire-decoded index fires RH027; the sibling guarded by
/// `idx < dims.len()` is sanitized by the dominating bound.
#[test]
fn tainted_index_fires_only_without_bound_check() {
    let diags = fixture_check("tainted_index");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::TaintedIndex);
    assert!(d.message.contains("wire bytes"), "{}", d.message);
    assert!(d.message.contains(".get("), "{}", d.message);
}

/// Raw `len + HEADER_BYTES` on a wire length fires RH029; both the
/// `checked_add` form and the bound-checked sum stay silent.
#[test]
fn unchecked_arith_fires_only_on_raw_operator() {
    let diags = fixture_check("unchecked_arith");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::UncheckedArithUntrusted);
    assert!(d.message.contains("checked_add"), "{}", d.message);
    assert!(d.message.contains("wire bytes"), "{}", d.message);
}

/// Dividing by a file-read-derived count fires RH030; the `== 0` guard and
/// the `.max(1)` floor both prove the divisor non-zero.
#[test]
fn zero_div_fires_only_without_nonzero_proof() {
    let diags = fixture_check("zero_div");
    assert_eq!(diags.len(), 1, "got:\n{}", render(&diags));
    let d = &diags[0];
    assert_eq!(d.rule, Rule::UntrustedDivisor);
    assert!(d.message.contains("file read"), "{}", d.message);
    assert!(d.message.contains("max(1)"), "{}", d.message);
}

/// A `Dim` default outside its own bounds and a `set()` escaping the
/// declared range both fire RH028; the in-bounds default and the
/// clamped-then-set suggestion stay silent.
#[test]
fn config_out_of_range_fires_on_default_and_set() {
    let diags = fixture_check("config_range");
    assert_eq!(diags.len(), 2, "got:\n{}", render(&diags));
    for d in &diags {
        assert_eq!(d.rule, Rule::ConfigOutOfRange);
    }
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("ExecutorInstances")),
        "the bad default is flagged:\n{}",
        render(&diags)
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("ShufflePartitions")),
        "the out-of-range set is flagged:\n{}",
        render(&diags)
    );
}

/// CFG corner cases: the block after labeled `break`/`continue` loops is
/// still analyzed (RH027 fires there), closure bodies are lowered into the
/// enclosing function (RH026 and RH029 fire inside closures), and a
/// dominating bound survives `?` edges and a `while let` loop (no fourth
/// finding).
#[test]
fn cfg_corners_keep_taint_flowing_on_the_right_edges() {
    let diags = fixture_check("cfg_corners");
    let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(diags.len(), 3, "got:\n{}", render(&diags));
    assert!(rules.contains(&Rule::TaintedIndex), "{}", render(&diags));
    assert!(
        rules.contains(&Rule::UnvalidatedLengthAlloc),
        "{}",
        render(&diags)
    );
    assert!(
        rules.contains(&Rule::UncheckedArithUntrusted),
        "{}",
        render(&diags)
    );
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}
