#![forbid(unsafe_code)]

//! Machine-learning substrate for the Rockhopper reproduction.
//!
//! The paper trains its surrogate models with scikit-learn (SVR, linear models) and
//! drives Bayesian Optimization with a Gaussian process. Nothing of the sort exists in
//! the offline crate set, so this crate implements the required hypothesis classes from
//! scratch on top of a small dense linear-algebra kernel:
//!
//! - [`linreg::Ridge`] — ordinary/ridge least squares via normal equations,
//! - [`krr::KernelRidge`] — RBF kernel ridge regression (the stand-in for the paper's
//!   SVR surrogate; same kernel-machine hypothesis class),
//! - [`gp::GaussianProcess`] — GP regression with posterior mean/variance, used by the
//!   Bayesian-Optimization baselines,
//! - [`knn::KnnRegressor`] — distance-weighted k-nearest-neighbour regression,
//! - [`forest::BaggedTrees`] / [`tree::RegressionTree`] — CART-style trees and a bagged
//!   ensemble, used for the offline baseline model,
//! - [`pseudo::PercentileSelector`] — the paper's "Level X" pseudo-surrogates (§6.1),
//!   which pick the candidate ranked at the 10·X-th percentile of *true* performance.
//!
//! All estimators implement the [`Regressor`] trait and are deterministic given a seed.

pub mod dataset;
pub mod forest;
pub mod gp;
pub mod kernel;
pub mod knn;
pub mod krr;
pub mod linalg;
pub mod linreg;
pub mod metrics;
pub mod pseudo;
pub mod scaler;
pub mod stats;
pub mod tree;

pub use dataset::Dataset;
pub use forest::BaggedTrees;
pub use gp::GaussianProcess;
pub use knn::KnnRegressor;
pub use krr::KernelRidge;
pub use linreg::Ridge;
pub use pseudo::PercentileSelector;
pub use scaler::StandardScaler;

/// Errors produced by the estimators in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The training set was empty or features/targets disagreed in length.
    EmptyOrMismatched {
        /// Number of feature rows supplied.
        rows: usize,
        /// Number of target values supplied.
        targets: usize,
    },
    /// Feature rows have inconsistent dimensionality.
    RaggedFeatures {
        /// Dimensionality of the first row.
        expected: usize,
        /// Dimensionality of the offending row.
        found: usize,
    },
    /// A linear system was (numerically) singular and could not be solved.
    Singular,
    /// A hyper-parameter was outside its valid range.
    InvalidHyperparameter(&'static str),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::EmptyOrMismatched { rows, targets } => write!(
                f,
                "empty or mismatched training data: {rows} feature rows vs {targets} targets"
            ),
            MlError::RaggedFeatures { expected, found } => write!(
                f,
                "ragged feature rows: expected dimension {expected}, found {found}"
            ),
            MlError::Singular => write!(f, "linear system is singular"),
            MlError::InvalidHyperparameter(name) => {
                write!(f, "invalid hyper-parameter: {name}")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// A trained (or trainable) regression model mapping feature vectors to a scalar.
///
/// This is the interface through which the Centroid Learning algorithm consumes
/// surrogate models: fit on the latest `N` observations, then score candidates.
pub trait Regressor {
    /// Fit the model to rows `x` (each a feature vector) and targets `y`.
    ///
    /// Implementations must validate the training-set shape and return [`MlError`]
    /// rather than panic.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError>;

    /// Predict the target for a single feature vector.
    ///
    /// Calling `predict` before a successful `fit` returns an implementation-defined
    /// default (typically `0.0` or the prior mean); it must not panic.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict targets for a batch of feature vectors.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Validate a training-set shape shared by every estimator.
pub(crate) fn validate_xy(x: &[Vec<f64>], y: &[f64]) -> Result<usize, MlError> {
    if x.is_empty() || x.len() != y.len() {
        return Err(MlError::EmptyOrMismatched {
            rows: x.len(),
            targets: y.len(),
        });
    }
    let dim = x.first().map(Vec::len).unwrap_or(0);
    for row in x {
        if row.len() != dim {
            return Err(MlError::RaggedFeatures {
                expected: dim,
                found: row.len(),
            });
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(
            validate_xy(&[], &[]),
            Err(MlError::EmptyOrMismatched {
                rows: 0,
                targets: 0
            })
        );
    }

    #[test]
    fn validate_rejects_mismatch() {
        let x = vec![vec![1.0]];
        assert!(matches!(
            validate_xy(&x, &[1.0, 2.0]),
            Err(MlError::EmptyOrMismatched { .. })
        ));
    }

    #[test]
    fn validate_rejects_ragged() {
        let x = vec![vec![1.0, 2.0], vec![1.0]];
        assert_eq!(
            validate_xy(&x, &[1.0, 2.0]),
            Err(MlError::RaggedFeatures {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn validate_accepts_well_formed() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(validate_xy(&x, &[1.0, 2.0]), Ok(2));
    }

    #[test]
    fn error_display_is_informative() {
        let msg = MlError::RaggedFeatures {
            expected: 3,
            found: 2,
        }
        .to_string();
        assert!(msg.contains('3') && msg.contains('2'));
        assert!(MlError::Singular.to_string().contains("singular"));
    }
}
