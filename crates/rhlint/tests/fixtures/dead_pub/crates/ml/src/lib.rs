//! Fixture ml crate with an orphaned public item.

/// Never referenced anywhere else in this fixture workspace.
pub fn orphan_metric(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
