//! The rockserve load-generation bench: an open-loop, seeded client fleet
//! driving a serving endpoint with a mixed request schedule, emitting the
//! machine-readable `BENCH_serve.json` baseline consumed by the tier-1 gate
//! (`tests/bench_gate.rs`) and the CI artifact upload.
//!
//! The whole schedule — which lane sends which frame when, which workload
//! signature each `Suggest` carries, the inter-request gaps — is a pure
//! function of the configured seed (lane seeds come from
//! `rockpool::split_seed`, the same discipline as the evaluation pool), and
//! the served suggestions are a pure function of request content (the
//! server's coalescing contract). The cross-run `suggest_fingerprint`
//! therefore must match between two runs at the same seed regardless of
//! thread interleaving — that is the determinism gate.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rockserve::proto::Response;
use rockserve::{ServeClient, ServeConfig, Server};
use sparksim::config::SparkConf;
use sparksim::event::SparkEvent;
use sparksim::metrics::QueryMetrics;

/// Schema tag stamped into `BENCH_serve.json`.
pub const SERVE_SCHEMA: &str = "rockhopper-bench-serve/v1";

/// Default output path; overridable via `ROCKHOPPER_SERVE_OUT`.
pub const SERVE_DEFAULT_OUT: &str = "BENCH_serve.json";

/// Reports carry signatures in a disjoint band from suggests, so ingesting a
/// report never invalidates a suggest's coalescing slot: every suggest key is
/// evaluated exactly once per server lifetime and the fingerprint is stable.
const REPORT_SIG_BASE: u64 = 1_000_000;

/// Load-generator shape. Both presets drive well over 64 concurrent mixed
/// requests (clients × requests_per_client).
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Master seed: lane schedules and the server backend both derive from it.
    pub seed: u64,
    /// Concurrent client lanes (one connection each).
    pub clients: usize,
    /// Frames each lane sends.
    pub requests_per_client: usize,
    /// Distinct `Suggest` workload signatures in the mix.
    pub suggest_signatures: u64,
    /// Mean open-loop inter-request gap per lane, microseconds.
    pub mean_gap_us: u64,
}

impl ServeBenchConfig {
    /// Sub-second shape used by the tier-1 gate and the CI smoke step:
    /// 16 lanes × 8 frames = 128 mixed requests.
    pub fn quick(seed: u64) -> ServeBenchConfig {
        ServeBenchConfig {
            seed,
            clients: 16,
            requests_per_client: 8,
            suggest_signatures: 4,
            mean_gap_us: 200,
        }
    }

    /// The `cargo run -p bench --bin serve_loadgen` baseline:
    /// 32 lanes × 32 frames = 1024 mixed requests.
    pub fn full(seed: u64) -> ServeBenchConfig {
        ServeBenchConfig {
            seed,
            clients: 32,
            requests_per_client: 32,
            suggest_signatures: 8,
            mean_gap_us: 100,
        }
    }
}

/// What one bench run measured; rendered to `BENCH_serve.json` by
/// [`ServeBenchReport::to_json`].
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The configured master seed.
    pub seed: u64,
    /// Client lanes driven.
    pub clients: usize,
    /// Total frames sent across all lanes.
    pub requests_total: u64,
    /// Wall time of the loaded phase, milliseconds.
    pub wall_ms: f64,
    /// Requests per second over the loaded phase.
    pub throughput_rps: f64,
    /// Client-observed p50 request latency, microseconds.
    pub p50_us: u64,
    /// Client-observed p95 request latency, microseconds.
    pub p95_us: u64,
    /// Client-observed p99 request latency, microseconds.
    pub p99_us: u64,
    /// Frames sent per kind: (suggest, report, health, metrics).
    pub sent: (u64, u64, u64, u64),
    /// Requests the server shed with `Overloaded`.
    pub overloaded: u64,
    /// Protocol errors, client- and server-side combined (gate requires 0).
    pub protocol_errors: u64,
    /// Backend evaluations the server actually ran for all suggests.
    pub backend_evals: u64,
    /// Suggests served from a shared evaluation (coalesced).
    pub coalesced_hits: u64,
    /// Largest request batch served by one backend evaluation.
    pub batch_max: u64,
    /// Order-sensitive fold of every served suggestion point, in
    /// (lane, request) order — bit-identical across runs at the same seed.
    pub suggest_fingerprint: u64,
    /// Whether the server drained cleanly after the run (in-process mode) or
    /// answered a final health probe (external mode).
    pub clean_drain: bool,
}

impl ServeBenchReport {
    /// Render as the `BENCH_serve.json` document (stable field order). The
    /// fingerprint is a hex string: a u64 does not survive JSON's f64 numbers.
    pub fn to_json(&self) -> String {
        let (suggest, report, health, metrics) = self.sent;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SERVE_SCHEMA}\",\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"requests_total\": {},\n", self.requests_total));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str(&format!(
            "  \"throughput_rps\": {:.1},\n",
            self.throughput_rps
        ));
        out.push_str(&format!(
            "  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},\n",
            self.p50_us, self.p95_us, self.p99_us
        ));
        out.push_str(&format!(
            "  \"sent\": {{\"suggest\": {suggest}, \"report\": {report}, \"health\": {health}, \"metrics\": {metrics}}},\n",
        ));
        out.push_str(&format!(
            "  \"server\": {{\"overloaded\": {}, \"protocol_errors\": {}, \"backend_evals\": {}, \"coalesced_hits\": {}, \"batch_max\": {}}},\n",
            self.overloaded,
            self.protocol_errors,
            self.backend_evals,
            self.coalesced_hits,
            self.batch_max
        ));
        out.push_str(&format!(
            "  \"suggest_fingerprint\": \"{:016x}\",\n",
            self.suggest_fingerprint
        ));
        out.push_str(&format!("  \"clean_drain\": {}\n", self.clean_drain));
        out.push_str("}\n");
        out
    }
}

/// One frame of the seeded schedule.
enum Shot {
    Suggest(u64),
    Report(u64),
    Health,
    Metrics,
}

/// The request mix: ~70% suggest, 15% report, 10% health, 5% metrics.
fn draw_shot(rng: &mut StdRng, suggest_signatures: u64) -> Shot {
    let roll: u32 = rng.random_range(0..100u32);
    if roll < 70 {
        Shot::Suggest(rng.random_range(0..suggest_signatures.max(1)))
    } else if roll < 85 {
        Shot::Report(REPORT_SIG_BASE + rng.random_range(0..suggest_signatures.max(1)))
    } else if roll < 95 {
        Shot::Health
    } else {
        Shot::Metrics
    }
}

/// The tuning context every lane uses for signature `sig` — identical content
/// so concurrent lanes coalesce onto one backend evaluation.
fn ctx_for(sig: u64) -> optimizers::TuningContext {
    optimizers::TuningContext {
        embedding: vec![0.2 + (sig % 7) as f64 * 0.1, 0.5],
        expected_data_size: 1.0 + sig as f64,
        iteration: 0,
    }
}

/// A tiny but fully-valid event document for `Report` frames.
fn report_doc(lane: usize, shot: usize, sig: u64) -> (String, String) {
    let app_id = format!("loadgen-{lane}-{shot}");
    let events = vec![
        SparkEvent::ApplicationStart {
            app_id: app_id.clone(),
            artifact_id: format!("artifact-{sig}"),
        },
        SparkEvent::QueryStart {
            app_id: app_id.clone(),
            query_signature: sig,
            conf: SparkConf::default(),
            plan_summary: vec!["Scan".to_string(), "Aggregate".to_string()],
            embedding: vec![0.3, 0.6],
        },
        SparkEvent::QueryEnd {
            app_id: app_id.clone(),
            query_signature: sig,
            metrics: QueryMetrics {
                elapsed_ms: 120.0 + (sig % 5) as f64 * 10.0,
                true_ms: 118.0,
                num_stages: 2,
                num_tasks: 64,
                input_bytes: 1.0e9,
                input_rows: 1.0e6,
                root_rows: 1.0e3,
                shuffle_bytes: 2.0e8,
                spilled_bytes: 0.0,
                broadcast_joins: 1,
                sort_merge_joins: 1,
            },
        },
        SparkEvent::ApplicationEnd {
            app_id: app_id.clone(),
        },
    ];
    (app_id, sparksim::event::to_jsonl(&events))
}

/// What one lane brought back.
struct LaneResult {
    /// Served suggestion points, in this lane's request order.
    points: Vec<Vec<f64>>,
    /// Per-request latencies, microseconds.
    latencies_us: Vec<u64>,
    /// (suggest, report, health, metrics) frames sent.
    sent: (u64, u64, u64, u64),
    /// Wire errors or `Response::Error` replies observed.
    protocol_errors: u64,
    /// `Overloaded` replies observed.
    overloaded: u64,
}

fn run_lane(addr: std::net::SocketAddr, lane: usize, cfg: &ServeBenchConfig) -> LaneResult {
    let mut result = LaneResult {
        points: Vec::new(),
        latencies_us: Vec::new(),
        sent: (0, 0, 0, 0),
        protocol_errors: 0,
        overloaded: 0,
    };
    let Ok(mut client) = ServeClient::connect(addr) else {
        result.protocol_errors += 1;
        return result;
    };
    let mut rng = StdRng::seed_from_u64(rockpool::split_seed(cfg.seed, lane as u64));
    for shot_idx in 0..cfg.requests_per_client {
        // Open-loop arrival: the gap is scheduled from the seed, not from the
        // previous reply's timing.
        let gap_us = rng.random_range(0..cfg.mean_gap_us.saturating_mul(2).max(1));
        std::thread::sleep(Duration::from_micros(gap_us));
        let shot = draw_shot(&mut rng, cfg.suggest_signatures);
        let started = Instant::now();
        let reply = match &shot {
            Shot::Suggest(sig) => {
                result.sent.0 += 1;
                client.suggest("loadgen", *sig, &ctx_for(*sig))
            }
            Shot::Report(sig) => {
                result.sent.1 += 1;
                let (app_id, doc) = report_doc(lane, shot_idx, *sig);
                client.report("loadgen", &app_id, doc)
            }
            Shot::Health => {
                result.sent.2 += 1;
                client.health()
            }
            Shot::Metrics => {
                result.sent.3 += 1;
                client.metrics()
            }
        };
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        result.latencies_us.push(us);
        match reply {
            Ok(Response::Suggestion { point, .. }) => result.points.push(point),
            Ok(Response::Overloaded { .. }) => result.overloaded += 1,
            Ok(Response::Error { .. }) | Err(_) => result.protocol_errors += 1,
            Ok(_) => {}
        }
    }
    result
}

/// Client-side percentile over the observed latencies (nearest-rank).
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Drive `cfg.clients` concurrent lanes against `addr` and aggregate.
fn run_fleet(addr: std::net::SocketAddr, cfg: &ServeBenchConfig) -> (Vec<LaneResult>, f64) {
    let started = Instant::now();
    let lanes: Vec<LaneResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|lane| scope.spawn(move || run_lane(addr, lane, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(LaneResult {
                    points: Vec::new(),
                    latencies_us: Vec::new(),
                    sent: (0, 0, 0, 0),
                    protocol_errors: 1,
                    overloaded: 0,
                })
            })
            .collect()
    });
    (lanes, started.elapsed().as_secs_f64() * 1e3)
}

fn aggregate(
    cfg: &ServeBenchConfig,
    lanes: Vec<LaneResult>,
    wall_ms: f64,
    server: rockserve::MetricsSnapshot,
    clean_drain: bool,
) -> ServeBenchReport {
    let mut fingerprint = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = (0u64, 0u64, 0u64, 0u64);
    let mut client_protocol_errors = 0u64;
    let mut client_overloaded = 0u64;
    // Lane order, then request order within the lane: the fold order is part
    // of the fingerprint's definition, so it must not depend on join timing.
    for lane in &lanes {
        for point in &lane.points {
            fingerprint = fold_point(fingerprint, point);
        }
        latencies.extend_from_slice(&lane.latencies_us);
        sent.0 += lane.sent.0;
        sent.1 += lane.sent.1;
        sent.2 += lane.sent.2;
        sent.3 += lane.sent.3;
        client_protocol_errors += lane.protocol_errors;
        client_overloaded += lane.overloaded;
    }
    latencies.sort_unstable();
    let requests_total = sent.0 + sent.1 + sent.2 + sent.3;
    let throughput_rps = if wall_ms > 0.0 {
        requests_total as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    ServeBenchReport {
        seed: cfg.seed,
        clients: cfg.clients,
        requests_total,
        wall_ms,
        throughput_rps,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        sent,
        overloaded: server.overloaded.max(client_overloaded),
        protocol_errors: server.protocol_errors + client_protocol_errors,
        backend_evals: server.backend_evals,
        coalesced_hits: server.coalesced_hits,
        batch_max: server.batch_max,
        suggest_fingerprint: fingerprint,
        clean_drain,
    }
}

/// Order-sensitive bit fold of one suggestion point (same construction as the
/// parallel bench's fingerprints).
fn fold_point(acc: u64, point: &[f64]) -> u64 {
    let mut h = rockpool::split_seed(acc, point.len() as u64);
    for x in point {
        h = rockpool::split_seed(h, x.to_bits());
    }
    h
}

/// Spawn an in-process server on an ephemeral port, run the fleet, then
/// drain-shutdown and verify the backend came back intact.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> std::io::Result<ServeBenchReport> {
    let backend = pipeline::AutotuneBackend::new(
        std::sync::Arc::new(pipeline::Storage::new()),
        None,
        cfg.seed,
    );
    let server = Server::spawn(backend, "127.0.0.1:0", ServeConfig::default())?;
    let addr = server.local_addr();
    let (lanes, wall_ms) = run_fleet(addr, cfg);

    // Final server-side counters, then an explicit drain via the wire.
    let mut control = ServeClient::connect(addr)?;
    let snapshot = match control.metrics() {
        Ok(Response::MetricsReport { serving, .. }) => serving,
        _ => rockserve::MetricsSnapshot::default(),
    };
    let acked = matches!(control.shutdown_server(), Ok(Response::ShuttingDown));
    let drained = server.join().is_some();
    Ok(aggregate(cfg, lanes, wall_ms, snapshot, acked && drained))
}

/// Run the fleet against an already-running external server (never sends
/// `Shutdown`); `clean_drain` reports whether a final health probe answered.
pub fn run_serve_bench_against(
    addr: std::net::SocketAddr,
    cfg: &ServeBenchConfig,
) -> std::io::Result<ServeBenchReport> {
    let (lanes, wall_ms) = run_fleet(addr, cfg);
    let mut control = ServeClient::connect(addr)?;
    let snapshot = match control.metrics() {
        Ok(Response::MetricsReport { serving, .. }) => serving,
        _ => rockserve::MetricsSnapshot::default(),
    };
    let healthy = matches!(control.health(), Ok(Response::Healthy { .. }));
    Ok(aggregate(cfg, lanes, wall_ms, snapshot, healthy))
}

/// Where `BENCH_serve.json` goes: `$ROCKHOPPER_SERVE_OUT` or
/// [`SERVE_DEFAULT_OUT`].
pub fn serve_out_path() -> std::path::PathBuf {
    std::env::var("ROCKHOPPER_SERVE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from(SERVE_DEFAULT_OUT))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_deterministic_and_clean() {
        let cfg = ServeBenchConfig::quick(0x5EED);
        let a = run_serve_bench(&cfg).expect("bench runs");
        let b = run_serve_bench(&cfg).expect("bench runs twice");
        assert_eq!(a.suggest_fingerprint, b.suggest_fingerprint);
        assert_eq!(a.requests_total, 128);
        assert_eq!(a.protocol_errors, 0, "protocol errors in {a:?}");
        assert!(a.clean_drain && b.clean_drain);
        assert!(a.p50_us <= a.p95_us && a.p95_us <= a.p99_us);
        // Coalescing must be visible: far fewer evaluations than suggests.
        assert!(
            a.backend_evals <= u64::from(u32::try_from(cfg.suggest_signatures).unwrap_or(u32::MAX)),
            "evals {} > distinct signatures {}",
            a.backend_evals,
            cfg.suggest_signatures
        );
        assert_eq!(a.backend_evals + a.coalesced_hits, a.sent.0);
    }

    #[test]
    fn report_renders_the_serve_schema() {
        let report = ServeBenchReport {
            seed: 1,
            clients: 2,
            requests_total: 16,
            wall_ms: 10.0,
            throughput_rps: 1600.0,
            p50_us: 10,
            p95_us: 20,
            p99_us: 30,
            sent: (10, 3, 2, 1),
            overloaded: 0,
            protocol_errors: 0,
            backend_evals: 4,
            coalesced_hits: 6,
            batch_max: 3,
            suggest_fingerprint: 0xDEAD_BEEF,
            clean_drain: true,
        };
        let json = report.to_json();
        let value = serde_json::value_from_str(&json).expect("valid JSON");
        match value.get_field("schema") {
            serde::Value::Str(s) => assert_eq!(s, SERVE_SCHEMA),
            other => panic!("schema field: {other:?}"),
        }
        match value.get_field("suggest_fingerprint") {
            serde::Value::Str(s) => assert_eq!(s, "00000000deadbeef"),
            other => panic!("fingerprint field: {other:?}"),
        }
        assert!(matches!(
            value.get_field("clean_drain"),
            serde::Value::Bool(true)
        ));
    }
}
