//! Minimal, fully-consistent knob declarations for fixture workspaces.

/// The tuned Spark parameters.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// `spark.executor.memory`
    ExecutorMemory,
    /// `spark.executor.cores`
    ExecutorCores,
    /// `spark.sql.shuffle.partitions`
    ShufflePartitions,
    /// `spark.driver.memory`
    DriverMemory,
    /// `spark.executor.instances`
    ExecutorInstances,
    /// `spark.memory.fraction`
    MemoryFraction,
    /// `spark.sql.autoBroadcastJoinThreshold`
    BroadcastThreshold,
}

impl Knob {
    pub fn spark_name(self) -> &'static str {
        match self {
            Knob::ExecutorMemory => "spark.executor.memory",
            Knob::ExecutorCores => "spark.executor.cores",
            Knob::ShufflePartitions => "spark.sql.shuffle.partitions",
            Knob::DriverMemory => "spark.driver.memory",
            Knob::ExecutorInstances => "spark.executor.instances",
            Knob::MemoryFraction => "spark.memory.fraction",
            Knob::BroadcastThreshold => "spark.sql.autoBroadcastJoinThreshold",
        }
    }
}

/// Query-level tuned knobs.
pub const QUERY_LEVEL: [Knob; 3] = [
    Knob::ShufflePartitions,
    Knob::MemoryFraction,
    Knob::BroadcastThreshold,
];

/// App-level tuned knobs.
pub const APP_LEVEL: [Knob; 4] = [
    Knob::ExecutorMemory,
    Knob::ExecutorCores,
    Knob::DriverMemory,
    Knob::ExecutorInstances,
];

/// One Spark configuration point.
#[derive(Clone, Default)]
pub struct SparkConf {
    /// `spark.executor.memory`
    pub executor_memory_mb: f64,
    /// `spark.executor.cores`
    pub executor_cores: f64,
    /// `spark.sql.shuffle.partitions`
    pub shuffle_partitions: f64,
    /// `spark.driver.memory`
    pub driver_memory_mb: f64,
    /// `spark.executor.instances`
    pub executor_instances: f64,
    /// `spark.memory.fraction`
    pub memory_fraction: f64,
    /// `spark.sql.autoBroadcastJoinThreshold`
    pub broadcast_threshold_mb: f64,
}

impl SparkConf {
    pub fn get(&self, knob: Knob) -> f64 {
        match knob {
            Knob::ExecutorMemory => self.executor_memory_mb,
            Knob::ExecutorCores => self.executor_cores,
            Knob::ShufflePartitions => self.shuffle_partitions,
            Knob::DriverMemory => self.driver_memory_mb,
            Knob::ExecutorInstances => self.executor_instances,
            Knob::MemoryFraction => self.memory_fraction,
            Knob::BroadcastThreshold => self.broadcast_threshold_mb,
        }
    }

    pub fn set(&mut self, knob: Knob, value: f64) {
        match knob {
            Knob::ExecutorMemory => self.executor_memory_mb = value,
            Knob::ExecutorCores => self.executor_cores = value,
            Knob::ShufflePartitions => self.shuffle_partitions = value,
            Knob::DriverMemory => self.driver_memory_mb = value,
            Knob::ExecutorInstances => self.executor_instances = value,
            Knob::MemoryFraction => self.memory_fraction = value,
            Knob::BroadcastThreshold => self.broadcast_threshold_mb = value,
        }
    }
}
