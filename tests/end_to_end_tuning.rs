//! End-to-end integration: offline flighting → baseline training → online Centroid
//! Learning on the Spark simulator, asserting the paper's headline behaviours.

use optimizers::env::Environment;
use optimizers::space::ConfigSpace;
use optimizers::tuner::Tuner;
use pipeline::flighting::{run_flight, Benchmark, FlightPlan, PoolId, Strategy};
use pipeline::storage::Storage;
use pipeline::trainer::train_baseline;
use rockhopper_repro::prelude::*;
use rockhopper_repro::rockhopper::RockhopperTuner;

fn tune(env: &mut QueryEnv, mut tuner: RockhopperTuner, iters: usize) -> RockhopperTuner {
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    tuner
}

#[test]
fn centroid_learning_beats_default_on_tpch() {
    let mut wins = 0;
    let queries = [1, 3, 6, 9];
    for &q in &queries {
        let mut env = QueryEnv::tpch(q, 2.0, NoiseSpec::low(), 100 + q as u64);
        let space = env.space().clone();
        let default_ms = env.true_time(&space.default_point());
        let tuner = tune(
            &mut env,
            RockhopperTuner::builder(space)
                .guardrail(None)
                .seed(q as u64)
                .build(),
            40,
        );
        let tuned_ms = env.true_time(&tuner.centroid());
        if tuned_ms < default_ms {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "CL should beat the default on most queries ({wins}/{} won)",
        queries.len()
    );
}

#[test]
fn warm_start_pipeline_transfers_across_benchmarks() {
    // Baseline on TPC-DS, target on TPC-H — the paper's §6.3 deployment protocol.
    let space = ConfigSpace::query_level();
    let flight = FlightPlan {
        benchmark: Benchmark::TpcDs,
        queries: vec![1, 3, 5, 10, 12, 21],
        scale_factor: 1.0,
        runs_per_query: 12,
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        noise: NoiseSpec::low(),
        seed: 5,
    };
    let rows = run_flight(&flight, &space, &Storage::new());
    assert_eq!(rows.len(), 6 * 12);
    let baseline = train_baseline(&space, &rows, None, 5).unwrap();

    let mut env = QueryEnv::tpch(6, 1.0, NoiseSpec::low(), 9);
    let default_ms = env.true_time(&space.default_point());
    let tuner = tune(
        &mut env,
        RockhopperTuner::builder(space)
            .baseline(baseline)
            .guardrail(None)
            .seed(9)
            .build(),
        30,
    );
    let tuned_ms = env.true_time(&tuner.centroid());
    assert!(
        tuned_ms < default_ms * 1.05,
        "warm-started tuning should not regress: {tuned_ms} vs default {default_ms}"
    );
}

#[test]
fn tuner_never_proposes_out_of_bounds_configs() {
    let mut env = QueryEnv::tpcds(11, 1.0, NoiseSpec::high(), 4);
    let space = env.space().clone();
    let mut tuner = RockhopperTuner::builder(space.clone()).seed(4).build();
    for _ in 0..60 {
        let p = tuner.suggest(&env.context());
        let conf = space.to_conf(&p);
        conf.validate()
            .expect("every proposed configuration must be valid");
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
}

#[test]
fn guardrail_protects_pathologically_noisy_queries() {
    // A query with violent spikes and an adversarial environment where tuning keeps
    // making things worse: the guardrail must eventually serve defaults.
    let space = ConfigSpace::query_level();
    let mut tuner = RockhopperTuner::builder(space.clone())
        .guardrail(Some(Guardrail::new(10, 0.05, 2)))
        .seed(3)
        .build();
    let ctx = TuningContext {
        embedding: vec![],
        expected_data_size: 1.0,
        iteration: 0,
    };
    for i in 0..40 {
        let p = tuner.suggest(&ctx);
        // Adversarial: time regresses steadily regardless of configuration.
        tuner.observe(
            &p,
            &Outcome {
                elapsed_ms: 100.0 + 25.0 * i as f64,
                data_size: 1.0,
                kind: optimizers::tuner::ObservationKind::Measured,
            },
        );
    }
    assert!(tuner.is_disabled());
    assert_eq!(tuner.suggest(&ctx), space.default_point());
}

#[test]
fn dynamic_data_sizes_do_not_break_convergence() {
    let mut env = QueryEnv::new(
        rockhopper_repro::workloads::tpch::query(6, 2.0),
        NoiseSpec::low(),
        DataSchedule::Periodic {
            base: 0.5,
            amplitude: 1.0,
            k: 5,
        },
        8,
    );
    let space = env.space().clone();
    let default_ms = env.true_time(&space.default_point());
    let tuner = tune(
        &mut env,
        RockhopperTuner::builder(space)
            .guardrail(None)
            .seed(8)
            .build(),
        50,
    );
    // Compare at whatever data size the env is now at — same basis for both.
    let tuned_ms = env.true_time(&tuner.centroid());
    let default_now = env.true_time(&env.space().default_point());
    assert!(
        tuned_ms <= default_now * 1.05,
        "tuned {tuned_ms} vs default-now {default_now} (default at t0 was {default_ms})"
    );
}
