//! The Spark configuration surface: the seven knobs the paper's user study tunes
//! (§2.2) of which production Rockhopper tunes the first three (§6.3).

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Mebibytes to bytes.
pub const MIB: f64 = 1024.0 * 1024.0;

/// The tunable knobs, in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Knob {
    /// `spark.sql.files.maxPartitionBytes` — bytes per input split.
    MaxPartitionBytes,
    /// `spark.sql.autoBroadcastJoinThreshold` — max build-side bytes for a broadcast
    /// join; `<= 0` disables broadcasting.
    AutoBroadcastJoinThreshold,
    /// `spark.sql.shuffle.partitions` — tasks per shuffle stage.
    ShufflePartitions,
    /// `spark.executor.instances` — executor count.
    ExecutorInstances,
    /// `spark.executor.memory` — heap per executor, MiB.
    ExecutorMemoryMb,
    /// `spark.memory.offHeap.enabled`.
    OffHeapEnabled,
    /// `spark.memory.offHeap.size` — off-heap per executor, MiB.
    OffHeapSizeMb,
    /// `spark.sql.adaptive.enabled` — AQE shuffle-partition coalescing.
    AdaptiveEnabled,
    /// `spark.sql.adaptive.advisoryPartitionSizeInBytes` — AQE's coalescing target.
    AdvisoryPartitionBytes,
}

impl Knob {
    /// The Spark property name.
    pub fn spark_name(self) -> &'static str {
        match self {
            Knob::MaxPartitionBytes => "spark.sql.files.maxPartitionBytes",
            Knob::AutoBroadcastJoinThreshold => "spark.sql.autoBroadcastJoinThreshold",
            Knob::ShufflePartitions => "spark.sql.shuffle.partitions",
            Knob::ExecutorInstances => "spark.executor.instances",
            Knob::ExecutorMemoryMb => "spark.executor.memory",
            Knob::OffHeapEnabled => "spark.memory.offHeap.enabled",
            Knob::OffHeapSizeMb => "spark.memory.offHeap.size",
            Knob::AdaptiveEnabled => "spark.sql.adaptive.enabled",
            Knob::AdvisoryPartitionBytes => "spark.sql.adaptive.advisoryPartitionSizeInBytes",
        }
    }

    /// The three query-level knobs production Rockhopper tunes (§6.3).
    pub const QUERY_LEVEL: [Knob; 3] = [
        Knob::MaxPartitionBytes,
        Knob::AutoBroadcastJoinThreshold,
        Knob::ShufflePartitions,
    ];

    /// The application-level knobs fixed at startup (§4.4).
    pub const APP_LEVEL: [Knob; 4] = [
        Knob::ExecutorInstances,
        Knob::ExecutorMemoryMb,
        Knob::OffHeapEnabled,
        Knob::OffHeapSizeMb,
    ];
}

/// A full Spark configuration. Numeric fields are `f64` because the tuners operate in
/// a continuous space; the simulator rounds where semantics demand integers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkConf {
    /// `spark.sql.files.maxPartitionBytes` in bytes.
    pub max_partition_bytes: f64,
    /// `spark.sql.autoBroadcastJoinThreshold` in bytes (`<= 0` disables).
    pub auto_broadcast_join_threshold: f64,
    /// `spark.sql.shuffle.partitions`.
    pub shuffle_partitions: f64,
    /// `spark.executor.instances`.
    pub executor_instances: f64,
    /// `spark.executor.memory` in MiB.
    pub executor_memory_mb: f64,
    /// `spark.memory.offHeap.enabled`.
    pub offheap_enabled: bool,
    /// `spark.memory.offHeap.size` in MiB (ignored unless enabled).
    pub offheap_size_mb: f64,
    /// `spark.sql.adaptive.enabled`: when true, AQE coalesces shuffle partitions
    /// down toward [`SparkConf::advisory_partition_bytes`] at runtime (it only
    /// merges — the task count never exceeds `shuffle.partitions`).
    pub adaptive_enabled: bool,
    /// `spark.sql.adaptive.advisoryPartitionSizeInBytes`.
    pub advisory_partition_bytes: f64,
}

impl Default for SparkConf {
    /// Spark's out-of-the-box defaults (the ones >95% of surveyed queries run with).
    fn default() -> Self {
        SparkConf {
            max_partition_bytes: 128.0 * MIB,
            auto_broadcast_join_threshold: 10.0 * MIB,
            shuffle_partitions: 200.0,
            executor_instances: 4.0,
            executor_memory_mb: 8192.0,
            offheap_enabled: false,
            offheap_size_mb: 0.0,
            // Off by default so the paper's experiments (which tune raw partition
            // counts) keep their semantics; flip on to study the interaction.
            adaptive_enabled: false,
            advisory_partition_bytes: 64.0 * MIB,
        }
    }
}

impl SparkConf {
    /// Read a knob as `f64` (booleans map to 0/1).
    pub fn get(&self, knob: Knob) -> f64 {
        match knob {
            Knob::MaxPartitionBytes => self.max_partition_bytes,
            Knob::AutoBroadcastJoinThreshold => self.auto_broadcast_join_threshold,
            Knob::ShufflePartitions => self.shuffle_partitions,
            Knob::ExecutorInstances => self.executor_instances,
            Knob::ExecutorMemoryMb => self.executor_memory_mb,
            Knob::OffHeapEnabled => {
                if self.offheap_enabled {
                    1.0
                } else {
                    0.0
                }
            }
            Knob::OffHeapSizeMb => self.offheap_size_mb,
            Knob::AdaptiveEnabled => {
                if self.adaptive_enabled {
                    1.0
                } else {
                    0.0
                }
            }
            Knob::AdvisoryPartitionBytes => self.advisory_partition_bytes,
        }
    }

    /// Write a knob from `f64` (booleans treat `>= 0.5` as true).
    pub(crate) fn set(&mut self, knob: Knob, value: f64) {
        match knob {
            Knob::MaxPartitionBytes => self.max_partition_bytes = value,
            Knob::AutoBroadcastJoinThreshold => self.auto_broadcast_join_threshold = value,
            Knob::ShufflePartitions => self.shuffle_partitions = value,
            Knob::ExecutorInstances => self.executor_instances = value,
            Knob::ExecutorMemoryMb => self.executor_memory_mb = value,
            Knob::OffHeapEnabled => self.offheap_enabled = value >= 0.5,
            Knob::OffHeapSizeMb => self.offheap_size_mb = value,
            Knob::AdaptiveEnabled => self.adaptive_enabled = value >= 0.5,
            Knob::AdvisoryPartitionBytes => self.advisory_partition_bytes = value,
        }
    }

    /// Build a conf by overriding the default with `(knob, value)` pairs — how the
    /// tuners materialize a candidate point.
    pub fn from_overrides(overrides: &[(Knob, f64)]) -> SparkConf {
        let mut conf = SparkConf::default();
        for &(k, v) in overrides {
            conf.set(k, v);
        }
        conf
    }

    /// Rounded shuffle partition count, at least 1.
    pub fn shuffle_partition_count(&self) -> usize {
        (self.shuffle_partitions.round() as i64).max(1) as usize
    }

    /// Rounded executor count, at least 1.
    pub fn executor_count(&self) -> usize {
        (self.executor_instances.round() as i64).max(1) as usize
    }

    /// Total off-heap memory available per executor (MiB), respecting the enable flag.
    pub fn effective_offheap_mb(&self) -> f64 {
        if self.offheap_enabled {
            self.offheap_size_mb.max(0.0)
        } else {
            0.0
        }
    }

    /// Validate ranges; the production guardrails never submit an invalid conf, but
    /// the flighting pipeline's random generator relies on this check.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.max_partition_bytes >= MIB && self.max_partition_bytes <= 2048.0 * MIB) {
            return Err(SimError::InvalidConf {
                knob: "spark.sql.files.maxPartitionBytes",
                value: self.max_partition_bytes,
                constraint: "must be within [1 MiB, 2048 MiB]",
            });
        }
        if self.auto_broadcast_join_threshold > 8192.0 * MIB {
            return Err(SimError::InvalidConf {
                knob: "spark.sql.autoBroadcastJoinThreshold",
                value: self.auto_broadcast_join_threshold,
                constraint: "must be at most 8192 MiB",
            });
        }
        if !(self.shuffle_partitions >= 1.0 && self.shuffle_partitions <= 20_000.0) {
            return Err(SimError::InvalidConf {
                knob: "spark.sql.shuffle.partitions",
                value: self.shuffle_partitions,
                constraint: "must be within [1, 20000]",
            });
        }
        if !(self.executor_instances >= 1.0 && self.executor_instances <= 1000.0) {
            return Err(SimError::InvalidConf {
                knob: "spark.executor.instances",
                value: self.executor_instances,
                constraint: "must be within [1, 1000]",
            });
        }
        if !(self.executor_memory_mb >= 512.0 && self.executor_memory_mb <= 512.0 * 1024.0) {
            return Err(SimError::InvalidConf {
                knob: "spark.executor.memory",
                value: self.executor_memory_mb,
                constraint: "must be within [512 MiB, 512 GiB]",
            });
        }
        if self.adaptive_enabled
            && !(self.advisory_partition_bytes >= MIB
                && self.advisory_partition_bytes <= 2048.0 * MIB)
        {
            return Err(SimError::InvalidConf {
                knob: "spark.sql.adaptive.advisoryPartitionSizeInBytes",
                value: self.advisory_partition_bytes,
                constraint: "must be within [1 MiB, 2048 MiB] when AQE is enabled",
            });
        }
        if self.offheap_enabled && self.offheap_size_mb < 0.0 {
            return Err(SimError::InvalidConf {
                knob: "spark.memory.offHeap.size",
                value: self.offheap_size_mb,
                constraint: "must be non-negative when off-heap is enabled",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_spark_defaults() {
        let c = SparkConf::default();
        c.validate().unwrap();
        assert_eq!(c.shuffle_partition_count(), 200);
        assert_eq!(c.max_partition_bytes, 128.0 * MIB);
        assert_eq!(c.auto_broadcast_join_threshold, 10.0 * MIB);
        assert!(!c.offheap_enabled);
    }

    #[test]
    fn get_set_roundtrip_every_knob() {
        let mut c = SparkConf::default();
        let knobs = [
            Knob::MaxPartitionBytes,
            Knob::AutoBroadcastJoinThreshold,
            Knob::ShufflePartitions,
            Knob::ExecutorInstances,
            Knob::ExecutorMemoryMb,
            Knob::OffHeapSizeMb,
        ];
        for (i, &k) in knobs.iter().enumerate() {
            let v = (i as f64 + 1.0) * 100.0;
            c.set(k, v);
            assert_eq!(c.get(k), v, "{k:?}");
        }
        c.set(Knob::OffHeapEnabled, 1.0);
        assert_eq!(c.get(Knob::OffHeapEnabled), 1.0);
        c.set(Knob::OffHeapEnabled, 0.2);
        assert_eq!(c.get(Knob::OffHeapEnabled), 0.0);
    }

    #[test]
    fn from_overrides_only_touches_listed_knobs() {
        let c = SparkConf::from_overrides(&[(Knob::ShufflePartitions, 64.0)]);
        assert_eq!(c.shuffle_partition_count(), 64);
        assert_eq!(
            c.max_partition_bytes,
            SparkConf::default().max_partition_bytes
        );
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut c = SparkConf::default();
        c.shuffle_partitions = 0.0;
        assert!(matches!(c.validate(), Err(SimError::InvalidConf { .. })));
        let mut c = SparkConf::default();
        c.max_partition_bytes = 0.5 * MIB;
        assert!(c.validate().is_err());
        let mut c = SparkConf::default();
        c.executor_memory_mb = 100.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn negative_broadcast_threshold_disables_but_validates() {
        let mut c = SparkConf::default();
        c.auto_broadcast_join_threshold = -1.0;
        c.validate().unwrap();
    }

    #[test]
    fn effective_offheap_respects_flag() {
        let mut c = SparkConf::default();
        c.offheap_size_mb = 2048.0;
        assert_eq!(c.effective_offheap_mb(), 0.0);
        c.offheap_enabled = true;
        assert_eq!(c.effective_offheap_mb(), 2048.0);
    }

    #[test]
    fn rounding_clamps_to_one() {
        let mut c = SparkConf::default();
        c.shuffle_partitions = 0.4;
        assert_eq!(c.shuffle_partition_count(), 1);
        c.executor_instances = -3.0;
        assert_eq!(c.executor_count(), 1);
    }

    #[test]
    fn spark_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<_> = Knob::QUERY_LEVEL
            .iter()
            .chain(Knob::APP_LEVEL.iter())
            .chain([Knob::AdaptiveEnabled, Knob::AdvisoryPartitionBytes].iter())
            .map(|k| k.spark_name())
            .collect();
        assert_eq!(names.len(), 9);
    }
}
