//! Per-function control-flow graphs, built from the tolerant AST.
//!
//! A [`Cfg`] is a list of basic blocks; each block carries the ordered
//! [`Event`]s the dataflow passes interpret (guard acquisitions and releases,
//! blocking operations, panic sites, resolved workspace calls) plus its
//! successor edges. The graph is an over-approximation of real control flow:
//! both branches of an `if`/`match` are reachable, every loop body may run
//! zero or more times, `return`/`break`/`continue` edges go where they say.
//! That is exactly the shape a *may*-analysis wants — if a guard can be held
//! on **some** path to a blocking call, the lint should fire.
//!
//! Construction is driven by the lock-discipline walker in [`crate::locks`]:
//! it linearizes statements into the current block via [`CfgBuilder::push`]
//! and splits blocks at branch points with [`CfgBuilder::fork`]-style
//! primitives. Block 0 is the entry; [`CfgBuilder::exit`] is the single
//! synthetic exit that `return` and the final fallthrough edge target.

/// Index of a basic block inside its [`Cfg`].
pub type BlockId = usize;

/// The event alphabet of the dataflow passes (see [`crate::dataflow`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A `Mutex`/`RwLock` guard comes alive: `let g = m.lock()`, a temporary
    /// `m.lock().x()` chain, or a call to a workspace fn returning a guard.
    Acquire {
        /// Unique-within-function guard identity (`g`, or `#tmp3` for
        /// statement-scoped temporaries).
        guard: String,
        /// Stable identity of the lock object, e.g. `Shared.coalescer`.
        lock: String,
        line: usize,
    },
    /// The guard dies: explicit `drop(g)`, end of its lexical scope, or end
    /// of statement for temporaries.
    Release { guard: String },
    /// A blocking operation: channel `recv`/`recv_timeout`, argument-less
    /// `join()`, `thread::sleep`, socket accept/connect/bulk I/O.
    Blocking { what: String, line: usize },
    /// A potential panic: `unwrap`/`expect`, `panic!`-family macro, or an
    /// `assert!` that can fail.
    Panic { what: String, line: usize },
    /// A call into another workspace function (index into
    /// [`crate::symbols::Workspace::fns`]); interprocedural summaries decide
    /// whether it blocks, panics, or acquires further locks.
    Call { callee: usize, line: usize },
}

/// One basic block: straight-line events, then zero or more successors.
#[derive(Clone, Debug, Default)]
pub struct BasicBlock {
    pub events: Vec<Event>,
    pub succs: Vec<BlockId>,
}

/// A per-function control-flow graph. Block `0` is the entry.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub blocks: Vec<BasicBlock>,
    /// The synthetic exit block every terminating path reaches.
    pub exit: BlockId,
}

impl Cfg {
    /// Predecessor lists, computed on demand by the dataflow solver.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (from, block) in self.blocks.iter().enumerate() {
            for &to in &block.succs {
                if let Some(p) = preds.get_mut(to) {
                    p.push(from);
                }
            }
        }
        preds
    }
}

/// Incremental CFG construction: the AST walker appends events to the
/// *current* block and splits it at branch points.
pub struct CfgBuilder {
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    exit: BlockId,
    /// `(continue_target, break_target)` per enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl Default for CfgBuilder {
    fn default() -> CfgBuilder {
        CfgBuilder::new()
    }
}

impl CfgBuilder {
    pub fn new() -> CfgBuilder {
        // Block 0 is the entry, block 1 the synthetic exit.
        CfgBuilder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            cur: 0,
            exit: 1,
            loop_stack: Vec::new(),
        }
    }

    /// The block new events land in.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// The synthetic exit block.
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Append an event to the current block.
    pub fn push(&mut self, e: Event) {
        if let Some(b) = self.blocks.get_mut(self.cur) {
            b.events.push(e);
        }
    }

    /// Allocate a fresh, empty block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    /// Add the edge `from → to`.
    pub fn edge(&mut self, from: BlockId, to: BlockId) {
        if let Some(b) = self.blocks.get_mut(from) {
            if !b.succs.contains(&to) {
                b.succs.push(to);
            }
        }
    }

    /// Redirect construction into `block`.
    pub fn set_current(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// End the current block with a jump to the exit (a `return`), then
    /// continue in a fresh unreachable block so trailing statements do not
    /// leak facts past the jump.
    pub fn diverge_to_exit(&mut self) {
        let exit = self.exit;
        self.diverge_to(exit);
    }

    /// End the current block with a jump to `target` (break/continue), then
    /// continue in a fresh unreachable block.
    pub fn diverge_to(&mut self, target: BlockId) {
        self.edge(self.cur, target);
        let orphan = self.new_block();
        self.cur = orphan;
    }

    /// Enter a loop whose `continue` jumps to `head` and `break` to `after`.
    pub fn enter_loop(&mut self, head: BlockId, after: BlockId) {
        self.loop_stack.push((head, after));
    }

    /// Leave the innermost loop.
    pub fn leave_loop(&mut self) {
        self.loop_stack.pop();
    }

    /// The innermost loop's `(continue_target, break_target)`, if any.
    pub fn innermost_loop(&self) -> Option<(BlockId, BlockId)> {
        self.loop_stack.last().copied()
    }

    /// Finish: the final fallthrough edge reaches the exit.
    pub fn finish(mut self) -> Cfg {
        let exit = self.exit;
        let cur = self.cur;
        self.edge(cur, exit);
        Cfg {
            blocks: self.blocks,
            exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_cfg_is_entry_then_exit() {
        let mut b = CfgBuilder::new();
        b.push(Event::Blocking {
            what: "recv".into(),
            line: 3,
        });
        let cfg = b.finish();
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
        assert_eq!(cfg.blocks[0].events.len(), 1);
    }

    #[test]
    fn diverge_creates_orphan_continuation() {
        let mut b = CfgBuilder::new();
        b.diverge_to_exit();
        let orphan = b.current();
        assert_ne!(orphan, 0);
        let cfg = b.finish();
        // Entry jumps straight to exit; the orphan has no predecessors.
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
        assert!(cfg.preds()[orphan].is_empty());
    }

    #[test]
    fn preds_invert_succs() {
        let mut b = CfgBuilder::new();
        let then_b = b.new_block();
        let join = b.new_block();
        b.edge(0, then_b);
        b.edge(0, join);
        b.edge(then_b, join);
        b.set_current(join);
        let cfg = b.finish();
        let preds = cfg.preds();
        assert_eq!(preds[join], vec![0, then_b]);
    }
}
