//! Property-based tests for the Centroid Learning algorithm's safety invariants:
//! whatever the observation stream throws at it, the tuner must stay in bounds,
//! produce valid configurations, and respect its own state machine.

use proptest::prelude::*;

use optimizers::space::ConfigSpace;
use optimizers::tuner::{History, Observation, Outcome, Tuner, TuningContext};
use rockhopper::centroid::{CentroidConfig, CentroidState};
use rockhopper::find_best::{find_best, FindBestMode};
use rockhopper::gradient::{find_gradient, GradientMode};
use rockhopper::guardrail::{Guardrail, GuardrailDecision};
use rockhopper::RockhopperTuner;

/// Arbitrary observation stream: (normalized point coords, data size, elapsed).
fn obs_stream(max_len: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64, f64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(0.0..1.0f64, 3),
            0.01..100.0f64,
            0.1..1e7f64,
        ),
        1..max_len,
    )
}

fn ctx(p: f64) -> TuningContext {
    TuningContext {
        embedding: vec![],
        expected_data_size: p,
        iteration: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tuner_always_suggests_valid_configs(stream in obs_stream(40), seed: u64) {
        let space = ConfigSpace::query_level();
        let mut tuner = RockhopperTuner::builder(space.clone()).seed(seed).build();
        for (x, p, r) in &stream {
            let point = tuner.suggest(&ctx(*p));
            prop_assert!(space.to_conf(&point).validate().is_ok());
            // Observe something unrelated to the suggestion — the tuner must cope
            // with arbitrary (point, outcome) pairs (e.g. a client that overrode
            // the recommendation).
            let observed = space.denormalize(x);
            tuner.observe(&observed, &Outcome::measured(*r, *p));
        }
    }

    #[test]
    fn centroid_never_leaves_the_unit_cube(stream in obs_stream(40)) {
        let space = ConfigSpace::query_level();
        let mut state = CentroidState::new(
            &space,
            &space.default_point(),
            CentroidConfig::default(),
        );
        let mut history = History::new();
        for (x, p, r) in &stream {
            history.push(space.denormalize(x), *p, *r);
            state.update(&space, &history, *p);
            for &c in state.centroid_normalized() {
                prop_assert!((0.0..=1.0).contains(&c), "centroid coord {c}");
            }
        }
    }

    #[test]
    fn find_best_index_is_always_in_window(stream in obs_stream(30), p_ref in 0.01..100.0f64) {
        let space = ConfigSpace::query_level();
        let window: Vec<Observation> = stream
            .iter()
            .map(|(x, p, r)| Observation {
                point: space.denormalize(x),
                data_size: *p,
                elapsed_ms: *r,
                kind: optimizers::tuner::ObservationKind::Measured,
            })
            .collect();
        for mode in [FindBestMode::Raw, FindBestMode::Normalized, FindBestMode::ModelBased] {
            let idx = find_best(&space, &window, mode, p_ref);
            prop_assert!(idx.map_or(false, |i| i < window.len()), "{mode:?}");
        }
    }

    #[test]
    fn gradients_are_always_ternary(stream in obs_stream(30), alpha in 0.01..0.5f64) {
        let space = ConfigSpace::query_level();
        let window: Vec<Observation> = stream
            .iter()
            .map(|(x, p, r)| Observation {
                point: space.denormalize(x),
                data_size: *p,
                elapsed_ms: *r,
                kind: optimizers::tuner::ObservationKind::Measured,
            })
            .collect();
        let c_star = window[0].point.clone();
        for mode in [GradientMode::Linear, GradientMode::MlCorners] {
            let dir = find_gradient(&space, &window, &c_star, mode, alpha, 1.0);
            prop_assert_eq!(dir.len(), 3);
            for v in &dir {
                prop_assert!(*v == -1.0 || *v == 0.0 || *v == 1.0, "{:?}: {}", mode, v);
            }
        }
    }

    #[test]
    fn guardrail_never_fires_early(stream in obs_stream(29)) {
        let mut g = Guardrail::new(30, 0.01, 1); // hair-trigger thresholds
        let mut h = History::new();
        for (x, p, r) in &stream {
            h.push(x.clone(), *p, *r);
            prop_assert_eq!(g.check(&h, *p), GuardrailDecision::Continue);
        }
        prop_assert!(!g.is_disabled());
    }

    #[test]
    fn snapshot_restore_preserves_centroid_and_history(
        stream in obs_stream(25),
        seed: u64,
    ) {
        let space = ConfigSpace::query_level();
        let mut tuner = RockhopperTuner::builder(space.clone()).seed(seed).build();
        for (x, p, r) in &stream {
            let _ = tuner.suggest(&ctx(*p));
            tuner.observe(&space.denormalize(x), &Outcome::measured(*r, *p));
        }
        let restored = RockhopperTuner::restore(space, tuner.snapshot(), None);
        prop_assert_eq!(restored.centroid(), tuner.centroid());
        prop_assert_eq!(restored.history.len(), tuner.history.len());
        prop_assert_eq!(restored.is_disabled(), tuner.is_disabled());
    }
}
