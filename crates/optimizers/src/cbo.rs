//! Contextual Bayesian Optimization (§6.2): the surrogate takes
//! `[workload embedding, configs]` (Equation 2) and can be warm-started with baseline
//! data collected offline from benchmark workloads — the transfer-learning experiment
//! of Figure 12.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml::gp::GaussianProcess;
use ml::{Dataset, Regressor};

use crate::acquisition::expected_improvement;
use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

/// GP-EI over the joint (embedding, config) feature space with optional warm-start.
#[derive(Debug)]
pub struct ContextualBO {
    space: ConfigSpace,
    rng: StdRng,
    /// Pure-random iterations before modeling *when no warm-start data exists*.
    pub n_init: usize,
    /// Candidate pool size.
    pub n_candidates: usize,
    /// Offline baseline rows: features are `[embedding…, normalized configs…]`,
    /// targets are `ln(elapsed_ms)`.
    warm_start: Dataset,
    /// Online observations with their contexts.
    online: Vec<(Vec<f64>, Vec<f64>, f64)>, // (embedding, point, elapsed)
    /// Raw history for best-so-far reporting.
    pub history: History,
    /// Embedding captured at the latest `suggest`, attached to the next observation.
    last_embedding: Vec<f64>,
}

impl ContextualBO {
    /// Create without warm-start data.
    pub fn new(space: ConfigSpace, seed: u64) -> ContextualBO {
        ContextualBO {
            space,
            rng: StdRng::seed_from_u64(seed),
            n_init: 5,
            n_candidates: 256,
            warm_start: Dataset::new(),
            online: Vec::new(),
            history: History::new(),
            last_embedding: Vec::new(),
        }
    }

    /// Prime the surrogate with baseline rows. `embedding` and `point` are raw; the
    /// model stores `[embedding…, normalized point…] → ln(elapsed)`.
    pub fn add_baseline_row(&mut self, embedding: &[f64], point: &[f64], elapsed_ms: f64) {
        let feats = self.features(embedding, point);
        // Ignore shape errors from inconsistent embedding dims: baseline data is
        // advisory, never worth failing the tuner over.
        let _ = self.warm_start.push(feats, elapsed_ms.max(1e-9).ln());
    }

    /// Number of warm-start rows currently held.
    pub fn baseline_rows(&self) -> usize {
        self.warm_start.len()
    }

    fn features(&self, embedding: &[f64], point: &[f64]) -> Vec<f64> {
        let mut f = embedding.to_vec();
        f.extend(self.space.normalize(point));
        f
    }

    fn fit_gp(&self) -> Option<GaussianProcess> {
        let total = self.warm_start.len() + self.online.len();
        if total == 0 || (self.warm_start.is_empty() && self.online.len() < self.n_init) {
            return None;
        }
        let mut x = self.warm_start.x.clone();
        let mut y = self.warm_start.y.clone();
        for (emb, pt, elapsed) in &self.online {
            x.push(self.features(emb, pt));
            y.push(elapsed.max(1e-9).ln());
        }
        // Cap the training set to keep the O(n³) solve tractable online: keep the
        // most recent rows (online data is appended last, so it always survives).
        const MAX_ROWS: usize = 1200;
        if x.len() > MAX_ROWS {
            let cut = x.len() - MAX_ROWS;
            x.drain(..cut);
            y.drain(..cut);
        }
        let mut gp = GaussianProcess::default_bo();
        gp.fit(&x, &y).ok()?;
        Some(gp)
    }
}

impl Tuner for ContextualBO {
    fn suggest(&mut self, ctx: &TuningContext) -> Vec<f64> {
        self.last_embedding = ctx.embedding.clone();
        let Some(gp) = self.fit_gp() else {
            return self.space.random_point(&mut self.rng);
        };
        // Incumbent: best observed in this query's own history if any, else the
        // model's belief at the default point.
        let best = self
            .history
            .best_raw()
            .map(|o| o.elapsed_ms.ln())
            .unwrap_or_else(|| {
                gp.predict(&self.features(&ctx.embedding, &self.space.default_point()))
            });
        // Serial candidate draws (RNG stream untouched relative to the old
        // loop), parallel pure EI scoring, first-max selection — bit-identical
        // to the serial suggest for every RH_THREADS (DESIGN.md §7).
        let candidates: Vec<Vec<f64>> = (0..self.n_candidates)
            .map(|_| self.space.random_point(&mut self.rng))
            .collect();
        let scores = crate::batch::score_candidates(&candidates, |cand| {
            let post = gp.posterior(&self.features(&ctx.embedding, cand));
            expected_improvement(&post, best)
        });
        match crate::batch::argmax_first(&scores).and_then(|i| candidates.get(i)) {
            Some(cand) => cand.clone(),
            None => self.space.random_point(&mut self.rng),
        }
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        // suggest/observe run in lockstep, so the embedding captured at the latest
        // suggest() is the context this observation ran under.
        let emb = self.last_embedding.clone();
        self.online.push((emb, point.to_vec(), outcome.elapsed_ms));
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
    }

    fn name(&self) -> &'static str {
        "contextual-bo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(emb: Vec<f64>) -> TuningContext {
        TuningContext {
            embedding: emb,
            expected_data_size: 1.0,
            iteration: 0,
        }
    }

    #[test]
    fn random_until_enough_online_data_without_warmstart() {
        let mut t = ContextualBO::new(ConfigSpace::query_level(), 1);
        assert!(t.fit_gp().is_none());
        for _ in 0..5 {
            let p = t.suggest(&ctx(vec![1.0]));
            t.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(t.fit_gp().is_some());
    }

    #[test]
    fn warmstart_enables_modeling_from_iteration_zero() {
        let space = ConfigSpace::query_level();
        let mut t = ContextualBO::new(space.clone(), 1);
        let emb = vec![2.0, 3.0];
        for i in 0..20 {
            let p = space.random_point(&mut StdRng::seed_from_u64(i));
            t.add_baseline_row(&emb, &p, 100.0 + i as f64);
        }
        assert_eq!(t.baseline_rows(), 20);
        assert!(
            t.fit_gp().is_some(),
            "warm start should enable the GP at t=0"
        );
    }

    #[test]
    fn warmstart_transfers_knowledge() {
        // Baseline data says low shuffle partitions are terrible (high times for low
        // third knob). A warm-started CBO's first modeled suggestion should avoid
        // the bottom of that axis more often than random.
        let space = ConfigSpace::query_level();
        let emb = vec![1.0];
        let mut avoided = 0;
        for seed in 0..10 {
            let mut t = ContextualBO::new(space.clone(), seed);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            for _ in 0..60 {
                let p = space.random_point(&mut rng);
                let x = space.dims[2].normalize(p[2]);
                // Steep penalty for small partition counts.
                let time = 100.0 + 900.0 * (1.0 - x);
                t.add_baseline_row(&emb, &p, time);
            }
            let p = t.suggest(&ctx(emb.clone()));
            if space.dims[2].normalize(p[2]) > 0.5 {
                avoided += 1;
            }
        }
        assert!(avoided >= 7, "only {avoided}/10 avoided the bad region");
    }

    #[test]
    fn mismatched_embedding_rows_are_ignored_not_fatal() {
        let mut t = ContextualBO::new(ConfigSpace::query_level(), 1);
        t.add_baseline_row(&[1.0, 2.0], &[1e6, 1e6, 100.0], 50.0);
        t.add_baseline_row(&[1.0], &[1e6, 1e6, 100.0], 50.0); // wrong dim — dropped
        assert_eq!(t.baseline_rows(), 1);
    }
}
