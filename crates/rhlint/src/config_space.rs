//! The config-space consistency check: the tuned Spark parameters must be
//! declared identically across the knob enum (`sparksim/src/config.rs`) and
//! the search space (`optimizers/src/space.rs`).
//!
//! Invariants enforced:
//!
//! 1. every `Knob` variant has a `spark_name` arm, and the property names are
//!    pairwise distinct;
//! 2. every variant has a `SparkConf::get` arm and a `SparkConf::set` arm;
//! 3. every `Knob::X` referenced by a `Dim` in `space.rs` is a declared variant;
//! 4. every knob in `QUERY_LEVEL` ∪ `APP_LEVEL` is covered by some search
//!    space dimension, and that tuned set has exactly the paper's 7 knobs;
//! 5. every backticked `spark.*` property mentioned in `SparkConf`'s field
//!    docs (the serde'd struct) is one of the declared `spark_name` values.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::{Diagnostic, LintError, Rule};

const CONFIG_RS: &str = "crates/sparksim/src/config.rs";
const SPACE_RS: &str = "crates/optimizers/src/space.rs";

/// The number of tuned knobs the paper's user study covers (§2.2).
const TUNED_KNOBS: usize = 7;

pub fn check_config_space(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let config_path = root.join(CONFIG_RS);
    let space_path = root.join(SPACE_RS);
    for path in [&config_path, &space_path] {
        if !path.exists() {
            return Err(LintError::MissingFile { path: path.clone() });
        }
    }
    let config_text = read(&config_path)?;
    let space_text = read(&space_path)?;
    Ok(check_sources(&config_text, &space_text))
}

/// Pure core, separated so tests can feed synthetic sources.
pub fn check_sources(config_text: &str, space_text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let config_lines: Vec<&str> = config_text.lines().collect();
    let space_lines: Vec<&str> = space_text.lines().collect();

    let variants = enum_variants(&config_lines, "pub enum Knob");
    let variant_set: BTreeSet<&String> = variants.iter().map(|(name, _)| name).collect();

    // 1. spark_name coverage + distinctness.
    let spark_names = spark_name_arms(&config_lines);
    for (variant, line) in &variants {
        if !spark_names.contains_key(variant) {
            diags.push(config_diag(
                *line,
                format!("Knob::{variant} has no spark_name() arm"),
            ));
        }
    }
    let mut by_name: BTreeMap<&str, Vec<&String>> = BTreeMap::new();
    for (variant, (name, _)) in &spark_names {
        by_name.entry(name.as_str()).or_default().push(variant);
    }
    for (name, owners) in &by_name {
        if owners.len() > 1 {
            let (_, line) = spark_names[owners[1]];
            diags.push(config_diag(
                line,
                format!(
                    "spark property `{name}` mapped by multiple knobs: {}",
                    owners
                        .iter()
                        .map(|v| format!("Knob::{v}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }

    // 2. get/set coverage.
    for fn_name in ["fn get", "fn set"] {
        let arms = knob_refs_in_region(&config_lines, fn_name);
        let covered: BTreeSet<&String> = arms.iter().map(|(v, _)| v).collect();
        for (variant, line) in &variants {
            if !covered.contains(variant) {
                diags.push(config_diag(
                    *line,
                    format!("Knob::{variant} not handled in SparkConf::{}", &fn_name[3..]),
                ));
            }
        }
    }

    // 3 + 4. space.rs dimensions reference declared variants and cover the
    // tuned set.
    let mut dim_knobs: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in space_lines.iter().enumerate() {
        if let Some(pos) = line.find("knob: Knob::") {
            let variant = ident_after(&line[pos + "knob: Knob::".len()..]);
            if !variant.is_empty() {
                if !variant_set.contains(&variant) {
                    diags.push(Diagnostic {
                        file: PathBuf::from(SPACE_RS),
                        line: idx + 1,
                        rule: Rule::ConfigSpace,
                        message: format!(
                            "dimension references Knob::{variant}, not a declared Knob variant"
                        ),
                    });
                }
                dim_knobs.insert(variant);
            }
        }
    }
    let mut tuned: BTreeSet<String> = BTreeSet::new();
    for const_name in ["QUERY_LEVEL", "APP_LEVEL"] {
        for (variant, line) in knob_refs_in_region(&config_lines, const_name) {
            if !variant_set.contains(&variant) {
                diags.push(config_diag(
                    line,
                    format!("{const_name} lists Knob::{variant}, not a declared variant"),
                ));
            }
            tuned.insert(variant);
        }
    }
    if tuned.len() != TUNED_KNOBS {
        diags.push(config_diag(
            1,
            format!(
                "QUERY_LEVEL ∪ APP_LEVEL has {} knobs; the paper tunes {TUNED_KNOBS}",
                tuned.len()
            ),
        ));
    }
    for variant in &tuned {
        if !dim_knobs.contains(variant) {
            diags.push(Diagnostic {
                file: PathBuf::from(SPACE_RS),
                line: 1,
                rule: Rule::ConfigSpace,
                message: format!(
                    "tuned knob Knob::{variant} has no search-space dimension in space.rs"
                ),
            });
        }
    }

    // 5. SparkConf field docs name only declared spark properties.
    let declared_names: BTreeSet<&str> =
        spark_names.values().map(|(n, _)| n.as_str()).collect();
    for (name, line) in backticked_spark_props(&config_lines, "pub struct SparkConf") {
        if !declared_names.contains(name.as_str()) {
            diags.push(config_diag(
                line,
                format!("SparkConf doc names `{name}`, which is not a spark_name() value"),
            ));
        }
    }

    diags
}

fn config_diag(line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: PathBuf::from(CONFIG_RS),
        line,
        rule: Rule::ConfigSpace,
        message,
    }
}

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Leading identifier of `s`.
fn ident_after(s: &str) -> String {
    s.chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// `(start, end)` line range of the brace-delimited region whose header line
/// contains `marker`. Lines are 0-based; `end` is inclusive.
fn brace_region(lines: &[&str], marker: &str) -> Option<(usize, usize)> {
    let start = lines.iter().position(|l| l.contains(marker))?;
    let mut depth = 0i64;
    let mut seen = false;
    for (idx, line) in lines.iter().enumerate().skip(start) {
        // On the header line, count only after any `=`: a const's type
        // annotation (`[Knob; 3] = [`) would otherwise open and close the
        // region before its initializer starts.
        let line: &str = if idx == start {
            line.rfind('=').map(|p| &line[p..]).unwrap_or(line)
        } else {
            line
        };
        for c in line.chars() {
            match c {
                '{' | '[' => {
                    depth += 1;
                    seen = true;
                }
                '}' | ']' => {
                    depth -= 1;
                    if seen && depth == 0 {
                        return Some((start, idx));
                    }
                }
                _ => {}
            }
        }
    }
    Some((start, lines.len().saturating_sub(1)))
}

/// `(variant, 1-based line)` for each enum arm of the region headed by `marker`.
fn enum_variants(lines: &[&str], marker: &str) -> Vec<(String, usize)> {
    let Some((start, end)) = brace_region(lines, marker) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for idx in start + 1..=end {
        let t = lines[idx].trim();
        if t.starts_with("//") || t.starts_with('#') || t.is_empty() {
            continue;
        }
        let name = ident_after(t);
        if !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && (t[name.len()..].trim_start().starts_with(',') || t[name.len()..].trim().is_empty())
        {
            out.push((name, idx + 1));
        }
    }
    out
}

/// All `Knob::Ident` references inside the region headed by `marker`,
/// paired with their 1-based line.
fn knob_refs_in_region(lines: &[&str], marker: &str) -> Vec<(String, usize)> {
    let Some((start, end)) = brace_region(lines, marker) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for idx in start..=end {
        let mut rest = lines[idx];
        let mut consumed = 0;
        while let Some(pos) = rest.find("Knob::") {
            let after = &rest[pos + "Knob::".len()..];
            let name = ident_after(after);
            if !name.is_empty() {
                out.push((name.clone(), idx + 1));
            }
            consumed += pos + "Knob::".len() + name.len();
            rest = &lines[idx][consumed..];
        }
    }
    out
}

/// `variant -> (spark property, 1-based line)` from the `fn spark_name` body.
/// Arms may span lines (`Knob::X => {` / `"spark..."`), so the body is read as
/// an alternating token stream of `Knob::Ident` refs and string literals.
fn spark_name_arms(lines: &[&str]) -> BTreeMap<String, (String, usize)> {
    let mut map = BTreeMap::new();
    let Some((start, end)) = brace_region(lines, "fn spark_name") else {
        return map;
    };
    let mut pending: Option<(String, usize)> = None;
    for idx in start + 1..=end {
        let line = lines[idx];
        let mut rest = line;
        loop {
            let knob_pos = rest.find("Knob::");
            let str_pos = rest.find('"');
            match (knob_pos, str_pos) {
                (Some(k), s) if k < s.unwrap_or(usize::MAX) => {
                    let name = ident_after(&rest[k + "Knob::".len()..]);
                    pending = Some((name.clone(), idx + 1));
                    rest = &rest[k + "Knob::".len() + name.len()..];
                }
                (_, Some(s)) => {
                    let after = &rest[s + 1..];
                    let Some(close) = after.find('"') else { break };
                    if let Some((variant, at)) = pending.take() {
                        map.insert(variant, (after[..close].to_string(), at));
                    }
                    rest = &after[close + 1..];
                }
                _ => break,
            }
        }
    }
    map
}

/// Backticked `spark.*` property names in doc comments of the region headed
/// by `marker`, with their 1-based lines.
fn backticked_spark_props(lines: &[&str], marker: &str) -> Vec<(String, usize)> {
    let Some((start, end)) = brace_region(lines, marker) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for idx in start..=end {
        let line = lines[idx];
        if !line.trim_start().starts_with("///") {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("`spark.") {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            out.push((after[..close].to_string(), idx + 1));
            rest = &after[close + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::check_sources;

    const GOOD_CONFIG: &str = r#"
pub enum Knob {
    /// `spark.a.one`
    One,
    /// `spark.a.two`
    Two,
    Three,
    Four,
    Five,
    Six,
    Seven,
}

impl Knob {
    pub fn spark_name(self) -> &'static str {
        match self {
            Knob::One => "spark.a.one",
            Knob::Two => "spark.a.two",
            Knob::Three => "spark.a.three",
            Knob::Four => "spark.a.four",
            Knob::Five => "spark.a.five",
            Knob::Six => "spark.a.six",
            Knob::Seven => {
                "spark.a.seven"
            }
        }
    }

    pub const QUERY_LEVEL: [Knob; 3] = [Knob::One, Knob::Two, Knob::Three];
    pub const APP_LEVEL: [Knob; 4] = [Knob::Four, Knob::Five, Knob::Six, Knob::Seven];
}

pub struct SparkConf {
    /// `spark.a.one` in bytes.
    pub one: f64,
    /// `spark.a.two`.
    pub two: f64,
}

impl SparkConf {
    pub fn get(&self, knob: Knob) -> f64 {
        match knob {
            Knob::One => 0.0,
            Knob::Two => 0.0,
            Knob::Three => 0.0,
            Knob::Four => 0.0,
            Knob::Five => 0.0,
            Knob::Six => 0.0,
            Knob::Seven => 0.0,
        }
    }

    pub fn set(&mut self, knob: Knob, value: f64) {
        match knob {
            Knob::One => {}
            Knob::Two => {}
            Knob::Three => {}
            Knob::Four => {}
            Knob::Five => {}
            Knob::Six => {}
            Knob::Seven => {}
        }
    }
}
"#;

    const GOOD_SPACE: &str = r#"
impl ConfigSpace {
    pub fn query_level() -> ConfigSpace {
        ConfigSpace {
            dims: vec![
                Dim { knob: Knob::One, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Two, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Three, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
            ],
        }
    }
    pub fn app_level() -> ConfigSpace {
        ConfigSpace {
            dims: vec![
                Dim { knob: Knob::Four, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Five, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Six, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Seven, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
            ],
        }
    }
}
"#;

    #[test]
    fn consistent_sources_are_clean() {
        assert!(check_sources(GOOD_CONFIG, GOOD_SPACE).is_empty());
    }

    #[test]
    fn missing_spark_name_arm_is_flagged() {
        let config = GOOD_CONFIG.replace("Knob::Seven => {\n                \"spark.a.seven\"\n            }", "");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags.iter().any(|d| d.message.contains("no spark_name() arm")),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_spark_property_is_flagged() {
        let config = GOOD_CONFIG.replace("\"spark.a.two\",", "\"spark.a.one\",");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags.iter().any(|d| d.message.contains("multiple knobs")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_get_arm_is_flagged() {
        let config = GOOD_CONFIG.replace("            Knob::Seven => 0.0,\n", "");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("not handled in SparkConf::get")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_knob_in_space_is_flagged() {
        let space = GOOD_SPACE.replace("knob: Knob::Seven", "knob: Knob::Eight");
        let diags = check_sources(GOOD_CONFIG, &space);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("Knob::Eight, not a declared")),
            "{diags:?}"
        );
        // Seven is tuned but now has no dimension.
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("Knob::Seven has no search-space dimension")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_doc_property_is_flagged() {
        let config = GOOD_CONFIG.replace("/// `spark.a.one` in bytes.", "/// `spark.a.renamed` in bytes.");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`spark.a.renamed`")),
            "{diags:?}"
        );
    }

    #[test]
    fn tuned_set_must_have_seven_knobs() {
        let config = GOOD_CONFIG.replace(
            "pub const APP_LEVEL: [Knob; 4] = [Knob::Four, Knob::Five, Knob::Six, Knob::Seven];",
            "pub const APP_LEVEL: [Knob; 3] = [Knob::Four, Knob::Five, Knob::Six];",
        );
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags.iter().any(|d| d.message.contains("the paper tunes 7")),
            "{diags:?}"
        );
    }
}
