#![forbid(unsafe_code)]

//! `rhlint` — workspace-native static analysis for the Rockhopper reproduction.
//!
//! The Centroid Learning loop (paper Eq (8)) is only trustworthy in production
//! because every decision it makes is reproducible and auditable: a single
//! NaN-poisoned comparison, ambient-RNG call, or panic on the serving path
//! silently invalidates the convergence experiments (fig09–fig13) and the
//! guardrail's regression detection. `rhlint` is the compile-time half of that
//! safety rail: a dependency-free, line/token-level scanner over the workspace
//! sources enforcing four rule families:
//!
//! * **panic-freedom** — no `unwrap()`, `expect()`, `panic!`-style macros, or
//!   literal slice indexing in library code of the production crates.
//! * **determinism** — no wall-clock reads, ambient RNGs, or hash-ordered
//!   collections in the simulator and optimizer crates; randomness must flow
//!   through seeded `StdRng`s.
//! * **float-safety** — no `partial_cmp(..).unwrap()`, no float sorts via
//!   `partial_cmp`, no bare `f64::NAN` literals; comparisons go through
//!   `ml::stats::total_cmp_f64` and friends.
//! * **config-space** — the tuned Spark parameters must be declared
//!   consistently across `sparksim/src/config.rs` (knob enum, spark property
//!   names, `get`/`set` arms, serde'd `SparkConf` fields) and
//!   `optimizers/src/space.rs` (search dimensions).
//!
//! Diagnostics are `file:line`-addressed. A finding can be suppressed inline
//! with a justification:
//!
//! ```text
//! let v = known_nonempty[0]; // rhlint:allow(slice-index): guarded by the len check above
//! ```
//!
//! The suppression comment may sit on the flagged line or the line above it.
//! A suppression without a justification (no `: reason` after the rule list)
//! is itself a diagnostic — the audit trail is the point.
//!
//! Test code (`#[cfg(test)]` modules, `tests/`, `benches/`, `examples/`) and
//! the `experiments`/`workloads`/`bench` crates are exempt: panicking fast in
//! a test or a figure harness is fine; panicking in the serving path is not.

use std::fmt;
use std::path::{Path, PathBuf};

mod config_space;
mod mask;
mod rules;

pub use config_space::check_config_space;
pub use mask::MaskedSource;
pub use rules::scan_source;

/// Every rule rhlint can emit, addressable in `rhlint:allow(<id>)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` in library code (panic-freedom family).
    Unwrap,
    /// `.expect(...)` in library code (panic-freedom family).
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!` (panic-freedom).
    Panic,
    /// Literal integer slice/array indexing like `xs[0]` (panic-freedom).
    SliceIndex,
    /// `SystemTime::now` / `Instant::now` (determinism family).
    WallClock,
    /// `thread_rng` / `rand::rng()` / OS-entropy RNG construction (determinism).
    AmbientRng,
    /// `HashMap` / `HashSet` in deterministic crates (determinism): iteration
    /// order varies run-to-run; use `BTreeMap`/`BTreeSet`/`Vec` instead.
    HashIter,
    /// `partial_cmp(..).unwrap()` — NaN panics (float-safety family).
    PartialCmpUnwrap,
    /// Float sort/min/max via `partial_cmp` instead of `total_cmp` (float-safety).
    FloatSort,
    /// Bare `f64::NAN` / `f32::NAN` literal in library code (float-safety).
    NanLiteral,
    /// Cross-file Spark parameter declaration mismatch (config-space family).
    ConfigSpace,
    /// Malformed `rhlint:allow` — unknown rule id or missing justification.
    BadSuppression,
}

impl Rule {
    pub const ALL: [Rule; 12] = [
        Rule::Unwrap,
        Rule::Expect,
        Rule::Panic,
        Rule::SliceIndex,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::HashIter,
        Rule::PartialCmpUnwrap,
        Rule::FloatSort,
        Rule::NanLiteral,
        Rule::ConfigSpace,
        Rule::BadSuppression,
    ];

    /// Stable kebab-case id used in diagnostics and `rhlint:allow(...)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::Panic => "panic",
            Rule::SliceIndex => "slice-index",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashIter => "hash-iter",
            Rule::PartialCmpUnwrap => "partial-cmp-unwrap",
            Rule::FloatSort => "float-sort",
            Rule::NanLiteral => "nan-literal",
            Rule::ConfigSpace => "config-space",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// The rule family, for grouping in reports.
    pub fn family(self) -> &'static str {
        match self {
            Rule::Unwrap | Rule::Expect | Rule::Panic | Rule::SliceIndex => "panic-freedom",
            Rule::WallClock | Rule::AmbientRng | Rule::HashIter => "determinism",
            Rule::PartialCmpUnwrap | Rule::FloatSort | Rule::NanLiteral => "float-safety",
            Rule::ConfigSpace => "config-space",
            Rule::BadSuppression => "suppression",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

/// A single `file:line` finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file.display(),
            self.line,
            self.rule.family(),
            self.rule.id(),
            self.message
        )
    }
}

/// Engine errors (I/O and layout problems, not findings).
#[derive(Debug)]
pub enum LintError {
    Io { path: PathBuf, source: std::io::Error },
    MissingFile { path: PathBuf },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "rhlint: cannot read {}: {source}", path.display())
            }
            LintError::MissingFile { path } => {
                write!(f, "rhlint: expected file missing: {}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose library code must be panic-free and float-safe.
pub const PANIC_SCOPE: [&str; 6] = [
    "embedding",
    "ml",
    "optimizers",
    "pipeline",
    "rockhopper",
    "sparksim",
];

/// Crates where all randomness must be seeded and iteration deterministic.
pub const DETERMINISM_SCOPE: [&str; 3] = ["optimizers", "rockhopper", "sparksim"];

/// Scope membership for one scanned file, derived from its crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanScope {
    pub panic_freedom: bool,
    pub determinism: bool,
    pub float_safety: bool,
}

impl ScanScope {
    pub fn for_crate(crate_name: &str) -> ScanScope {
        ScanScope {
            panic_freedom: PANIC_SCOPE.contains(&crate_name),
            determinism: DETERMINISM_SCOPE.contains(&crate_name),
            // Float-safety rides with panic-freedom: same production crates.
            float_safety: PANIC_SCOPE.contains(&crate_name),
        }
    }
}

/// Run the full lint pass over a workspace checkout.
///
/// Scans `crates/<scoped>/src/**/*.rs` line rules, then the cross-file
/// config-space consistency check. Returns diagnostics sorted by
/// `(file, line, rule)`.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let mut diagnostics = Vec::new();

    for crate_name in PANIC_SCOPE
        .iter()
        .chain(DETERMINISM_SCOPE.iter())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let src = root.join("crates").join(crate_name).join("src");
        for file in rust_files_under(&src)? {
            let text = read(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            diagnostics.extend(scan_source(
                crate_name,
                &rel,
                &text,
                ScanScope::for_crate(crate_name),
            ));
        }
    }

    diagnostics.extend(check_config_space(root)?);

    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    Ok(diagnostics)
}

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// All `.rs` files under `dir`, recursively, in sorted order (deterministic
/// reports). `tests/`, `benches/`, `examples/` subtrees are skipped — those
/// are exempt by design.
fn rust_files_under(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current).map_err(|source| LintError::Io {
            path: current.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| LintError::Io {
                path: current.clone(),
                source,
            })?;
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !matches!(name, "tests" | "benches" | "examples") {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Render a report to a string (one diagnostic per line plus a summary).
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diagnostics.is_empty() {
        out.push_str("rhlint: clean — no violations\n");
    } else {
        let mut per_family: BTreeMap<&str, usize> = BTreeMap::new();
        for d in diagnostics {
            *per_family.entry(d.rule.family()).or_insert(0) += 1;
        }
        let breakdown: Vec<String> = per_family
            .iter()
            .map(|(family, n)| format!("{family}: {n}"))
            .collect();
        out.push_str(&format!(
            "rhlint: {} violation(s) ({})\n",
            diagnostics.len(),
            breakdown.join(", ")
        ));
    }
    out
}
