//! Fixture rockpool crate: a channel `recv` reached through a helper while
//! the queue lock is held. The blocking call sits one hop away from the
//! guard, so only the interprocedural summary can connect them.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

struct Worker {
    queue: Mutex<Vec<u64>>,
    feed: Receiver<u64>,
}

impl Worker {
    /// Blocks on the channel — fine on its own, no guard held here.
    fn next_item(&self) -> u64 {
        match self.feed.recv() {
            Ok(v) => v,
            Err(_) => 0,
        }
    }

    /// Holds the queue guard across the blocking helper call.
    fn drain_one(&self) {
        let q = self.queue.lock();
        let item = self.next_item();
    }

    /// Releases the guard before blocking — silent.
    fn drain_ok(&self) {
        let q = self.queue.lock();
        drop(q);
        let item = self.next_item();
    }
}
