//! Regenerates the `exp_coldstart_transfer` extension experiment (retrieval
//! transfer vs cold BO vs warm-started CBO over the cold-start request
//! window). Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_coldstart_transfer::run(scale).print();
}
