//! Property-based tests (proptest) over the core invariants of the workspace:
//! config-space roundtrips, noise monotonicity, plan-estimate sanity, simulator
//! determinism and signature stability.

use proptest::prelude::*;

use embedding::WorkloadEmbedder;
use optimizers::space::ConfigSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparksim::config::SparkConf;
use sparksim::noise::NoiseSpec;
use sparksim::plan::PlanNode;
use sparksim::simulator::Simulator;
use workloads::generator::{random_plan, PlanGenConfig};

proptest! {
    #[test]
    fn config_space_normalize_roundtrips(x0 in 0.0..1.0f64, x1 in 0.0..1.0f64, x2 in 0.0..1.0f64) {
        let space = ConfigSpace::query_level();
        let raw = space.denormalize(&[x0, x1, x2]);
        let back = space.normalize(&raw);
        for (a, b) in [x0, x1, x2].iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn config_space_points_always_produce_valid_confs(
        x0 in -0.5..1.5f64, x1 in -0.5..1.5f64, x2 in -0.5..1.5f64,
    ) {
        // Even out-of-cube normalized coordinates must clamp into a valid SparkConf.
        let space = ConfigSpace::query_level();
        let raw = space.denormalize(&[x0, x1, x2]);
        let conf = space.to_conf(&raw);
        prop_assert!(conf.validate().is_ok());
    }

    #[test]
    fn noise_never_speeds_runs_up(g0 in 1.0..1e6f64, fl in 0.0..2.0f64, sl in 0.0..2.0f64, seed: u64) {
        let spec = NoiseSpec { fluctuation: fl, spike: sl };
        let mut rng = StdRng::seed_from_u64(seed);
        let g = spec.apply(g0, &mut rng);
        prop_assert!(g >= g0);
        prop_assert!(g.is_finite());
    }

    #[test]
    fn generated_plans_have_sane_estimates(seed in 0u64..500) {
        let plan = random_plan(&PlanGenConfig::default(), seed);
        prop_assert!(plan.est_rows >= 0.0);
        prop_assert!(plan.est_bytes >= 0.0);
        prop_assert!(plan.leaf_input_rows() > 0.0);
        prop_assert!(plan.node_count() >= 2);
    }

    #[test]
    fn simulator_is_deterministic_per_seed(plan_seed in 0u64..200, noise_seed: u64) {
        let plan = random_plan(&PlanGenConfig::default(), plan_seed);
        let sim = Simulator::default_pool(NoiseSpec::high());
        let conf = SparkConf::default();
        let a = sim.execute(&plan, &conf, noise_seed);
        let b = sim.execute(&plan, &conf, noise_seed);
        prop_assert_eq!(a.metrics.elapsed_ms, b.metrics.elapsed_ms);
        prop_assert!(a.metrics.true_ms > 0.0 && a.metrics.true_ms.is_finite());
        prop_assert!(a.metrics.elapsed_ms >= a.metrics.true_ms);
    }

    #[test]
    fn signatures_survive_data_scaling(seed in 0u64..200, factor in 0.1..100.0f64) {
        let plan = random_plan(&PlanGenConfig::default(), seed);
        let sig = embedding::query_signature(&plan);
        prop_assert_eq!(sig, embedding::query_signature(&plan.scaled(factor)));
    }

    #[test]
    fn embeddings_have_stable_dimension(seed in 0u64..200) {
        let plan = random_plan(&PlanGenConfig::default(), seed);
        for e in [WorkloadEmbedder::plain(), WorkloadEmbedder::virtual_ops()] {
            let v = e.embed(&plan);
            prop_assert_eq!(v.len(), e.dim());
            prop_assert!(v.iter().all(|x| x.is_finite()));
            // Counts block sums to node count.
            let total: f64 = v[2..].iter().sum();
            prop_assert_eq!(total, plan.node_count() as f64);
        }
    }

    #[test]
    fn scan_partitioning_respects_max_partition_bytes(
        rows in 1e3..1e9f64, mpb_mib in 1.0..2048.0f64,
    ) {
        let plan = PlanNode::scan("t", rows, 100.0);
        let mut conf = SparkConf::default();
        conf.max_partition_bytes = mpb_mib * 1024.0 * 1024.0;
        let phys = sparksim::physical::plan_physical(&plan, &conf);
        let expected = ((rows * 100.0) / conf.max_partition_bytes).ceil().max(1.0) as usize;
        prop_assert_eq!(phys.stages[0].tasks, expected.min(100_000));
    }

    #[test]
    fn more_noise_does_not_reduce_expected_time(g0 in 10.0..1e4f64, seed in 0u64..100) {
        // Average of 200 draws under high noise must exceed the average under none.
        let mut rng = StdRng::seed_from_u64(seed);
        let hi: f64 = (0..200).map(|_| NoiseSpec::high().apply(g0, &mut rng)).sum::<f64>() / 200.0;
        prop_assert!(hi > g0);
    }

    #[test]
    fn history_window_is_suffix(n in 0usize..50, w in 0usize..60) {
        let mut h = optimizers::tuner::History::new();
        for i in 0..n {
            h.push(vec![i as f64], 1.0, i as f64);
        }
        let win = h.window(w);
        prop_assert_eq!(win.len(), w.min(n));
        if let (Some(first), true) = (win.first(), n > 0) {
            prop_assert_eq!(first.elapsed_ms, (n - win.len()) as f64);
        }
    }
}
