//! Durable learned state for the Autotune Backend.
//!
//! Every state-mutating backend request is encoded as a [`WalEvent`] and
//! appended to a `rockdur` write-ahead log *before* it is applied
//! (append-before-apply). Because the backend thread serializes all
//! mutations, the WAL records the exact operation order, and replaying it
//! over the last compacted snapshot reproduces the backend bit-identically:
//! tuner RNG streams are checkpointed raw (`TunerState::rng_state`), so a
//! recovered tuner continues the *same* random sequence instead of
//! restarting it from the seed.
//!
//! Corruption is data, not an error: torn tails, bit flips and
//! foreign-version snapshots are quarantined by `rockdur` and surfaced here
//! through [`RecoveryReport`] and the dashboard's
//! `wal_records_quarantined` counter — recovery never panics and never
//! silently drops a *committed* prefix.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use optimizers::tuner::TuningContext;
use rockdur::{Recovery, Wal};
use rockhopper::applevel::AppCache;
use rockhopper::tuner::TunerState;
use rockindex::Provenance;

use crate::monitor::Dashboard;

/// Default number of WAL records between compacted snapshots.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// One state-mutating backend operation, as logged to the WAL.
///
/// The set is closed over exactly the operations that can change learned
/// state: suggestions (they advance tuner RNG streams and iteration
/// counters), report ingest (both the typed and the JSONL path log the
/// canonical JSONL form), and app-cache recomputation. Read-only requests
/// are never logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum WalEvent {
    /// A suggestion was issued for `(user, signature)` under `ctx`.
    Suggest {
        /// Tenant that asked.
        user: String,
        /// Query signature.
        signature: u64,
        /// Compile-time context the tuner saw.
        ctx: TuningContext,
    },
    /// An event-log document was ingested.
    IngestJsonl {
        /// Tenant that reported.
        user: String,
        /// Application the document belongs to.
        app_id: String,
        /// The JSONL document, verbatim.
        doc: String,
    },
    /// An app-cache recomputation was requested for one artifact.
    UpdateAppCache {
        /// Tenant that asked.
        user: String,
        /// Artifact whose cache entry is recomputed.
        artifact_id: String,
        /// Signatures participating in the joint optimization.
        signatures: Vec<u64>,
        /// Expected parallelism hint.
        expected_p: f64,
    },
}

/// One tuner's checkpoint inside a [`BackendSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TunerEntry {
    /// Tenant.
    pub(crate) user: String,
    /// Query signature.
    pub(crate) signature: u64,
    /// Full tuner state, including raw RNG words.
    pub(crate) state: TunerState,
    /// LRU recency tick at snapshot time — restores the exact eviction order
    /// so a recovered bounded backend evicts the same keys its uninterrupted
    /// twin would.
    pub(crate) tick: u64,
}

/// One cached query embedding inside a [`BackendSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct EmbeddingEntry {
    /// Query signature.
    pub(crate) signature: u64,
    /// The embedding vector last seen for it.
    pub(crate) embedding: Vec<f64>,
}

/// One served suggestion inside a [`BackendSnapshot`]'s memo.
///
/// The WAL's `Suggest` records replay to bit-identical points, but records
/// *compacted into a snapshot* are pruned — so the snapshot itself must
/// carry what was served, or a restarted serving layer would re-evaluate
/// those keys on tuners that have already advanced past them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ServedEntry {
    /// Tenant.
    pub(crate) user: String,
    /// Query signature.
    pub(crate) signature: u64,
    /// The exact tuning context the suggestion was computed under.
    pub(crate) ctx: TuningContext,
    /// The configuration that was served.
    pub(crate) point: Vec<f64>,
    /// Whether the point came from the retrieval corpus or the tuner.
    /// Pre-retrieval snapshots have no field here and decode as `Explored`.
    pub(crate) provenance: Provenance,
}

/// One degradation-tracking entry inside a [`BackendSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DegradedEntry {
    /// Tenant.
    pub(crate) user: String,
    /// Query signature.
    pub(crate) signature: u64,
    /// Whether the tuner is currently degraded to the default config.
    pub(crate) degraded: bool,
    /// Suggests served while degraded (probe cadence counter).
    pub(crate) suggests_while_degraded: u32,
}

/// A compacted, self-contained image of the backend's learned state.
///
/// Hash-map contents are encoded as vectors sorted by key so the same
/// logical state always produces the same bytes — snapshots taken by two
/// deterministic replicas are comparable byte-for-byte. Configuration that
/// the operator passes at construction time (baseline model, degradation
/// policy) is deliberately *not* included: a snapshot restores what was
/// learned, not how the process was launched.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct BackendSnapshot {
    /// The backend seed; adopted on recovery so new tuners derive the same
    /// per-signature streams as before the crash.
    pub(crate) seed: u64,
    /// Which shard of `shard_count` wrote this snapshot. A recovering shard
    /// refuses (quarantines) a snapshot from a different shard lineage —
    /// restarting with a changed `--shards` on the same directory must fail
    /// closed into a fresh shard, never adopt misrouted state.
    pub(crate) shard_id: u64,
    /// The shard layout width the writer ran under.
    pub(crate) shard_count: u64,
    /// Transient-storage retries observed so far.
    pub(crate) ingest_retries: u64,
    /// Per-`(user, signature)` tuner checkpoints, sorted by key.
    pub(crate) tuners: Vec<TunerEntry>,
    /// Per-signature embeddings, sorted by signature.
    pub(crate) embeddings: Vec<EmbeddingEntry>,
    /// Per-`(user, signature)` degradation trackers, sorted by key.
    pub(crate) degraded: Vec<DegradedEntry>,
    /// Live served suggestions (not yet invalidated by a report), sorted by
    /// `(user, signature, ctx)` — the serving layer rebuilds its coalescing
    /// cache from these plus the replayed tail.
    pub(crate) served: Vec<ServedEntry>,
    /// The app-level configuration cache (already a sorted map).
    pub(crate) app_cache: AppCache,
    /// Monitoring state, counters included.
    pub(crate) dashboard: Dashboard,
}

/// One replayed operation, in WAL order — the serving layer uses this to
/// rebuild its coalescing cache exactly as the request stream left it.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayedOp {
    /// A suggestion was replayed; `point` is the (bit-identical) re-derived
    /// configuration.
    Suggest {
        /// Tenant.
        user: String,
        /// Query signature.
        signature: u64,
        /// Context the suggestion was computed under.
        ctx: TuningContext,
        /// The configuration the replayed tuner produced.
        point: Vec<f64>,
        /// Whether the point was transferred from the retrieval corpus or
        /// explored by the tuner — replayed so a rebuilt coalescing cache
        /// answers with the same provenance tag the live server did.
        provenance: Provenance,
    },
    /// A report was replayed; any cached suggestion for these signatures is
    /// stale, exactly as it would have been invalidated live.
    Invalidate {
        /// Tenant.
        user: String,
        /// Signatures the report mentioned (sorted, deduplicated).
        signatures: Vec<u64>,
    },
}

/// What a [`crate::AutotuneBackend::recover_from`] call found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// WAL records replayed into the backend.
    pub replayed: u64,
    /// Corrupt artifacts quarantined: torn/flipped WAL suffixes, orphaned
    /// segments, unreadable or foreign-version snapshots, and records whose
    /// checksum passed but whose event encoding did not parse.
    pub quarantined: u64,
    /// Bytes set aside by quarantine.
    pub quarantined_bytes: u64,
    /// Whether a usable compacted snapshot was restored.
    pub restored_snapshot: bool,
    /// Replayed operations in WAL order, for serving-layer cache rebuild.
    pub ops: Vec<ReplayedOp>,
}

/// Subdirectory of the WAL directory holding evicted-tuner sidecars.
const SIDE_DIR: &str = "side";

/// One evicted tuner's durable checkpoint — written when the bounded state
/// map spills it, read back on the signature's next touch. The embedded key
/// is verified on read so a hash collision degrades to a fresh tuner, never
/// to adopting another signature's state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EvictedSidecar {
    /// Tenant.
    user: String,
    /// Query signature.
    signature: u64,
    /// WAL sequence of the operation whose application caused the eviction.
    seq: u64,
    /// Full tuner state, including raw RNG words.
    state: TunerState,
}

/// Stable hash of an eviction key for sidecar file names. Chained through
/// `rockpool::split_seed` so the name is a pure function of `(user,
/// signature)` across processes and shard widths.
fn sidecar_key_hash(user: &str, signature: u64) -> u64 {
    let mut h = rockpool::split_seed(0x51DE_CA4E, signature);
    for b in user.bytes() {
        h = rockpool::split_seed(h, u64::from(b));
    }
    h
}

/// Parse `"{key:016x}-{seq:016x}.json"` back into `(key_hash, seq)`.
fn parse_sidecar_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_suffix(".json")?;
    let (key, seq) = stem.split_once('-')?;
    if key.len() != 16 || seq.len() != 16 {
        return None;
    }
    Some((
        u64::from_str_radix(key, 16).ok()?,
        u64::from_str_radix(seq, 16).ok()?,
    ))
}

/// The backend's handle on its durable state: a `rockdur` WAL plus the
/// snapshot cadence and the replay guard.
#[derive(Debug)]
pub(crate) struct Durability {
    wal: Wal,
    /// The WAL directory — sidecars live in its [`SIDE_DIR`] subdirectory.
    dir: PathBuf,
    snapshot_every: u64,
    records_since_snapshot: u64,
    /// While `true`, [`crate::AutotuneBackend`] mutators skip logging —
    /// replayed operations must not be re-appended.
    pub(crate) replaying: bool,
    /// While replaying, the sequence number of the record being re-applied.
    /// Sidecar writes are tagged with it and sidecar reads are bounded by it,
    /// so replay sees exactly the sidecar versions the live run saw — never
    /// a version from the (possibly lost) future of the pre-crash timeline.
    pub(crate) replay_seq: Option<u64>,
}

impl Durability {
    /// Open (or create) the WAL under `dir` and return it with whatever
    /// state survived on disk. The caller decides whether to replay the
    /// recovery or treat its own in-memory state as authoritative.
    /// Sidecars tagged at or beyond the recovered `next_seq` belong to a
    /// torn-off suffix of the previous timeline and are deleted here.
    pub(crate) fn open(dir: &Path, snapshot_every: u64) -> io::Result<(Durability, Recovery)> {
        let (wal, recovery) = Wal::open(dir)?;
        let d = Durability {
            wal,
            dir: dir.to_path_buf(),
            snapshot_every: snapshot_every.max(1),
            records_since_snapshot: 0,
            replaying: false,
            replay_seq: None,
        };
        d.prune_sidecars(|seq| seq >= recovery.next_seq);
        Ok((d, recovery))
    }

    /// Append one event. Returns its sequence number.
    pub(crate) fn append_event(&mut self, event: &WalEvent) -> io::Result<u64> {
        let bytes = serde_json::to_vec(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let seq = self.wal.append(&bytes)?;
        self.records_since_snapshot = self.records_since_snapshot.saturating_add(1);
        Ok(seq)
    }

    /// Whether enough records accumulated since the last snapshot.
    pub(crate) fn snapshot_due(&self) -> bool {
        self.records_since_snapshot >= self.snapshot_every
    }

    /// Write a compacted snapshot and prune the log behind it. Sidecar
    /// versions superseded below the snapshot (an older checkpoint of a key
    /// that has a newer one at or below the snapshot seq) can never be read
    /// again — replay always starts at or after this snapshot — and are
    /// garbage-collected here, bounding sidecar files to one per evicted key
    /// plus the evictions since the last snapshot.
    pub(crate) fn write_snapshot(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.wal.snapshot(payload)?;
        self.records_since_snapshot = 0;
        for (key, best_seq) in self.newest_sidecar_below(seq) {
            self.prune_sidecars_for_key(key, best_seq, seq);
        }
        Ok(seq)
    }

    /// Force-sync buffered appends to disk. This is the *only* flush the
    /// drain path performs — deliberately not a snapshot, so crash tests
    /// exercise real log replay rather than a trivial snapshot load.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The sequence number of the most recently appended record (the one
    /// currently being applied, under append-before-apply).
    fn applying_seq(&self) -> u64 {
        self.replay_seq
            .unwrap_or_else(|| self.wal.next_seq().saturating_sub(1))
    }

    /// Spill one evicted tuner's checkpoint, tagged with the sequence of the
    /// operation that caused the eviction (tmp + rename, so a crashed write
    /// leaves the previous version or nothing — never a torn file).
    pub(crate) fn write_evicted(
        &mut self,
        user: &str,
        signature: u64,
        state: &TunerState,
    ) -> io::Result<()> {
        let seq = self.applying_seq();
        let side = self.dir.join(SIDE_DIR);
        std::fs::create_dir_all(&side)?;
        let entry = EvictedSidecar {
            user: user.to_string(),
            signature,
            seq,
            state: state.clone(),
        };
        let bytes = serde_json::to_vec(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let name = format!("{:016x}-{seq:016x}.json", sidecar_key_hash(user, signature));
        let tmp = side.join(format!(".tmp-{name}"));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, side.join(name))
    }

    /// The newest sidecar checkpoint for `(user, signature)` visible at the
    /// current point in (replayed or live) time. Files are selected by the
    /// name's key hash and verified against the embedded key; anything
    /// unreadable degrades to `None` (a fresh tuner), never an error.
    pub(crate) fn read_evicted(&self, user: &str, signature: u64) -> Option<TunerState> {
        let bound = self.replay_seq.unwrap_or(u64::MAX);
        let key = sidecar_key_hash(user, signature);
        let entries = std::fs::read_dir(self.dir.join(SIDE_DIR)).ok()?;
        let mut best: Option<(u64, PathBuf)> = None;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some((file_key, seq)) = name.to_str().and_then(parse_sidecar_name) else {
                continue;
            };
            if file_key != key || seq > bound {
                continue;
            }
            if best.as_ref().map_or(true, |(b, _)| seq > *b) {
                best = Some((seq, entry.path()));
            }
        }
        let (_, path) = best?;
        let bytes = std::fs::read(path).ok()?;
        let entry: EvictedSidecar = serde_json::from_slice(&bytes).ok()?;
        (entry.user == user && entry.signature == signature).then_some(entry.state)
    }

    /// Delete every sidecar — the fresh-authority (`persist_to`) and
    /// abandoned-timeline paths, where on-disk checkpoints no longer describe
    /// any state this backend will replay.
    pub(crate) fn clear_sidecars(&self) {
        self.prune_sidecars(|_| true);
    }

    /// Delete sidecars whose seq tag matches `doomed`. Best-effort: sidecar
    /// GC failures degrade to disk usage, never to an error.
    fn prune_sidecars(&self, doomed: impl Fn(u64) -> bool) {
        let Ok(entries) = std::fs::read_dir(self.dir.join(SIDE_DIR)) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(text) = name.to_str() else { continue };
            let stale_tmp = text.starts_with(".tmp-");
            let doomed_tag = parse_sidecar_name(text).is_some_and(|(_, seq)| doomed(seq));
            if stale_tmp || doomed_tag {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Per key hash, the newest sidecar seq at or below `snapshot_seq`.
    fn newest_sidecar_below(&self, snapshot_seq: u64) -> Vec<(u64, u64)> {
        let mut newest: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let Ok(entries) = std::fs::read_dir(self.dir.join(SIDE_DIR)) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some((key, seq)) = name.to_str().and_then(parse_sidecar_name) else {
                continue;
            };
            if seq <= snapshot_seq {
                let best = newest.entry(key).or_insert(seq);
                *best = (*best).max(seq);
            }
        }
        newest.into_iter().collect()
    }

    /// Drop `key`'s sidecar versions below `keep_seq` (superseded) — all of
    /// them sit at or below `snapshot_seq`, where replay can no longer start.
    fn prune_sidecars_for_key(&self, key: u64, keep_seq: u64, snapshot_seq: u64) {
        let Ok(entries) = std::fs::read_dir(self.dir.join(SIDE_DIR)) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some((file_key, seq)) = name.to_str().and_then(parse_sidecar_name) else {
                continue;
            };
            if file_key == key && seq < keep_seq && seq <= snapshot_seq {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Extract the sorted, deduplicated query signatures a report's events
/// mention. Both the serving layer's live invalidation and the replayed
/// [`ReplayedOp::Invalidate`] use this one definition, so a recovered
/// coalescing cache drops exactly the entries the live server would have.
pub fn report_signatures(events: &[sparksim::event::SparkEvent]) -> Vec<u64> {
    use sparksim::event::SparkEvent;
    let mut sigs: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            SparkEvent::QueryStart {
                query_signature, ..
            }
            | SparkEvent::QueryEnd {
                query_signature, ..
            }
            | SparkEvent::StageCompleted {
                query_signature, ..
            } => Some(*query_signature),
            SparkEvent::ApplicationStart { .. } | SparkEvent::ApplicationEnd { .. } => None,
        })
        .collect();
    sigs.sort_unstable();
    sigs.dedup();
    sigs
}
