//! The paper's synthetic optimization function (§6.1, Figure 8).
//!
//! "We design a synthetic optimization function that models the relationship between
//! observed performance, data size, and three tunable configurations as a convex
//! function." Observations are then corrupted with Eq (8) noise.
//!
//! The function here is a separable convex bowl in *normalized log-knob space*:
//!
//! ```text
//! g0(c, p) = scale · p · (1 + Σᵢ wᵢ · (xᵢ(cᵢ) − x*ᵢ)²)
//! ```
//!
//! where `xᵢ` maps knob `i` into `[0, 1]` on a log scale. Execution time is linear in
//! data size `p` and convex in each knob, exactly the regime the Centroid Learning
//! algorithm assumes locally.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use sparksim::noise::NoiseSpec;

/// Bounds of one knob, log-normalized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobRange {
    /// Lower bound (> 0; values are log-scaled).
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl KnobRange {
    /// Map a raw knob value into `[0, 1]` on a log scale.
    pub fn normalize(&self, v: f64) -> f64 {
        let v = v.clamp(self.lo, self.hi);
        (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
    }

    /// Map a normalized position back to a raw value.
    pub fn denormalize(&self, x: f64) -> f64 {
        (self.lo.ln() + x.clamp(0.0, 1.0) * (self.hi.ln() - self.lo.ln())).exp()
    }
}

/// The three-knob convex function of §6.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticFunction {
    /// Knob ranges (3 entries: the three query-level knobs).
    pub ranges: [KnobRange; 3],
    /// Optimal position of each knob in normalized space.
    pub optimum: [f64; 3],
    /// Curvature weight per knob.
    pub weights: [f64; 3],
    /// Base time scale, ms (the paper's plots sit around 1–3 × 10⁴).
    pub scale: f64,
    /// Exponent on the data size: time ∝ `p^data_exponent`. `1.0` is the paper's
    /// linear default; sub-linear values (< 1) model the economies of scale the
    /// paper observed — "for the same configuration, the ratio r/p often decreases
    /// as p increases" — which is what breaks FIND_BEST v2 and motivates v3.
    pub data_exponent: f64,
}

impl SyntheticFunction {
    /// The function used throughout the experiments: optima off-center so the default
    /// configuration starts suboptimal, and the three knobs matter unevenly (matching
    /// the paper's observation that `maxPartitionBytes` is "the most impactful").
    pub fn paper_default() -> SyntheticFunction {
        SyntheticFunction {
            ranges: [
                // maxPartitionBytes: 1 MiB .. 2 GiB
                KnobRange {
                    lo: 1024.0 * 1024.0,
                    hi: 2048.0 * 1024.0 * 1024.0,
                },
                // autoBroadcastJoinThreshold: 1 MiB .. 1 GiB
                KnobRange {
                    lo: 1024.0 * 1024.0,
                    hi: 1024.0 * 1024.0 * 1024.0,
                },
                // shuffle.partitions: 8 .. 4096
                KnobRange {
                    lo: 8.0,
                    hi: 4096.0,
                },
            ],
            optimum: [0.30, 0.65, 0.45],
            weights: [3.0, 1.2, 2.0],
            scale: 10_000.0,
            data_exponent: 1.0,
        }
    }

    /// Variant with sub-linear data-size scaling (`p^exponent`), modeling the fixed
    /// overheads that amortize on larger inputs.
    pub fn with_data_exponent(mut self, exponent: f64) -> SyntheticFunction {
        self.data_exponent = exponent.max(0.05);
        self
    }

    /// True (noise-free) execution time for raw knob values `c` and data size `p`.
    pub fn true_time(&self, c: &[f64; 3], p: f64) -> f64 {
        let mut penalty = 0.0;
        for ((range, &value), (opt, w)) in self
            .ranges
            .iter()
            .zip(c)
            .zip(self.optimum.iter().zip(&self.weights))
        {
            let d = range.normalize(value) - opt;
            penalty += w * d * d;
        }
        self.scale * p.max(0.0).powf(self.data_exponent) * (1.0 + penalty)
    }

    /// Observed execution time under `noise`.
    pub fn observe(&self, c: &[f64; 3], p: f64, noise: &NoiseSpec, rng: &mut StdRng) -> f64 {
        noise.apply(self.true_time(c, p), rng)
    }

    /// The raw knob values at the optimum.
    pub fn optimal_config(&self) -> [f64; 3] {
        [
            self.ranges[0].denormalize(self.optimum[0]),
            self.ranges[1].denormalize(self.optimum[1]),
            self.ranges[2].denormalize(self.optimum[2]),
        ]
    }

    /// Minimum achievable true time at data size `p`.
    pub fn optimal_time(&self, p: f64) -> f64 {
        self.scale * p.max(0.0).powf(self.data_exponent)
    }

    /// Normalized regret of a configuration: `true_time / optimal_time`, ≥ 1.
    pub fn normed_performance(&self, c: &[f64; 3], p: f64) -> f64 {
        self.true_time(c, p) / self.optimal_time(p)
    }

    /// Absolute optimality gap of knob `i` (used by the paper's Figures 10b/11d for
    /// `maxPartitionBytes`): `|cᵢ − c*ᵢ|` in normalized log space.
    pub fn optimality_gap(&self, i: usize, value: f64) -> f64 {
        (self.ranges[i].normalize(value) - self.optimum[i]).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn optimum_achieves_minimal_time() {
        let f = SyntheticFunction::paper_default();
        let opt = f.optimal_config();
        let t_opt = f.true_time(&opt, 1.0);
        assert!((t_opt - f.optimal_time(1.0)).abs() < 1e-6);
        // Perturb each knob: time must increase.
        for i in 0..3 {
            let mut c = opt;
            c[i] *= 4.0;
            assert!(f.true_time(&c, 1.0) > t_opt, "knob {i}");
            let mut c = opt;
            c[i] /= 4.0;
            assert!(f.true_time(&c, 1.0) > t_opt, "knob {i}");
        }
    }

    #[test]
    fn time_is_linear_in_data_size() {
        let f = SyntheticFunction::paper_default();
        let c = f.optimal_config();
        assert!((f.true_time(&c, 10.0) / f.true_time(&c, 1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn convex_along_each_axis() {
        let f = SyntheticFunction::paper_default();
        // Midpoint of two points on an axis is never above their average (convexity
        // in normalized space; sample in that space to test it directly).
        for i in 0..3 {
            let mut a = f.optimal_config();
            let mut b = f.optimal_config();
            let mut m = f.optimal_config();
            a[i] = f.ranges[i].denormalize(0.1);
            b[i] = f.ranges[i].denormalize(0.9);
            m[i] = f.ranges[i].denormalize(0.5);
            let avg = 0.5 * (f.true_time(&a, 1.0) + f.true_time(&b, 1.0));
            assert!(f.true_time(&m, 1.0) <= avg + 1e-9, "axis {i}");
        }
    }

    #[test]
    fn normalize_roundtrips() {
        let r = KnobRange {
            lo: 8.0,
            hi: 4096.0,
        };
        for x in [0.0, 0.25, 0.5, 1.0] {
            assert!((r.normalize(r.denormalize(x)) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_range_values_clamp() {
        let r = KnobRange {
            lo: 8.0,
            hi: 4096.0,
        };
        assert_eq!(r.normalize(1.0), 0.0);
        assert_eq!(r.normalize(1e9), 1.0);
    }

    #[test]
    fn observed_time_is_at_least_true_time() {
        let f = SyntheticFunction::paper_default();
        let c = f.optimal_config();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let obs = f.observe(&c, 1.0, &NoiseSpec::high(), &mut rng);
            assert!(obs >= f.true_time(&c, 1.0));
        }
    }

    #[test]
    fn normed_performance_is_one_at_optimum() {
        let f = SyntheticFunction::paper_default();
        assert!((f.normed_performance(&f.optimal_config(), 3.7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sublinear_exponent_amortizes_large_inputs() {
        let f = SyntheticFunction::paper_default().with_data_exponent(0.6);
        let c = f.optimal_config();
        // r/p falls as p grows — the bias FIND_BEST v2 suffers from.
        let small_ratio = f.true_time(&c, 1.0) / 1.0;
        let large_ratio = f.true_time(&c, 10.0) / 10.0;
        assert!(large_ratio < small_ratio);
        // Normed performance is still 1.0 at the optimum.
        assert!((f.normed_performance(&c, 7.3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimality_gap_zero_at_optimum() {
        let f = SyntheticFunction::paper_default();
        let opt = f.optimal_config();
        for i in 0..3 {
            assert!(f.optimality_gap(i, opt[i]) < 1e-9);
        }
        assert!(f.optimality_gap(0, f.ranges[0].lo) > 0.2);
    }
}
