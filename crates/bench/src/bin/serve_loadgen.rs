//! `cargo run -p bench --bin serve_loadgen -- [--quick] [--seed N]
//! [--addr HOST:PORT] [--out PATH]`
//!
//! Drive a rockserve endpoint with a seeded open-loop fleet of concurrent
//! clients sending a mixed `Suggest`/`Report`/`Health`/`Metrics` schedule,
//! then write the `BENCH_serve.json` baseline. Without `--addr` the server is
//! spawned in-process on an ephemeral port and drain-shutdown is part of the
//! measurement; with `--addr` an already-running server is driven and left
//! running. Exits non-zero on any protocol error or an unclean drain.

use std::net::ToSocketAddrs;
use std::process::ExitCode;

use bench::serve::{self, ServeBenchConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 42u64;
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let Some(v) = args.next() else {
                    return usage("--seed needs an integer");
                };
                seed = v.parse().unwrap_or(42);
            }
            "--addr" => {
                let Some(v) = args.next() else {
                    return usage("--addr needs HOST:PORT");
                };
                addr = Some(v);
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage("--out needs a path");
                };
                out = Some(v);
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    let cfg = if quick {
        ServeBenchConfig::quick(seed)
    } else {
        ServeBenchConfig::full(seed)
    };

    let report = match &addr {
        Some(spec) => {
            let Some(resolved) = spec
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
            else {
                return usage(&format!("cannot resolve --addr {spec}"));
            };
            serve::run_serve_bench_against(resolved, &cfg)
        }
        None => serve::run_serve_bench(&cfg),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_loadgen: bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} lanes x {} frames = {} requests in {:.1}ms ({:.0} rps)",
        report.clients,
        cfg.requests_per_client,
        report.requests_total,
        report.wall_ms,
        report.throughput_rps
    );
    println!(
        "latency p50/p95/p99: {}/{}/{} us | batch_max {} | {} backend evals for {} suggests ({} coalesced)",
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.batch_max,
        report.backend_evals,
        report.sent.0,
        report.coalesced_hits
    );
    println!(
        "overloaded: {} | protocol errors: {} | clean drain: {} | fingerprint {:016x}",
        report.overloaded, report.protocol_errors, report.clean_drain, report.suggest_fingerprint
    );

    let path = out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(serve::serve_out_path);
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if report.protocol_errors > 0 {
        eprintln!(
            "FAIL: {} protocol error(s) under load",
            report.protocol_errors
        );
        return ExitCode::FAILURE;
    }
    if !report.clean_drain {
        eprintln!("FAIL: the server did not drain cleanly");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("serve_loadgen: {problem}");
    eprintln!("usage: serve_loadgen [--quick] [--seed N] [--addr HOST:PORT] [--out PATH]");
    ExitCode::from(2)
}
