//! Minimal dense linear algebra: a row-major matrix with the handful of operations the
//! estimators need (mat-mat/mat-vec products, transpose, Cholesky factorization and
//! triangular solves). Deliberately small — this is not a general-purpose BLAS.

use crate::MlError;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    // rhlint:allow(dead-pub): linear-algebra API completeness
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    // rhlint:allow(dead-pub): linear-algebra API completeness
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    /// Panics if `v.len() != ncols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Add `lambda` to every diagonal entry (in place). Used for ridge/jitter terms.
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Cholesky factorization of a symmetric positive-definite matrix: returns lower
    /// triangular `L` with `L·Lᵀ = self`.
    ///
    /// Returns [`MlError::Singular`] if the matrix is not (numerically) positive
    /// definite.
    pub fn cholesky(&self) -> Result<Matrix, MlError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-300 {
                        return Err(MlError::Singular);
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Solve `L·x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.nrows();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[(i, j)] * x[j];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solve `Lᵀ·x = b` for lower-triangular `L` (backward substitution).
pub fn solve_upper_from_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.nrows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= l[(j, i)] * x[j];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solve the symmetric positive-definite system `A·x = b` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MlError> {
    let l = a.cholesky()?;
    let y = solve_lower(&l, b);
    Ok(solve_upper_from_lower(&l, &y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(3);
        let v = vec![1.0, -2.0, 3.5];
        assert_eq!(i.matvec(&v), v);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        // A = Lt·Ltᵀ for a known lower-triangular Lt is SPD by construction.
        let lt = Matrix::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![0.5, 1.5, 0.0],
            vec![-1.0, 0.3, 1.0],
        ]);
        let a = lt.matmul(&lt.transpose());
        let l = a.cholesky().expect("SPD matrix must factor");
        let recon = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert_close(recon[(i, j)], a[(i, j)], 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(a.cholesky(), Err(MlError::Singular));
    }

    #[test]
    fn solve_spd_recovers_known_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert_close(x[0], 1.0, 1e-10);
        assert_close(x[1], -2.0, 1e-10);
    }

    #[test]
    fn triangular_solves_invert_each_other() {
        let l = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 3.0]]);
        let b = vec![4.0, 11.0];
        let y = solve_lower(&l, &b);
        // L·y should equal b
        assert_close(2.0 * y[0], 4.0, 1e-12);
        assert_close(y[0] + 3.0 * y[1], 11.0, 1e-12);
        let z = solve_upper_from_lower(&l, &b);
        // Lᵀ·z = b
        assert_close(2.0 * z[0] + 1.0 * z[1], 4.0, 1e-12);
        assert_close(3.0 * z[1], 11.0, 1e-12);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
