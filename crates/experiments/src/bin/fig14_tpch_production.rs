//! Regenerates the paper's `fig14_tpch_production` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig14_tpch_production::run(scale).print();
}
