//! Terminal plotting: render the convergence-band CSVs as ASCII charts so the
//! experiment binaries can show the paper's figures without leaving the terminal
//! (`run_all --plot`).

use ml::stats::Band;

/// Canvas cell glyphs, in paint order (later overwrites earlier).
const FILL: char = '░';
const MEDIAN: char = '━';

/// Render per-iteration bands as an ASCII chart: `░` shades the P5–P95 region and
/// `━` traces the median, with a y-axis in the data's units.
pub fn band_chart(title: &str, bands: &[Band], width: usize, height: usize) -> String {
    if bands.is_empty() || width < 8 || height < 2 {
        return format!("{title}: (no data)\n");
    }
    let width = width.min(bands.len().max(8));
    // Downsample columns: each column covers a slice of iterations.
    let cols: Vec<Band> = (0..width)
        .map(|c| {
            let lo = c * bands.len() / width;
            let hi = (((c + 1) * bands.len()) / width).max(lo + 1);
            let slice = &bands[lo..hi.min(bands.len())];
            Band {
                p5: slice.iter().map(|b| b.p5).fold(f64::INFINITY, f64::min),
                p50: slice.iter().map(|b| b.p50).sum::<f64>() / slice.len() as f64,
                p95: slice
                    .iter()
                    .map(|b| b.p95)
                    .fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect();

    let y_min = cols.iter().map(|b| b.p5).fold(f64::INFINITY, f64::min);
    let y_max = cols.iter().map(|b| b.p95).fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-12);
    let row_of = |v: f64| -> usize {
        let frac = ((v - y_min) / span).clamp(0.0, 1.0);
        // Row 0 is the top of the chart.
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };

    let mut grid = vec![vec![' '; width]; height];
    for (c, b) in cols.iter().enumerate() {
        let (top, bottom) = (row_of(b.p95), row_of(b.p5));
        for row in grid.iter_mut().take(bottom + 1).skip(top) {
            row[c] = FILL;
        }
        grid[row_of(b.p50)][c] = MEDIAN;
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:>10.3}")
        } else if r == height - 1 {
            format!("{y_min:>10.3}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push(' ');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10} iteration 0..{} ({} = median, {} = P5..P95)\n",
        "",
        bands.len(),
        MEDIAN,
        FILL
    ));
    out
}

/// Parse a `iteration,p5,p50,p95` CSV document (as written by the harness) into
/// bands. Malformed lines are skipped.
pub fn bands_from_csv(doc: &str) -> Vec<Band> {
    doc.lines()
        .skip(1)
        .filter_map(|line| {
            let v: Vec<f64> = line.split(',').filter_map(|t| t.parse().ok()).collect();
            (v.len() == 4).then(|| Band {
                p5: v[1],
                p50: v[2],
                p95: v[3],
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descending_bands(n: usize) -> Vec<Band> {
        (0..n)
            .map(|t| {
                let mid = 10.0 - 8.0 * t as f64 / (n - 1) as f64;
                Band {
                    p5: mid - 1.0,
                    p50: mid,
                    p95: mid + 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn chart_has_title_axis_and_median_marks() {
        let chart = band_chart("convergence", &descending_bands(50), 40, 10);
        assert!(chart.starts_with("convergence\n"));
        assert!(chart.contains(MEDIAN));
        assert!(chart.contains(FILL));
        assert!(chart.contains("11.000")); // y_max = 10 + 1
        assert!(chart.contains("1.000")); // y_min = 2 - 1
    }

    #[test]
    fn median_descends_left_to_right() {
        let chart = band_chart("t", &descending_bands(60), 30, 12);
        let rows: Vec<&str> = chart.lines().skip(1).take(12).collect();
        let col_of_median_in = |row: &str| row.find(MEDIAN);
        // The top rows' median marks appear left of the bottom rows' marks.
        let top_col = rows
            .iter()
            .find_map(|r| col_of_median_in(r))
            .expect("median drawn");
        let bottom_col = rows
            .iter()
            .rev()
            .find_map(|r| col_of_median_in(r))
            .expect("median drawn");
        assert!(top_col < bottom_col, "top {top_col} vs bottom {bottom_col}");
    }

    #[test]
    fn empty_and_tiny_inputs_degrade_gracefully() {
        assert!(band_chart("x", &[], 40, 10).contains("no data"));
        assert!(band_chart("x", &descending_bands(5), 2, 10).contains("no data"));
    }

    #[test]
    fn csv_roundtrip() {
        let bands = descending_bands(7);
        let rows = crate::harness::band_rows(&bands);
        let mut doc = String::from("iteration,p5,p50,p95\n");
        for r in rows {
            doc.push_str(
                &r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            doc.push('\n');
        }
        let back = bands_from_csv(&doc);
        assert_eq!(back.len(), 7);
        assert!((back[0].p50 - bands[0].p50).abs() < 1e-12);
    }

    #[test]
    fn csv_skips_garbage() {
        let back = bands_from_csv("h\n1,2,3\nnot,a,row,at,all\n0,1,2,3\n");
        assert_eq!(back.len(), 1);
    }
}
