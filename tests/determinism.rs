//! Runtime determinism gate: the same seed must reproduce the same
//! simulation, bit for bit. This is the dynamic counterpart of rhlint's
//! static determinism rules — if an unseeded RNG, wall-clock read, or
//! hash-ordered iteration ever sneaks past the static pass, the serialized
//! traces diverge here.

use sparksim::config::SparkConf;
use sparksim::fault::FaultSpec;
use sparksim::simulator::Simulator;
use workloads::notebook::{generate_population, PopulationConfig};

/// Run the whole population once: every query of every notebook executes
/// under the default configuration, and both the metrics and the serialized
/// event trace are captured.
fn run_once(seed: u64) -> Vec<String> {
    let population = generate_population(&PopulationConfig::default(), seed);
    let conf = SparkConf::default();
    let mut trace = Vec::new();
    for (nb_idx, notebook) in population.iter().enumerate() {
        for query in &notebook.queries {
            let sim = Simulator::default_pool(query.noise.clone());
            let run = sim.execute(&query.plan, &conf, seed ^ query.signature);
            trace.push(format!(
                "{nb_idx} {} {} {:.9} {:.9} {} {}",
                notebook.artifact_id,
                query.signature,
                run.metrics.elapsed_ms,
                run.metrics.true_ms,
                run.metrics.num_tasks,
                run.metrics.num_stages,
            ));
            let events = sim.events_for_run(
                "app-determinism",
                &notebook.artifact_id,
                query.signature,
                &query.plan,
                &conf,
                Vec::new(),
                &run,
            );
            for event in &events {
                trace.push(serde_json::to_string(event).expect("events serialize to JSON"));
            }
        }
    }
    trace
}

#[test]
fn same_seed_reproduces_identical_metrics_and_event_traces() {
    let first = run_once(0xB0BA_FE77);
    let second = run_once(0xB0BA_FE77);
    assert_eq!(first.len(), second.len(), "trace lengths diverged");
    for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
        assert_eq!(a, b, "trace line {i} diverged");
    }
}

/// The same property under injected faults: every fault decision is drawn
/// from the salted run-seed RNG, so the full outcome sequence — OOM kills,
/// executor-loss aborts, partial times, censored completions — replays
/// bit-for-bit.
fn run_once_faulty(seed: u64) -> Vec<String> {
    let population = generate_population(&PopulationConfig::default(), seed);
    let conf = SparkConf::default();
    let spec = FaultSpec::chaos();
    let mut trace = Vec::new();
    for notebook in &population {
        for query in &notebook.queries {
            let sim = Simulator::default_pool(query.noise.clone());
            let outcome = sim.execute_outcome(&query.plan, &conf, seed ^ query.signature, &spec);
            trace.push(serde_json::to_string(&outcome).expect("outcomes serialize to JSON"));
        }
    }
    trace
}

#[test]
fn same_seed_replays_the_same_fault_sequence() {
    let first = run_once_faulty(0xFA17_0001);
    let second = run_once_faulty(0xFA17_0001);
    assert_eq!(first, second, "fault sequences diverged across replays");
    // The chaos regime must actually produce non-Success outcomes, or the
    // equality above says nothing about fault determinism.
    assert!(
        first
            .iter()
            .any(|line| line.contains("Failed") || line.contains("Censored")),
        "chaos spec produced no faults across the population"
    );
}

#[test]
fn different_seeds_change_the_population() {
    // Sanity check that the trace actually depends on the seed (i.e. the
    // equality above is not vacuous).
    assert_ne!(run_once(1), run_once(2));
}

// ---------------------------------------------------------------------------
// Parallel ≡ serial (DESIGN.md §7): the pool-backed paths must produce
// bit-identical Histories, metrics, and serialized event traces for every
// RH_THREADS value, under every fault regime.
// ---------------------------------------------------------------------------

use optimizers::space::ConfigSpace;
use optimizers::tuner::{Outcome, Tuner, TuningContext};
use proptest::prelude::*;
use rockhopper::guardrail::Guardrail;
use rockhopper::RockhopperTuner;
use sparksim::fault::RunOutcome;
use sparksim::noise::NoiseSpec;
use workloads::generator::{random_plan, PlanGenConfig};

/// One seeded tuning run against the fault-injecting simulator, fully traced:
/// every suggested point, every run outcome (success metrics, failure reasons,
/// censored markers) as serialized JSON, every emitted event line, and the
/// final tuner snapshot (the serialized History). The tuner's candidate
/// scoring inside `suggest` fans out over rockpool — the path under test.
fn one_tuning_run(seed: u64, spec: &FaultSpec) -> Vec<String> {
    let plan = random_plan(&PlanGenConfig::default(), seed);
    let space = ConfigSpace::query_level();
    let mut tuner = RockhopperTuner::builder(space.clone())
        .seed(seed)
        .guardrail(Some(Guardrail::default().with_failure_patience(3)))
        .build();
    let sim = Simulator::default_pool(NoiseSpec::high());
    let mut trace = Vec::new();
    for i in 0..8u32 {
        let ctx = TuningContext {
            embedding: vec![0.3, 0.9],
            expected_data_size: 1.0,
            iteration: i,
        };
        let point = tuner.suggest(&ctx);
        trace.push(format!("{i} point {point:?}"));
        let conf = space.to_conf(&point);
        let run_seed = seed ^ ((i as u64) << 32);
        let outcome = sim.execute_outcome(&plan, &conf, run_seed, spec);
        trace.push(serde_json::to_string(&outcome).expect("outcomes serialize"));
        match &outcome {
            RunOutcome::Success(run) => {
                tuner.observe(&point, &Outcome::measured(run.metrics.elapsed_ms, 1.0));
                let events = sim.events_for_run(
                    "app-par",
                    "artifact-par",
                    7,
                    &plan,
                    &conf,
                    ctx.embedding.clone(),
                    run,
                );
                for event in &events {
                    trace.push(serde_json::to_string(event).expect("events serialize"));
                }
            }
            RunOutcome::Failed {
                partial_time_ms, ..
            } => tuner.observe(
                &point,
                &Outcome::censored(partial_time_ms.max(1.0) * 2.0, 1.0),
            ),
            RunOutcome::Censored => tuner.observe(&point, &Outcome::censored(1e6, 1.0)),
        }
    }
    // The full History, bit for bit, via the serialized tuner state.
    trace.push(serde_json::to_string(&tuner.snapshot()).expect("snapshot serializes"));
    trace
}

/// Fan several tuning runs out over the pool itself (the experiment-runner
/// shape): per-replication seeds come from `split_seed` on the stable
/// replication index, results are reduced in index order.
fn fanned_out_trace(seed: u64, spec: &FaultSpec) -> Vec<String> {
    let reps = rockpool::Pool::from_env().run(3, |rep| {
        one_tuning_run(rockpool::split_seed(seed, rep as u64), spec)
    });
    reps.into_iter().flatten().collect()
}

fn regime(index: usize) -> FaultSpec {
    match index {
        0 => FaultSpec::none(),
        1 => FaultSpec::production(),
        _ => FaultSpec::chaos(),
    }
}

proptest! {
    // Each case runs the full trace four times (1/2/4/8 threads); keep the
    // case count small enough for the tier-1 budget while still sweeping
    // seeds and all three fault regimes.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn parallel_is_bit_identical_to_serial(seed in 0u64..1_000_000, regime_idx in 0usize..3) {
        let spec = regime(regime_idx);
        std::env::set_var(rockpool::THREADS_ENV, "1");
        let serial = fanned_out_trace(seed, &spec);
        for threads in [2usize, 4, 8] {
            std::env::set_var(rockpool::THREADS_ENV, threads.to_string());
            let parallel = fanned_out_trace(seed, &spec);
            std::env::remove_var(rockpool::THREADS_ENV);
            prop_assert_eq!(
                &serial, &parallel,
                "trace diverged at RH_THREADS={} under regime {}", threads, regime_idx
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Served-suggestion determinism across shard counts and thread widths
// (DESIGN.md §11): the serving fingerprint is a pure function of the seed
// and the request schedule — not of how the backend is sharded or how many
// worker threads serve it. Shard seeds derive from `(root_seed, signature)`,
// so shard membership never shifts a tuner's RNG stream.
//
// One test sweeps the whole {shards} × {RH_THREADS} grid: the property is
// width-invariance, so concurrent env mutation by the other tests in this
// binary cannot break it (they only move along an axis the fingerprint must
// ignore anyway).
// ---------------------------------------------------------------------------

#[test]
fn served_fingerprint_is_invariant_across_shard_counts_and_thread_widths() {
    use bench::serve::{run_serve_bench, ServeBenchConfig};

    let mut runs = Vec::new();
    for threads in [1usize, 8] {
        std::env::set_var(rockpool::THREADS_ENV, threads.to_string());
        for shards in [1usize, 2, 8] {
            let mut cfg = ServeBenchConfig::quick(0x5A4D);
            cfg.shards = shards;
            let report = run_serve_bench(&cfg).expect("serve bench runs");
            assert_eq!(
                report.protocol_errors, 0,
                "bad frames at shards={shards} RH_THREADS={threads}"
            );
            assert!(report.clean_drain);
            runs.push((threads, shards, report.suggest_fingerprint));
        }
    }
    std::env::remove_var(rockpool::THREADS_ENV);

    let reference = runs.first().map(|r| r.2).expect("the grid ran");
    for (threads, shards, fingerprint) in runs {
        assert_eq!(
            fingerprint, reference,
            "served fingerprint moved at shards={shards} RH_THREADS={threads}"
        );
    }
}

#[test]
fn chaos_regime_traces_contain_faults() {
    // Guard against vacuous equality: under chaos the traced outcomes must
    // actually include failures/censorings for at least one seed.
    std::env::set_var(rockpool::THREADS_ENV, "4");
    let any_fault = (0..5u64).any(|seed| {
        fanned_out_trace(seed, &FaultSpec::chaos())
            .iter()
            .any(|line| line.contains("Failed") || line.contains("Censored"))
    });
    std::env::remove_var(rockpool::THREADS_ENV);
    assert!(any_fault, "chaos produced no faults in any traced run");
}
