//! Surrogate model fit/predict costs. The Centroid Learning window model is refit
//! after every observation, so its fit cost at N = 20 bounds the per-run overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ml::{BaggedTrees, GaussianProcess, KernelRidge, Regressor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| r.iter().map(|v| v * v).sum::<f64>() + ml::stats::normal(&mut rng, 0.0, 0.1))
        .collect();
    (x, y)
}

fn bench_krr(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_ridge");
    for n in [20, 100, 300] {
        let (x, y) = dataset(n, 4, 1);
        group.bench_function(format!("fit_n{n}"), |b| {
            b.iter(|| {
                let mut m = KernelRidge::rbf(1.0, 0.1);
                m.fit(black_box(&x), black_box(&y)).unwrap();
                m
            })
        });
        let mut m = KernelRidge::rbf(1.0, 0.1);
        m.fit(&x, &y).unwrap();
        group.bench_function(format!("predict_n{n}"), |b| {
            b.iter(|| m.predict(black_box(&[0.1, 0.2, 0.3, 0.4])))
        });
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    for n in [50, 200] {
        let (x, y) = dataset(n, 4, 2);
        group.bench_function(format!("fit_n{n}"), |b| {
            b.iter(|| {
                let mut gp = GaussianProcess::default_bo();
                gp.fit(black_box(&x), black_box(&y)).unwrap();
                gp
            })
        });
        let mut gp = GaussianProcess::default_bo();
        gp.fit(&x, &y).unwrap();
        group.bench_function(format!("posterior_n{n}"), |b| {
            b.iter(|| gp.posterior(black_box(&[0.1, 0.2, 0.3, 0.4])))
        });
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let (x, y) = dataset(500, 10, 3);
    c.bench_function("bagged_trees_fit_n500_d10", |b| {
        b.iter(|| {
            let mut f = BaggedTrees::baseline_default(1);
            f.fit(black_box(&x), black_box(&y)).unwrap();
            f
        })
    });
    let mut f = BaggedTrees::baseline_default(1);
    f.fit(&x, &y).unwrap();
    c.bench_function("bagged_trees_predict", |b| {
        b.iter(|| f.predict(black_box(&[0.0; 10])))
    });
}

criterion_group!(benches, bench_krr, bench_gp, bench_forest);
criterion_main!(benches);
