//! Runs every experiment in sequence. Pass `--quick` for a fast smoke sweep and
//! `--plot` to render each band CSV as an ASCII chart after its experiment.

type Runner = fn(experiments::Scale) -> experiments::Summary;

fn main() {
    let scale = experiments::Scale::from_args();
    let plot = std::env::args().any(|a| a == "--plot");
    let experiments: Vec<(&str, Runner)> = vec![
        ("fig01", experiments::fig01_shuffle_partitions::run),
        ("fig02", experiments::fig02_noisy_baselines::run),
        ("fig03", experiments::fig03_manual_vs_bo::run),
        ("fig08", experiments::fig08_synthetic_function::run),
        ("fig09", experiments::fig09_pseudo_surrogates::run),
        ("fig10", experiments::fig10_cl_learned_surrogate::run),
        ("fig11", experiments::fig11_dynamic_workloads::run),
        ("fig12", experiments::fig12_transfer_warmstart::run),
        ("fig13", experiments::fig13_cl_vs_cbo::run),
        ("fig14", experiments::fig14_tpch_production::run),
        ("fig15_16", experiments::fig15_16_customer_workloads::run),
        ("embedding", experiments::exp_embedding_ablation::run),
        ("ablation_findbest", experiments::exp_ablation_findbest::run),
        ("ablation_window", experiments::exp_ablation_window::run),
        (
            "ablation_overshoot",
            experiments::exp_ablation_overshoot::run,
        ),
        ("aqe_interaction", experiments::exp_aqe_interaction::run),
        ("fault_injection", experiments::exp_fault_injection::run),
        ("restart_regret", experiments::exp_restart_regret::run),
        (
            "coldstart_transfer",
            experiments::exp_coldstart_transfer::run,
        ),
        ("applevel", experiments::exp_applevel::run),
    ];
    // Fan the experiments out over the ambient rockpool (`RH_THREADS`), then
    // report serially in the declared order: every experiment is seeded
    // internally and writes its own CSV stems, so runs are independent and the
    // fan-out cannot change any result — only the wall-clock of the sweep.
    let pool = rockpool::Pool::from_env();
    let finished: Vec<(&str, experiments::Summary, f64)> =
        pool.map(&experiments, |_, (name, run)| {
            let start = std::time::Instant::now();
            let summary = run(scale);
            (*name, summary, start.elapsed().as_secs_f64())
        });
    for (name, summary, elapsed) in finished {
        summary.print();
        if plot {
            for file in &summary.files {
                let Ok(doc) = std::fs::read_to_string(file) else {
                    continue;
                };
                let bands = experiments::plot::bands_from_csv(&doc);
                if bands.len() >= 8 {
                    let title = file
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    println!("{}", experiments::plot::band_chart(&title, &bands, 72, 14));
                }
            }
        }
        eprintln!("[{name}] completed in {elapsed:.1}s");
    }
}
