//! [`RockhopperTuner`]: the complete online tuner of Figure 5 behind the common
//! [`Tuner`] interface — centroid state, candidate selection, guardrail, history.
//!
//! The tuner state is checkpointable ([`RockhopperTuner::snapshot`] /
//! [`RockhopperTuner::restore`]): in production the Model Updater persists each
//! query's model between applications — the process serving the next submission is
//! not the one that observed the last run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use optimizers::space::ConfigSpace;
use optimizers::tuner::{History, Observation, Outcome, Tuner, TuningContext};

use crate::baseline::BaselineModel;
use crate::centroid::{CentroidConfig, CentroidState};
use crate::guardrail::{Guardrail, GuardrailDecision};
use crate::selector::{CandidateSelector, SurrogateSelector};

/// The production Rockhopper tuner.
pub struct RockhopperTuner {
    space: ConfigSpace,
    state: CentroidState,
    selector: Box<dyn CandidateSelector + Send>,
    guardrail: Option<Guardrail>,
    rng: StdRng,
    /// All observations for this query signature.
    pub history: History,
    /// Expected data size captured at the latest suggest (the `p_{t+1}` used in the
    /// next centroid update).
    last_expected_p: f64,
    /// Seed the tuner was built with (checkpointed so restore is reproducible).
    seed: u64,
}

impl std::fmt::Debug for RockhopperTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RockhopperTuner")
            .field("centroid", &self.state.centroid_normalized())
            .field("observations", &self.history.len())
            .field(
                "guardrail_disabled",
                &self.guardrail.as_ref().map(Guardrail::is_disabled),
            )
            .finish_non_exhaustive()
    }
}

impl RockhopperTuner {
    /// Start building a tuner over `space`.
    ///
    /// ```
    /// use optimizers::space::ConfigSpace;
    /// use optimizers::tuner::{Outcome, Tuner, TuningContext};
    /// use rockhopper::RockhopperTuner;
    ///
    /// let space = ConfigSpace::query_level();
    /// let mut tuner = RockhopperTuner::builder(space.clone()).seed(7).build();
    /// let ctx = TuningContext {
    ///     embedding: vec![],
    ///     expected_data_size: 1e6,
    ///     iteration: 0,
    /// };
    /// let candidate = tuner.suggest(&ctx);
    /// assert!(space.to_conf(&candidate).validate().is_ok());
    /// tuner.observe(&candidate, &Outcome::measured(1234.0, 1e6));
    /// assert_eq!(tuner.history.len(), 1);
    /// ```
    pub fn builder(space: ConfigSpace) -> RockhopperBuilder {
        RockhopperBuilder {
            space,
            config: CentroidConfig::default(),
            start: None,
            baseline: None,
            selector: None,
            guardrail: Some(Guardrail::default()),
            seed: 0,
        }
    }

    /// The canonical per-signature tuner seed: `split_seed(root, signature)`.
    ///
    /// Every layer that creates a tuner for a signature must derive its seed
    /// through this one function, so the tuner's RNG stream is a pure
    /// function of `(root seed, signature)` — independent of which shard the
    /// signature routes to, how many shards exist, and in what order
    /// signatures arrive. This is the invariant behind the cross-shard
    /// determinism gates (DESIGN.md §11).
    pub fn signature_seed(root_seed: u64, signature: u64) -> u64 {
        rockpool::split_seed(root_seed, signature)
    }

    /// Current centroid in raw units.
    pub fn centroid(&self) -> Vec<f64> {
        self.state.centroid(&self.space)
    }

    /// Whether the guardrail has disabled tuning for this query.
    pub fn is_disabled(&self) -> bool {
        self.guardrail
            .as_ref()
            .map(Guardrail::is_disabled)
            .unwrap_or(false)
    }

    /// Best observation so far by raw elapsed time.
    pub fn best_observed(&self) -> Option<&Observation> {
        self.history.best_raw()
    }

    /// The algorithm hyper-parameters in use.
    pub fn config(&self) -> &CentroidConfig {
        &self.state.config
    }

    /// Checkpoint the tuner's full learning state (the "model file" the backend
    /// writes to storage between application runs).
    pub fn snapshot(&self) -> TunerState {
        TunerState {
            centroid_normalized: self.state.centroid_normalized().to_vec(),
            config: self.state.config,
            history: self.history.clone(),
            guardrail: self.guardrail.clone(),
            last_expected_p: self.last_expected_p,
            seed: self.seed,
            rng_state: Some(self.rng.to_state()),
            selector_rng_state: self.selector.rng_state(),
        }
    }

    /// Rebuild a tuner from a checkpoint. `baseline` re-attaches the (separately
    /// stored) baseline model. When the checkpoint carries raw RNG states the
    /// restored tuner continues the exact pre-checkpoint random streams
    /// (bit-exact recovery, DESIGN.md §10); older checkpoints without them
    /// restart the streams from the checkpointed seed.
    pub fn restore(
        space: ConfigSpace,
        state: TunerState,
        baseline: Option<BaselineModel>,
    ) -> RockhopperTuner {
        let mut selector: Box<dyn CandidateSelector + Send> = Box::new(SurrogateSelector::new(
            state.config.window,
            baseline,
            state.seed ^ 0x5eed,
        ));
        if let Some(s) = state.selector_rng_state {
            selector.restore_rng_state(s);
        }
        let rng = match state.rng_state {
            Some(s) => StdRng::from_state(s),
            None => StdRng::seed_from_u64(state.seed),
        };
        RockhopperTuner {
            space,
            state: CentroidState::from_normalized(state.centroid_normalized, state.config),
            selector,
            guardrail: state.guardrail,
            rng,
            history: state.history,
            last_expected_p: state.last_expected_p,
            seed: state.seed,
        }
    }
}

/// A serializable checkpoint of a [`RockhopperTuner`] — everything the next process
/// needs to continue tuning the same query signature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunerState {
    /// Centroid in normalized space.
    pub centroid_normalized: Vec<f64>,
    /// Algorithm hyper-parameters.
    pub config: CentroidConfig,
    /// Full observation history.
    pub history: History,
    /// Guardrail state (violation counter, disabled flag).
    pub guardrail: Option<Guardrail>,
    /// Expected data size captured at the last suggest.
    pub last_expected_p: f64,
    /// Seed for candidate generation.
    pub seed: u64,
    /// Raw candidate-generation RNG state for bit-exact mid-stream restore.
    /// `None` (a pre-durability checkpoint) restarts the stream from `seed`.
    pub rng_state: Option<[u64; 4]>,
    /// Raw selector random-fallback RNG state; same contract as `rng_state`.
    pub selector_rng_state: Option<[u64; 4]>,
}

impl Tuner for RockhopperTuner {
    fn suggest(&mut self, ctx: &TuningContext) -> Vec<f64> {
        self.last_expected_p = ctx.expected_data_size;
        if self.is_disabled() {
            // Regression detected earlier: reinstate the default configuration.
            return self.space.default_point();
        }
        let candidates = self.state.candidates(&self.space, &mut self.rng);
        let idx = self
            .selector
            .select(&self.space, &candidates, ctx, &self.history);
        candidates[idx].clone()
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history.push_outcome(point.to_vec(), outcome);
        if let Some(g) = &mut self.guardrail {
            // A censored outcome is a failed or unobserved run: it counts
            // toward the failure streak, not the regression trend. Measured
            // outcomes reset the streak and feed the trend check.
            let decision = if outcome.is_censored() {
                g.record_failure()
            } else {
                g.record_success();
                g.check(&self.history, self.last_expected_p)
            };
            if decision == GuardrailDecision::Disabled {
                return; // stop updating the centroid; suggest() now serves defaults
            }
        }
        self.state
            .update(&self.space, &self.history, self.last_expected_p);
    }

    fn name(&self) -> &'static str {
        "rockhopper"
    }
}

/// Builder for [`RockhopperTuner`].
pub struct RockhopperBuilder {
    space: ConfigSpace,
    config: CentroidConfig,
    start: Option<Vec<f64>>,
    baseline: Option<BaselineModel>,
    selector: Option<Box<dyn CandidateSelector + Send>>,
    guardrail: Option<Guardrail>,
    seed: u64,
}

impl RockhopperBuilder {
    /// Override the Algorithm 1 hyper-parameters.
    pub fn config(mut self, config: CentroidConfig) -> Self {
        self.config = config;
        self
    }

    /// Start the centroid somewhere other than the default configuration (e.g. a
    /// known-good manual tuning, §6.2).
    pub fn start_at(mut self, point: Vec<f64>) -> Self {
        self.start = Some(point);
        self
    }

    /// Warm-start candidate selection with an offline baseline model (§4.2).
    pub fn baseline(mut self, baseline: BaselineModel) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Replace the candidate selector entirely (pseudo-surrogate experiments).
    pub fn selector(mut self, selector: Box<dyn CandidateSelector + Send>) -> Self {
        self.selector = Some(selector);
        self
    }

    /// Replace the guardrail, or disable it with `None` (ablations).
    pub fn guardrail(mut self, guardrail: Option<Guardrail>) -> Self {
        self.guardrail = guardrail;
        self
    }

    /// Seed for candidate generation and tie-breaking.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the tuner.
    pub fn build(self) -> RockhopperTuner {
        let start = self.start.unwrap_or_else(|| self.space.default_point());
        let state = CentroidState::new(&self.space, &start, self.config);
        let selector = self.selector.unwrap_or_else(|| {
            Box::new(SurrogateSelector::new(
                self.config.window,
                self.baseline,
                self.seed ^ 0x5eed,
            ))
        });
        RockhopperTuner {
            space: self.space,
            state,
            selector,
            guardrail: self.guardrail,
            rng: StdRng::seed_from_u64(self.seed),
            history: History::new(),
            last_expected_p: 1.0,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimizers::env::{Environment, SyntheticEnv};
    use sparksim::noise::NoiseSpec;
    use workloads::dynamic::DataSchedule;

    fn drive(
        mut env: SyntheticEnv,
        mut tuner: RockhopperTuner,
        iters: usize,
    ) -> (SyntheticEnv, RockhopperTuner) {
        for _ in 0..iters {
            let p = tuner.suggest(&env.context());
            let o = env.run(&p);
            tuner.observe(&p, &o);
        }
        (env, tuner)
    }

    #[test]
    fn converges_on_noiseless_function() {
        let env = SyntheticEnv::new(NoiseSpec::none(), DataSchedule::Constant { size: 1.0 }, 1);
        let tuner = RockhopperTuner::builder(env.space().clone())
            .seed(1)
            .build();
        let (env, tuner) = drive(env, tuner, 150);
        let perf = env.normed_performance(&tuner.centroid());
        assert!(perf < 1.2, "noiseless CL should converge: {perf}");
    }

    #[test]
    fn converges_under_high_noise() {
        // The paper's headline: CL still converges where BO/FLOW2 collapse.
        let mut final_perfs = Vec::new();
        for seed in 0..6 {
            let env = SyntheticEnv::high_noise_constant(seed);
            let tuner = RockhopperTuner::builder(env.space().clone())
                .seed(seed)
                .build();
            let (env, tuner) = drive(env, tuner, 250);
            final_perfs.push(env.normed_performance(&tuner.centroid()));
        }
        final_perfs.sort_by(|a, b| a.total_cmp(b));
        let median = final_perfs[final_perfs.len() / 2];
        assert!(
            median < 1.5,
            "median normed perf under high noise: {median}"
        );
    }

    #[test]
    fn suggestions_stay_near_centroid() {
        // The regression-avoidance property: proposals never leave the β-box.
        let env = SyntheticEnv::high_noise_constant(3);
        let mut tuner = RockhopperTuner::builder(env.space().clone())
            .seed(3)
            .build();
        let space = env.space().clone();
        let beta = tuner.config().beta;
        let mut env = env;
        for _ in 0..50 {
            let centroid = space.normalize(&tuner.centroid());
            let p = tuner.suggest(&env.context());
            if tuner.is_disabled() {
                // Guardrail fired: the tuner serves the default instead, which may
                // legitimately sit outside the β-box.
                break;
            }
            for (xi, ci) in space.normalize(&p).iter().zip(&centroid) {
                assert!((xi - ci).abs() <= beta + 1e-9);
            }
            let o = env.run(&p);
            tuner.observe(&p, &o);
        }
    }

    #[test]
    fn disabled_tuner_serves_defaults() {
        let env = SyntheticEnv::high_noise_constant(4);
        let space = env.space().clone();
        let mut tuner = RockhopperTuner::builder(space.clone())
            .guardrail(Some(Guardrail::new(5, 0.01, 1)))
            .seed(4)
            .build();
        // Feed violently regressing observations to trip the guardrail.
        let ctx = env.context();
        for i in 0..30 {
            let p = tuner.suggest(&ctx);
            tuner.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0 * (i + 1) as f64,
                    data_size: 1.0,
                    kind: optimizers::tuner::ObservationKind::Measured,
                },
            );
            if tuner.is_disabled() {
                break;
            }
        }
        assert!(tuner.is_disabled(), "guardrail should have fired");
        let p = tuner.suggest(&ctx);
        assert_eq!(p, space.default_point());
    }

    #[test]
    fn start_at_changes_first_neighborhood() {
        let space = ConfigSpace::query_level();
        let mut custom = space.default_point();
        custom[2] = 1024.0;
        let tuner = RockhopperTuner::builder(space.clone())
            .start_at(custom.clone())
            .seed(0)
            .build();
        let c = tuner.centroid();
        assert!((c[2] - 1024.0).abs() < 1.0);
    }

    #[test]
    fn best_observed_tracks_minimum() {
        let env = SyntheticEnv::high_noise_constant(6);
        let tuner = RockhopperTuner::builder(env.space().clone())
            .seed(6)
            .build();
        let (_, tuner) = drive(env, tuner, 20);
        let best = tuner.best_observed().unwrap().elapsed_ms;
        assert!(tuner.history.all.iter().all(|o| o.elapsed_ms >= best));
    }

    #[test]
    fn snapshot_restore_roundtrips_learning_state() {
        let env = SyntheticEnv::high_noise_constant(12);
        let tuner = RockhopperTuner::builder(env.space().clone())
            .seed(12)
            .build();
        let (mut env, tuner) = drive(env, tuner, 25);
        let snap = tuner.snapshot();

        // Serialize through JSON as the backend's storage does.
        let json = serde_json::to_string(&snap).unwrap();
        let back: TunerState = serde_json::from_str(&json).unwrap();
        let mut restored = RockhopperTuner::restore(env.space().clone(), back, None);

        assert_eq!(restored.centroid(), tuner.centroid());
        assert_eq!(restored.history.len(), tuner.history.len());
        assert_eq!(restored.is_disabled(), tuner.is_disabled());
        // The restored tuner keeps learning from where it left off.
        for _ in 0..10 {
            let p = restored.suggest(&env.context());
            let o = env.run(&p);
            restored.observe(&p, &o);
        }
        assert_eq!(restored.history.len(), tuner.history.len() + 10);
    }

    #[test]
    fn snapshot_restore_is_bit_exact_mid_stream() {
        // The durability contract (DESIGN.md §10): checkpoint + restore in
        // the middle of a tuning stream must be invisible — the restored
        // tuner emits the *same* suggestion sequence as the original
        // continuing uninterrupted, because the raw RNG states travel in
        // the snapshot instead of being reseeded.
        let env = SyntheticEnv::high_noise_constant(21);
        let tuner = RockhopperTuner::builder(env.space().clone())
            .seed(21)
            .build();
        let (mut env, mut original) = drive(env, tuner, 7);

        let snap = original.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TunerState = serde_json::from_str(&json).unwrap();
        let mut restored = RockhopperTuner::restore(env.space().clone(), back, None);

        for _ in 0..12 {
            let ctx = env.context();
            let a = original.suggest(&ctx);
            let b = restored.suggest(&ctx);
            assert_eq!(a, b, "restored tuner diverged from the original");
            let o = env.run(&a);
            original.observe(&a, &o);
            restored.observe(&b, &o);
        }
    }

    #[test]
    fn pre_durability_checkpoints_still_restore() {
        // A checkpoint written before the rng_state fields existed decodes
        // with them as None and falls back to seed-based streams.
        let env = SyntheticEnv::high_noise_constant(3);
        let tuner = RockhopperTuner::builder(env.space().clone())
            .seed(3)
            .build();
        let (mut env, tuner) = drive(env, tuner, 5);
        let mut snap = tuner.snapshot();
        snap.rng_state = None;
        snap.selector_rng_state = None;
        let json = serde_json::to_string(&snap).unwrap();
        let back: TunerState = serde_json::from_str(&json).unwrap();
        assert!(back.rng_state.is_none());
        let mut restored = RockhopperTuner::restore(env.space().clone(), back, None);
        assert_eq!(restored.centroid(), tuner.centroid());
        let p = restored.suggest(&env.context());
        assert_eq!(p.len(), env.space().dims.len());
    }

    #[test]
    fn restored_disabled_tuner_stays_disabled() {
        let space = ConfigSpace::query_level();
        let mut tuner = RockhopperTuner::builder(space.clone())
            .guardrail(Some(Guardrail::new(5, 0.01, 1)))
            .seed(1)
            .build();
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        for i in 0..30 {
            let p = tuner.suggest(&ctx);
            tuner.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0 * (i + 1) as f64,
                    data_size: 1.0,
                    kind: optimizers::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(tuner.is_disabled());
        let restored = RockhopperTuner::restore(space, tuner.snapshot(), None);
        assert!(restored.is_disabled());
    }

    #[test]
    fn builder_without_guardrail_never_disables() {
        let space = ConfigSpace::query_level();
        let mut tuner = RockhopperTuner::builder(space)
            .guardrail(None)
            .seed(1)
            .build();
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        for i in 0..60 {
            let p = tuner.suggest(&ctx);
            tuner.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0 * (i + 1) as f64,
                    data_size: 1.0,
                    kind: optimizers::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(!tuner.is_disabled());
    }
}
