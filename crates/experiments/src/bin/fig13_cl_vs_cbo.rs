//! Regenerates the paper's `fig13_cl_vs_cbo` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig13_cl_vs_cbo::run(scale).print();
}
