//! FIND_GRADIENT (§4.3): estimate, per knob, whether to move up or down.
//!
//! "The derived gradient indicates only the direction of change, not the magnitude."
//! Two estimators:
//!
//! - **Linear** (Figure 6): fit a linear surface over the window — features are the
//!   normalized configs plus `ln p` so data-size effects are excluded — and take the
//!   sign of each config coefficient.
//! - **ML corners** (Eqs 6–7): reuse the window model `H` and evaluate the `2^d`
//!   corners `c* ∓ α·δ`, `δ ∈ {±1}^d`; the best corner's δ is the direction. This
//!   "relaxes the assumption about the relationship between data size and
//!   performance" and is what production uses.

use ml::{Regressor, Ridge};
use optimizers::space::ConfigSpace;
use optimizers::tuner::Observation;
use serde::{Deserialize, Serialize};

use crate::find_best::{fit_window_model, h_features};

/// Which gradient estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientMode {
    /// Linear-surface coefficient signs (Figure 6).
    Linear,
    /// ML model evaluated at the `2^d` corners around `c*` (Eqs 6–7).
    MlCorners,
}

/// A descent direction: one entry per config dimension in `{-1.0, 0.0, +1.0}`,
/// pointing from the current best toward *better* configurations (i.e. the centroid
/// moves by `−α·Δ`... the paper's sign convention: `e_{t+1} = c* − α·Δ`, so `Δ`
/// points toward *worse* performance and the update walks away from it).
pub(crate) type Direction = Vec<f64>;

/// Estimate the gradient direction from `window` around best point `c_star`
/// (raw units). `alpha` is the probe distance in normalized units for the ML-corner
/// mode. `p_ref` fixes the data size for corner evaluation (the paper uses `p_{t+1}`).
///
/// Returns all-zeros (no movement) when the window is too small to estimate anything.
pub fn find_gradient(
    space: &ConfigSpace,
    window: &[Observation],
    c_star: &[f64],
    mode: GradientMode,
    alpha: f64,
    p_ref: f64,
) -> Direction {
    let d = space.len();
    if window.len() < 4 {
        return vec![0.0; d];
    }
    match mode {
        GradientMode::Linear => linear_direction(space, window, d),
        GradientMode::MlCorners => ml_corner_direction(space, window, c_star, alpha, p_ref, d)
            .unwrap_or_else(|| linear_direction(space, window, d)),
    }
}

/// Fit `ln r ~ [normalized c, ln p]` and return the sign of each config coefficient.
fn linear_direction(space: &ConfigSpace, window: &[Observation], d: usize) -> Direction {
    let x: Vec<Vec<f64>> = window
        .iter()
        .map(|o| h_features(space, &o.point, o.data_size))
        .collect();
    let y: Vec<f64> = window.iter().map(|o| o.elapsed_ms.max(1e-9).ln()).collect();
    let mut m = Ridge::new(0.01);
    if m.fit(&x, &y).is_err() {
        return vec![0.0; d];
    }
    // Tiny coefficients are noise: emit 0 (don't move on that axis). The threshold
    // is absolute in ln-time units per unit normalized knob — 0.08 means "moving the
    // knob across 100% of its range changes time by under ~8%", which is below the
    // fluctuation floor of any production run.
    const MIN_SLOPE: f64 = 0.08;
    m.weights()[..d]
        .iter()
        .map(|&w| if w.abs() < MIN_SLOPE { 0.0 } else { w.signum() })
        .collect()
}

/// Evaluate `H` at the `2^d` corners `x(c*) − α·δ` and return the δ of the best
/// corner, negated into the paper's convention (`e = c* − α·Δ` lands on that corner).
fn ml_corner_direction(
    space: &ConfigSpace,
    window: &[Observation],
    c_star: &[f64],
    alpha: f64,
    p_ref: f64,
    d: usize,
) -> Option<Direction> {
    let h = fit_window_model(space, window)?;
    let x_star = space.normalize(c_star);
    let mut best_delta: Option<Vec<f64>> = None;
    let mut best_pred = f64::INFINITY;
    // Enumerate {±1}^d via bit patterns.
    for mask in 0..(1u32 << d) {
        let delta: Vec<f64> = (0..d)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { -1.0 })
            .collect();
        let probe: Vec<f64> = x_star
            .iter()
            .zip(&delta)
            .map(|(xi, di)| (xi - alpha * di).clamp(0.0, 1.0))
            .collect();
        let raw = space.denormalize(&probe);
        let pred = h.predict(&h_features(space, &raw, p_ref));
        if pred < best_pred {
            best_pred = pred;
            best_delta = Some(delta);
        }
    }
    best_delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::query_level()
    }

    /// Build a window where true time rises with dim-2's normalized value and is
    /// linear in data size, plus deterministic pseudo-noise.
    fn rising_window(n: usize) -> Vec<Observation> {
        let s = space();
        (0..n)
            .map(|i| {
                let x = (i % 7) as f64 / 6.0;
                let p = 1.0 + (i % 3) as f64;
                let mut point = s.default_point();
                point[2] = s.dims[2].denormalize(x);
                let noise = 1.0 + 0.02 * ((i * 37 % 11) as f64 / 10.0);
                Observation {
                    point,
                    data_size: p,
                    elapsed_ms: p * (50.0 + 100.0 * x) * noise,
                    kind: optimizers::tuner::ObservationKind::Measured,
                }
            })
            .collect()
    }

    #[test]
    fn linear_finds_the_rising_axis() {
        let s = space();
        let w = rising_window(14);
        let dir = find_gradient(&s, &w, &s.default_point(), GradientMode::Linear, 0.1, 1.0);
        // Time rises with dim 2 ⇒ Δ₂ = +1 (centroid moves down via −α·Δ).
        assert_eq!(dir[2], 1.0, "direction {dir:?}");
    }

    #[test]
    fn linear_excludes_data_size_effects() {
        // Time depends ONLY on p; configs are pure noise. Use a full 4×5 factorial
        // so config and data size are exactly uncorrelated in-sample, then the
        // config coefficient must vanish and all directions come out 0.
        let s = space();
        let w: Vec<Observation> = (0..20)
            .map(|i| {
                let p = 1.0 + (i / 4) as f64;
                let mut point = s.default_point();
                point[2] = s.dims[2].denormalize((i % 4) as f64 / 3.0);
                Observation {
                    point,
                    data_size: p,
                    elapsed_ms: 100.0 * p,
                    kind: optimizers::tuner::ObservationKind::Measured,
                }
            })
            .collect();
        let dir = find_gradient(&s, &w, &s.default_point(), GradientMode::Linear, 0.1, 1.0);
        assert_eq!(dir[2], 0.0, "config must not inherit p's trend: {dir:?}");
    }

    #[test]
    fn ml_corners_point_downhill() {
        let s = space();
        let w = rising_window(20);
        let mut c_star = s.default_point();
        c_star[2] = s.dims[2].denormalize(0.6);
        let dir = find_gradient(&s, &w, &c_star, GradientMode::MlCorners, 0.1, 1.0);
        // Moving dim 2 down improves ⇒ best corner has δ₂ = +1 (e = c* − α·δ).
        assert_eq!(dir[2], 1.0, "direction {dir:?}");
    }

    #[test]
    fn small_window_yields_zero_direction() {
        let s = space();
        let w = rising_window(3);
        for mode in [GradientMode::Linear, GradientMode::MlCorners] {
            let dir = find_gradient(&s, &w, &s.default_point(), mode, 0.1, 1.0);
            assert!(dir.iter().all(|&d| d == 0.0), "{mode:?}: {dir:?}");
        }
    }

    #[test]
    fn directions_are_ternary() {
        let s = space();
        let w = rising_window(20);
        for mode in [GradientMode::Linear, GradientMode::MlCorners] {
            let dir = find_gradient(&s, &w, &s.default_point(), mode, 0.1, 2.0);
            assert_eq!(dir.len(), 3);
            for v in &dir {
                assert!(
                    *v == -1.0 || *v == 0.0 || *v == 1.0,
                    "{mode:?} produced {v}"
                );
            }
        }
    }
}
