//! Regenerates the paper's `fig01_shuffle_partitions` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig01_shuffle_partitions::run(scale).print();
}
