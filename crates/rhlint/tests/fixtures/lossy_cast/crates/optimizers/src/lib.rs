//! Fixture optimizers crate.

pub mod space;

use space::{app_level, query_level};

fn dims() -> usize {
    query_level().len() + app_level().len()
}

fn shrink(total: usize) -> u32 {
    let tail = total as u32;
    // rhlint:allow(RH015): modulo-2^32 bucketing is the intended semantics
    let bucket = total as u32;
    tail.wrapping_add(bucket)
}
