//! Offline shim of `criterion`.
//!
//! Provides the API spelling the workspace's benches use, backed by a simple
//! measure-and-print harness: each benchmark is warmed up briefly, then timed
//! over a fixed wall-clock budget and reported as mean ns/iter. No plots, no
//! statistics beyond the mean — enough to compare hot paths locally while the
//! real crate is unavailable offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// How batched inputs are sized; only a marker in this shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), &mut f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Calibrate: find an iteration count that takes a noticeable time slice.
    let mut iters: u64 = 1;
    let calibrate_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::from_millis(50)
            || iters >= 1 << 30
            || calibrate_start.elapsed() > WARMUP
        {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    // Measure within the time budget.
    let mut total_iters: u64 = 0;
    let mut total_time = Duration::ZERO;
    while total_time < MEASURE {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += iters;
        total_time += b.elapsed;
        if b.elapsed.is_zero() {
            break;
        }
    }

    if total_iters == 0 {
        println!("{name}: no iterations recorded");
        return;
    }
    let ns_per_iter = total_time.as_nanos() as f64 / total_iters as f64;
    println!("{name}: {ns_per_iter:.1} ns/iter ({total_iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
