//! `cargo run -p rhlint -- check [root] [--format text|json|sarif]`
//!
//! Also: `rhlint rules` (the catalog), `rhlint explain <rule>` (rationale,
//! example, fix for one rule), and `rhlint fix --stale-allows [root]
//! [--write]` (mechanically delete RH025 stale suppressions; dry run by
//! default).
//!
//! Exit status: 0 when clean, 1 on violations (for `fix`: pending fixes in a
//! dry run), 2 on usage/engine errors (unreadable workspace, bad flags,
//! unknown rule) — CI can distinguish "found problems" from "could not run".
//! JSON and SARIF output are byte-stable across runs: sorted diagnostics, no
//! timing data. The text summary reports wall-time, which is why timing
//! never appears in the machine-readable formats.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };

    match command.as_str() {
        "rules" => {
            if !rest.is_empty() {
                return usage();
            }
            for rule in rhlint::Rule::ALL {
                println!(
                    "{}  {:<20} [{}] {}",
                    rule.code(),
                    rule.id(),
                    rule.family(),
                    rule.doc()
                );
            }
            println!();
            println!("run `rhlint explain <rule>` for the rationale, an example violation, and the sanctioned fix");
            ExitCode::SUCCESS
        }
        "explain" => {
            let [rule_arg] = rest else {
                return usage();
            };
            let Some(rule) = rhlint::Rule::from_id(rule_arg) else {
                eprintln!("rhlint: unknown rule `{rule_arg}` — `rhlint rules` lists the catalog");
                return ExitCode::from(2);
            };
            let e = rule.explain();
            println!("{}  {} [{}]", rule.code(), rule.id(), rule.family());
            println!("{}", rule.doc());
            println!();
            println!("why:");
            println!("  {}", e.rationale);
            println!();
            println!("example violation:");
            for line in e.example.lines() {
                println!("  {line}");
            }
            println!();
            println!("fix:");
            println!("  {}", e.fix);
            ExitCode::SUCCESS
        }
        "fix" => {
            let mut root = None;
            let mut stale_allows = false;
            let mut write = false;
            for arg in rest {
                match arg.as_str() {
                    "--stale-allows" => stale_allows = true,
                    "--write" => write = true,
                    _ if root.is_none() && !arg.starts_with('-') => {
                        root = Some(PathBuf::from(arg));
                    }
                    _ => return usage(),
                }
            }
            if !stale_allows {
                return usage();
            }
            let root = root.unwrap_or_else(find_workspace_root);
            match rhlint::fix_stale_allows(&root, write) {
                Ok(report) => {
                    for (file, line) in &report.removed {
                        println!(
                            "{}: {}:{}: stale rhlint:allow",
                            if report.written { "fixed" } else { "would fix" },
                            file.display(),
                            line
                        );
                    }
                    if report.removed.is_empty() {
                        println!("rhlint: no stale allows");
                        ExitCode::SUCCESS
                    } else if report.written {
                        println!("rhlint: removed {} stale allow(s)", report.removed.len());
                        ExitCode::SUCCESS
                    } else {
                        println!(
                            "rhlint: {} stale allow(s) pending — rerun with --write to apply",
                            report.removed.len()
                        );
                        ExitCode::from(1)
                    }
                }
                Err(err) => {
                    eprintln!("{err}");
                    ExitCode::from(2)
                }
            }
        }
        "check" => {
            let mut root = None;
            let mut format = Format::Text;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--format" => match it.next().map(String::as_str) {
                        Some("text") => format = Format::Text,
                        Some("json") => format = Format::Json,
                        Some("sarif") => format = Format::Sarif,
                        _ => return usage(),
                    },
                    _ if root.is_none() && !arg.starts_with('-') => {
                        root = Some(PathBuf::from(arg));
                    }
                    _ => return usage(),
                }
            }
            run(root.unwrap_or_else(find_workspace_root), format)
        }
        _ => usage(),
    }
}

fn run(root: PathBuf, format: Format) -> ExitCode {
    let started = Instant::now();
    match rhlint::run_check(&root) {
        Ok(report) => {
            match format {
                Format::Json => print!("{}", rhlint::render_json(&report.diagnostics)),
                Format::Sarif => print!("{}", rhlint::render_sarif(&report.diagnostics)),
                Format::Text => {
                    print!("{}", rhlint::render_report(&report.diagnostics));
                    println!(
                        "rhlint: scanned {} files in {:.0} ms",
                        report.files_scanned,
                        started.elapsed().as_secs_f64() * 1e3
                    );
                }
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rhlint check [workspace-root] [--format text|json|sarif]\n\
         \x20      rhlint rules\n\
         \x20      rhlint explain <rule-id-or-RH-code>\n\
         \x20      rhlint fix --stale-allows [workspace-root] [--write]"
    );
    ExitCode::from(2)
}

/// Walk up from the current directory to the first dir containing a
/// `Cargo.toml` with a `[workspace]` table (cargo sets cwd to the invoking
/// directory, so `cargo run -p rhlint` from anywhere in the tree works).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
