//! Offline shim of `serde_json`: renders and parses the vendored
//! `serde::Value` tree as JSON text. Only the entry points this workspace
//! calls are provided.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{DeError, Value};

/// Unified error type covering parse and shape mismatches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    inner: DeError,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(inner: DeError) -> Self {
        Error { inner }
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::text::render_compact(&value.serialize_value()))
}

pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let tree = serde::text::parse(input)?;
    T::deserialize_value(&tree).map_err(Error::from)
}

pub fn from_slice<T: serde::Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input)
        .map_err(|e| Error::from(DeError::new(format!("invalid utf-8: {e}"))))?;
    from_str(text)
}

/// Parse JSON into the generic value tree.
pub fn value_from_str(input: &str) -> Result<Value, Error> {
    serde::text::parse(input).map_err(Error::from)
}
