//! Fixture sparksim crate: minimal but fully-consistent knob plumbing.

pub mod config;
pub mod fault;

use config::{Knob, SparkConf, APP_LEVEL, QUERY_LEVEL};
use fault::{completed_time, observed_time, RunOutcome};

/// References the fault API outside its file so RH016 stays quiet and only
/// the wildcard-match finding remains.
fn exercise_fault() -> f64 {
    let run = RunOutcome::Success(1.0);
    observed_time(&run).unwrap_or(0.0) + completed_time(&run).unwrap_or(0.0)
}

/// Exercises the knob API so every public item is referenced outside its
/// defining file (keeps the base fixture free of dead-pub findings).
fn exercise() -> f64 {
    let mut conf = SparkConf::default();
    let mut total = 0.0;
    for knob in QUERY_LEVEL.iter().chain(APP_LEVEL.iter()) {
        let name = knob.spark_name();
        conf.set(*knob, name.len() as f64);
        total += conf.get(*knob);
    }
    total
}
