//! Lock-discipline, growth, and hot-path analyses (RH020–RH024).
//!
//! This is the lock-facing half of rhlint's dataflow engine: it consumes the
//! per-function [`FnModel`]s produced by [`crate::lower`] (shared with the
//! interval and taint passes) whose events record guard
//! acquisitions/releases, blocking operations, panic sites, and resolved
//! workspace calls. A forward *may*-analysis ([`crate::dataflow`]) computes
//! the set of held guards at every event; interprocedural summaries
//! (may-block / may-panic / acquires) propagate over the call graph so a
//! `client.suggest(..)` that blocks three calls deep still fires RH021 at the
//! call site under the lock.
//!
//! The model is deliberately an approximation with the safe polarity per
//! rule:
//!
//! * Guards come alive at `let g = m.lock()` (also `.read()`/`.write()` on an
//!   `RwLock`-typed receiver, and calls to workspace fns returning a
//!   `*Guard`), survive `unwrap`/`expect`/`unwrap_or_else` adapters, and die
//!   at `drop(g)`, at the end of their lexical scope, or at the end of the
//!   statement for temporaries.
//! * Closure bodies are **not** inlined into the enclosing function's CFG: a
//!   `thread::spawn(move || rx.recv())` does not make the spawner a blocking
//!   function. The cost is that calls made through combinator closures are
//!   invisible to the interprocedural pass (an under-approximation).
//! * Lock identity is `Type.field` for `self.field.lock()`-shaped receivers
//!   and `fn:name()` for guard-returning helpers, so two instances of the
//!   same struct alias to one lock node. That can over-report RH020 on
//!   per-instance locks and never under-reports a same-instance cycle.
//! * A panic site already suppressed by a justified `rhlint:allow` for a
//!   panic-family rule is trusted not to panic and does not seed RH023.
//!
//! RH022 (unbounded growth) and RH024 (hot-path allocation) ride on simpler
//! whole-body visitors: growth needs workspace-wide shrink evidence rather
//! than path sensitivity, and for a `rhlint:hot` function *any* allocation on
//! *any* path is a finding.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::cfg::Event;
use crate::dataflow::{self, Transfer};
use crate::lower::{
    for_each_expr, for_each_expr_in_block, infer_type_text, param_env, peel_head, qualified_name,
    FnModel,
};
use crate::parser::Expr;
use crate::symbols::{FnInfo, Workspace};
use crate::{Diagnostic, Rule, PANIC_SCOPE};

/// Crates subject to the lock-discipline and growth rules: the production
/// panic-scope crates plus the `rockpool` work pool (its whole job is
/// threads and joins).
pub(crate) fn concurrency_scoped(krate: &str) -> bool {
    PANIC_SCOPE.contains(&krate) || krate == "rockpool"
}

/// Collection type heads whose growth RH022 tracks.
pub(crate) const COLLECTIONS: [&str; 7] = [
    "Vec",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Methods that add elements.
const GROW_METHODS: [&str; 6] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
];

/// Methods that remove elements or bound the collection; one of these on the
/// same `Type.field` anywhere in production code makes growth bounded.
const SHRINK_METHODS: [&str; 12] = [
    "remove",
    "remove_entry",
    "retain",
    "clear",
    "pop",
    "pop_front",
    "pop_back",
    "truncate",
    "drain",
    "split_off",
    "swap_remove",
    "take",
];

// ---------------------------------------------------------------------------
// Held-guard lattice
// ---------------------------------------------------------------------------

/// A held-guard fact: `(guard id, lock id, acquisition line)`.
type Held = (String, String, usize);

struct HeldLocks;

impl Transfer for HeldLocks {
    type Fact = Held;

    fn apply(&self, event: &Event, facts: &mut BTreeSet<Held>) {
        match event {
            Event::Acquire { guard, lock, line } => {
                facts.insert((guard.clone(), lock.clone(), *line));
            }
            Event::Release { guard } => {
                facts.retain(|(g, _, _)| g != guard);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Interprocedural summaries
// ---------------------------------------------------------------------------

#[derive(Clone, Default)]
struct Summary {
    /// `Some(primitive)` when the function may block (directly or via calls).
    blocks: Option<String>,
    /// `Some(site)` when the function may panic.
    panics: Option<String>,
    /// Locks this function (transitively) acquires.
    acquires: BTreeSet<String>,
}

fn summarize(models: &[Option<FnModel>]) -> Vec<Summary> {
    let mut sums: Vec<Summary> = models
        .iter()
        .map(|m| {
            let mut s = Summary::default();
            if let Some(model) = m {
                for block in &model.cfg.blocks {
                    for ev in &block.events {
                        match ev {
                            Event::Blocking { what, .. } => {
                                if s.blocks.is_none() {
                                    s.blocks = Some(what.clone());
                                }
                            }
                            Event::Panic { what, .. } => {
                                if s.panics.is_none() {
                                    s.panics = Some(what.clone());
                                }
                            }
                            Event::Acquire { lock, .. } => {
                                s.acquires.insert(lock.clone());
                            }
                            _ => {}
                        }
                    }
                }
            }
            s
        })
        .collect();

    // Propagate callee facts to callers to a fixpoint; the call graph is
    // finite so this stabilizes within O(depth) rounds, fuel-capped anyway.
    for _ in 0..64 {
        let mut changed = false;
        for i in 0..models.len() {
            let Some(model) = &models[i] else { continue };
            for &c in &model.calls {
                if c == i {
                    continue;
                }
                let (callee_blocks, callee_panics, callee_acquires) = {
                    let s = &sums[c];
                    (s.blocks.clone(), s.panics.clone(), s.acquires.clone())
                };
                let s = &mut sums[i];
                if s.blocks.is_none() {
                    if let Some(w) = callee_blocks {
                        s.blocks = Some(w);
                        changed = true;
                    }
                }
                if s.panics.is_none() {
                    if let Some(w) = callee_panics {
                        s.panics = Some(w);
                        changed = true;
                    }
                }
                for l in callee_acquires {
                    if s.acquires.insert(l) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

// ---------------------------------------------------------------------------
// RH020 / RH021 / RH023 — the dataflow pass proper
// ---------------------------------------------------------------------------

/// Run the lock-discipline rules over every non-test function of the
/// concurrency-scoped crates. `models` is the shared lowering from
/// [`crate::lower::lower_all`], index-aligned with [`Workspace::fns`].
pub(crate) fn check(ws: &Workspace, models: &[Option<FnModel>]) -> Vec<Diagnostic> {
    let sums = summarize(models);

    let mut found: BTreeSet<(PathBuf, usize, Rule, String)> = BTreeSet::new();
    // Lock-acquisition order graph: (held, acquired) → first site.
    let mut edges: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();

    for (i, fi) in ws.fns().iter().enumerate() {
        if fi.cfg_test || !concurrency_scoped(&fi.krate) {
            continue;
        }
        let Some(model) = &models[i] else { continue };
        let rel = ws.files()[fi.file].rel.clone();
        let sol = dataflow::forward(&model.cfg, &HeldLocks, BTreeSet::new());
        for b in 0..model.cfg.blocks.len() {
            sol.walk_block(&model.cfg, b, &HeldLocks, |ev, held| {
                let first = held.iter().next();
                match ev {
                    Event::Blocking { what, line } => {
                        if let Some((_, lock, aline)) = first {
                            found.insert((
                                rel.clone(),
                                *line,
                                Rule::BlockingUnderLock,
                                format!(
                                    "blocking `{what}` while `{lock}` is locked (acquired line {aline})"
                                ),
                            ));
                        }
                    }
                    Event::Panic { what, line } => {
                        if let Some((_, lock, aline)) = first {
                            found.insert((
                                rel.clone(),
                                *line,
                                Rule::PanicUnderLock,
                                format!(
                                    "potential panic `{what}` while `{lock}` is locked (acquired line {aline}) — a panic here poisons the lock"
                                ),
                            ));
                        }
                    }
                    Event::Acquire { lock, line, .. } => {
                        for (_, h, _) in held.iter() {
                            edges
                                .entry((h.clone(), lock.clone()))
                                .or_insert_with(|| (rel.clone(), *line));
                        }
                    }
                    Event::Call { callee, line } => {
                        let s = &sums[*callee];
                        if let Some((_, lock, aline)) = first {
                            let qname = qualified_name(&ws.fns()[*callee]);
                            if let Some(w) = &s.blocks {
                                found.insert((
                                    rel.clone(),
                                    *line,
                                    Rule::BlockingUnderLock,
                                    format!(
                                        "call to `{qname}` may block ({w}) while `{lock}` is locked (acquired line {aline})"
                                    ),
                                ));
                            }
                            if let Some(w) = &s.panics {
                                found.insert((
                                    rel.clone(),
                                    *line,
                                    Rule::PanicUnderLock,
                                    format!(
                                        "call to `{qname}` may panic ({w}) while `{lock}` is locked (acquired line {aline}) — a panic poisons the lock"
                                    ),
                                ));
                            }
                        }
                        for (_, h, _) in held.iter() {
                            for l in &s.acquires {
                                edges
                                    .entry((h.clone(), l.clone()))
                                    .or_insert_with(|| (rel.clone(), *line));
                            }
                        }
                    }
                    _ => {}
                }
            });
        }
    }

    // RH020: any acquisition edge that closes a cycle is a potential
    // deadlock. Self-edges (reacquiring a held lock) always deadlock with
    // std's non-reentrant Mutex.
    let mut adj: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().insert(b);
    }
    for ((a, b), (file, line)) in &edges {
        let cyclic = if a == b { true } else { reaches(&adj, b, a) };
        if cyclic {
            let message = if a == b {
                format!(
                    "`{a}` acquired while already held — self-deadlock with a non-reentrant lock"
                )
            } else {
                format!(
                    "lock-order cycle: `{a}` is held while acquiring `{b}` here, and `{b}` is held while acquiring `{a}` elsewhere — acquire locks in one global order"
                )
            };
            found.insert((file.clone(), *line, Rule::LockOrderCycle, message));
        }
    }

    found
        .into_iter()
        .map(|(file, line, rule, message)| Diagnostic {
            file,
            line,
            rule,
            message,
        })
        .collect()
}

/// Is `to` reachable from `from` in the acquisition graph?
fn reaches(adj: &BTreeMap<&String, BTreeSet<&String>>, from: &String, to: &String) -> bool {
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    let mut stack: Vec<&String> = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

// ---------------------------------------------------------------------------
// RH022 — unbounded growth of long-lived service state
// ---------------------------------------------------------------------------

/// Run the unbounded-growth rule: a grow call (`push`/`insert`/...) on a
/// collection field of a long-lived type, with no shrink/eviction call on
/// the same `Type.field` anywhere in production code and no `len`/`capacity`
/// check in the growing function.
pub(crate) fn check_growth(ws: &Workspace) -> Vec<Diagnostic> {
    let long_lived = long_lived_types(ws);

    struct GrowSite {
        file: PathBuf,
        line: usize,
        ty: String,
        field: String,
        method: String,
        /// The growing fn consults `len()`/`capacity()` on the same field.
        bounded_locally: bool,
    }

    let mut grows: Vec<GrowSite> = Vec::new();
    let mut shrunk: BTreeSet<(String, String)> = BTreeSet::new();

    for fi in ws.fns() {
        if fi.cfg_test {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let env = param_env(fi);
        let rel = &ws.files()[fi.file].rel;

        // First sweep: which fields does this fn bound-check or shrink?
        let mut checked: BTreeSet<(String, String)> = BTreeSet::new();
        for_each_expr_in_block(body, &mut |e| {
            if let Expr::MethodCall { recv, method, .. } = e {
                if let Some((ty, field)) = field_of(ws, &env, recv) {
                    if matches!(method.as_str(), "len" | "capacity" | "is_empty") {
                        checked.insert((ty.clone(), field.clone()));
                    }
                    if SHRINK_METHODS.contains(&method.as_str()) {
                        shrunk.insert((ty, field));
                    }
                }
            }
        });

        // Second sweep: grow calls on collection fields of long-lived types.
        let in_scope = concurrency_scoped(&fi.krate);
        for_each_expr_in_block(body, &mut |e| {
            let Expr::MethodCall {
                recv, method, line, ..
            } = e
            else {
                return;
            };
            let (target, grow_name): (&Expr, String) =
                if method.starts_with("or_insert") || method == "or_default" {
                    // `map.entry(k).or_insert_with(..)` / `.or_default()`
                    // grows the map.
                    match &**recv {
                        Expr::MethodCall {
                            recv: inner,
                            method: m2,
                            ..
                        } if m2 == "entry" => (inner, format!("entry().{method}()")),
                        _ => return,
                    }
                } else if GROW_METHODS.contains(&method.as_str()) {
                    (recv, format!("{method}()"))
                } else {
                    return;
                };
            let Some((ty, field)) = field_of(ws, &env, target) else {
                return;
            };
            if !in_scope || !long_lived.contains(&ty) || !is_collection_field(ws, &ty, &field) {
                return;
            }
            grows.push(GrowSite {
                file: rel.clone(),
                line: *line as usize,
                ty: ty.clone(),
                field: field.clone(),
                method: grow_name,
                bounded_locally: checked.contains(&(ty, field)),
            });
        });
    }

    let mut out = Vec::new();
    for g in grows {
        if g.bounded_locally || shrunk.contains(&(g.ty.clone(), g.field.clone())) {
            continue;
        }
        out.push(Diagnostic {
            file: g.file,
            line: g.line,
            rule: Rule::UnboundedGrowth,
            message: format!(
                "`{}.{}` grows via `{}` but nothing in production code evicts, shrinks, or bounds it — unbounded memory on long-lived service state",
                g.ty, g.field, g.method
            ),
        });
    }
    out
}

/// Types that live for the service's lifetime: anything owning a
/// `JoinHandle`/`Receiver`/`TcpListener`, anything held in an `Arc`, and
/// anything captured by a `thread::spawn` closure.
fn long_lived_types(ws: &Workspace) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for t in ws.types() {
        if t.cfg_test {
            continue;
        }
        for (_, ty) in &t.fields {
            if ty.text.contains("JoinHandle")
                || ty.text.contains("Receiver<")
                || ty.text.contains("TcpListener")
            {
                set.insert(t.name.clone());
            }
            // `Arc<T>` anywhere marks T shared + long-lived.
            for inner in angle_idents_after(&ty.text, "Arc<") {
                if ws.type_named(&inner).is_some() {
                    set.insert(inner);
                }
            }
        }
    }
    // Structs moved into `thread::spawn` closures are worker state.
    for fi in ws.fns() {
        if fi.cfg_test {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let env = param_env(fi);
        for_each_expr_in_block(body, &mut |e| {
            let Expr::Call { callee, args, .. } = e else {
                return;
            };
            let Expr::Path { segs, .. } = &**callee else {
                return;
            };
            if segs.last().map(String::as_str) != Some("spawn") {
                return;
            }
            for a in args {
                let Expr::Closure { body, .. } = a else {
                    continue;
                };
                for_each_expr(body, &mut |inner| {
                    if let Expr::Path { segs, .. } = inner {
                        if segs.len() == 1 {
                            if let Some(text) = env.get(&segs[0]) {
                                if let Some(head) = peel_head(text) {
                                    if ws.type_named(&head).is_some() {
                                        set.insert(head);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
    }
    set
}

/// Identifiers appearing right after each occurrence of `marker` in `text`.
fn angle_idents_after(text: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(marker) {
        let after = &rest[pos + marker.len()..];
        let ident: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            out.push(ident);
        }
        rest = after;
    }
    out
}

/// `(owner type, field name)` when `e` is a field access whose base type is
/// known (through `self`, params, or field chains).
fn field_of(ws: &Workspace, env: &BTreeMap<String, String>, e: &Expr) -> Option<(String, String)> {
    if let Expr::Field { base, name, .. } = e {
        let base_text = infer_type_text(ws, env, base)?;
        let head = peel_head(&base_text)?;
        if ws.field_type(&head, name).is_some() {
            return Some((head, name.clone()));
        }
    }
    None
}

/// Is `Type.field` a growable collection (following one type-alias hop)?
fn is_collection_field(ws: &Workspace, ty: &str, field: &str) -> bool {
    let Some(t) = ws.field_type(ty, field) else {
        return false;
    };
    let mut head = t.head_name().to_string();
    if let Some(info) = ws.type_named(&head) {
        if let Some(alias) = &info.alias_head {
            head = alias.clone();
        }
    }
    COLLECTIONS.contains(&head.as_str())
}

// ---------------------------------------------------------------------------
// RH024 — allocation in `rhlint:hot` functions
// ---------------------------------------------------------------------------

/// Run the hot-path rule: functions tagged `// rhlint:hot` (comment within
/// three lines above the signature, or in the doc comment) must not allocate
/// on any path, closures included.
pub(crate) fn check_hot_paths(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for fi in ws.fns() {
        if fi.cfg_test {
            continue;
        }
        let file = &ws.files()[fi.file];
        if !hot_tagged(fi, &file.masked.raw_lines) {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let env = param_env(fi);
        for_each_expr_in_block(body, &mut |e| {
            if let Some((what, line)) = alloc_of(ws, &env, e) {
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        "allocation `{what}` in `rhlint:hot` fn `{}` — preallocate outside the hot path or reuse a buffer",
                        fi.name
                    ),
                });
            }
        });
    }
    out
}

fn hot_tagged(fi: &FnInfo, raw_lines: &[String]) -> bool {
    // Scan the contiguous comment/attribute block directly above the
    // signature (doc comments included).
    let mut idx = (fi.line as usize).saturating_sub(1);
    while idx > 0 {
        idx -= 1;
        let Some(raw) = raw_lines.get(idx) else { break };
        let t = raw.trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.is_empty() {
            // The tag must lead the comment (`// rhlint:hot` / `/// rhlint:hot`),
            // so prose that merely *mentions* the tag does not mark a fn hot.
            if t.trim_start_matches('/')
                .trim_start_matches('!')
                .trim_start()
                .starts_with("rhlint:hot")
            {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Heap-allocating expression forms.
fn alloc_of(ws: &Workspace, env: &BTreeMap<String, String>, e: &Expr) -> Option<(String, usize)> {
    match e {
        Expr::MacroCall { path, line, .. } => {
            let last = path.last().map(String::as_str)?;
            if matches!(last, "vec" | "format") {
                return Some((format!("{last}!"), *line as usize));
            }
            None
        }
        Expr::Call { callee, line, .. } => {
            let Expr::Path { segs, .. } = &**callee else {
                return None;
            };
            let last = segs.last().map(String::as_str).unwrap_or("");
            let penult = segs
                .len()
                .checked_sub(2)
                .map(|i| segs[i].as_str())
                .unwrap_or("");
            let hit = matches!(
                (penult, last),
                ("Box", "new")
                    | ("String", "from")
                    | ("String", "with_capacity")
                    | ("Vec", "with_capacity")
                    | ("Vec", "from")
            );
            if hit {
                return Some((format!("{penult}::{last}"), *line as usize));
            }
            None
        }
        Expr::MethodCall {
            recv, method, line, ..
        } => {
            if matches!(
                method.as_str(),
                "to_vec" | "to_string" | "to_owned" | "collect"
            ) {
                return Some((format!(".{method}()"), *line as usize));
            }
            if method == "clone" {
                let head = infer_type_text(ws, env, recv).and_then(|t| peel_head(&t));
                if let Some(h) = head {
                    if COLLECTIONS.contains(&h.as_str()) || h == "String" {
                        return Some((format!("{h}::clone"), *line as usize));
                    }
                }
            }
            None
        }
        _ => None,
    }
}
